//! Property-based tests (proptest) of the core invariants:
//! prefix-slice algebra, width-plan nesting, heterogeneous aggregation,
//! and partition coverage.

use adaptivefl::core::aggregate::{aggregate, Upload};
use adaptivefl::data::{dirichlet_partition, iid_partition};
use adaptivefl::models::plan::{scale_width, PruneSpec, WidthPlan};
use adaptivefl::nn::ParamMap;
use adaptivefl::tensor::{rng, SliceSpec, Tensor};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// extract ∘ embed is the identity on the block.
    #[test]
    fn extract_embed_roundtrip(shape in small_shape(), seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let dims: Vec<usize> = shape.iter().map(|&s| 1 + seed as usize % s).collect();
        let block = adaptivefl::tensor::init::normal(&dims, 1.0, &mut r);
        let mut full = Tensor::zeros(&shape);
        let spec = SliceSpec::new(dims);
        spec.embed(&block, &mut full);
        prop_assert_eq!(spec.extract(&full), block);
    }

    /// Extraction of nested specs commutes: extracting the small block
    /// from the full tensor equals extracting it from the medium block.
    #[test]
    fn nested_extraction_commutes(shape in small_shape(), seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let full = adaptivefl::tensor::init::normal(&shape, 1.0, &mut r);
        let mid: Vec<usize> = shape.iter().map(|&s| s.div_ceil(2).max(1)).collect();
        let small: Vec<usize> = mid.iter().map(|&s| s.div_ceil(2).max(1)).collect();
        let mid_spec = SliceSpec::new(mid);
        let small_spec = SliceSpec::new(small);
        let via_mid = small_spec.extract(&mid_spec.extract(&full));
        let direct = small_spec.extract(&full);
        prop_assert_eq!(via_mid, direct);
    }

    /// Aggregated values always lie within the convex hull of the
    /// previous global value and the uploads covering each element.
    #[test]
    fn aggregation_is_convex(
        len in 1usize..6,
        uploads in prop::collection::vec((1usize..6, 1.0f32..100.0, -5.0f32..5.0), 1..5),
    ) {
        let mut global = ParamMap::new();
        global.insert("w", Tensor::full(&[len], 10.0));
        let ups: Vec<Upload> = uploads
            .iter()
            .map(|&(l, w, v)| {
                let l = l.min(len);
                let mut m = ParamMap::new();
                m.insert("w", Tensor::full(&[l], v));
                Upload { params: m, weight: w }
            })
            .collect();
        aggregate(&mut global, &ups);
        let g = global.get("w").unwrap();
        for (i, &gv) in g.as_slice().iter().enumerate() {
            let covering: Vec<f32> = uploads
                .iter()
                .filter(|&&(l, _, _)| l.min(len) > i)
                .map(|&(_, _, v)| v)
                .collect();
            if covering.is_empty() {
                prop_assert_eq!(gv, 10.0, "uncovered element must keep old value");
            } else {
                let lo = covering.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = covering.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(gv >= lo - 1e-4 && gv <= hi + 1e-4,
                    "element {i}: {gv} outside [{lo}, {hi}]");
            }
        }
    }

    /// Width plans from any two specs with ordered ratios and the same
    /// start unit are nested.
    #[test]
    fn plans_nest_by_ratio(
        base in prop::collection::vec(1usize..128, 1..10),
        r1 in 0.1f32..0.9,
        dr in 0.01f32..0.5,
        start in 0usize..8,
    ) {
        let r2 = (r1 + dr).min(1.0);
        let small = WidthPlan::from_spec(&base, &PruneSpec::new(r1, start));
        let big = WidthPlan::from_spec(&base, &PruneSpec::new(r2, start));
        prop_assert!(small.nested_in(&big));
        prop_assert!(big.nested_in(&WidthPlan::full(&base)));
    }

    /// Scaled widths are monotone in the ratio and never zero.
    #[test]
    fn scale_width_monotone(base in 1usize..2048, r1 in 0.01f32..1.0, dr in 0.0f32..0.5) {
        let r2 = (r1 + dr).min(1.0);
        prop_assert!(scale_width(base, r1) >= 1);
        prop_assert!(scale_width(base, r1) <= scale_width(base, r2));
        prop_assert_eq!(scale_width(base, 1.0), base);
    }

    /// Every partitioner assigns each sample to exactly one client.
    #[test]
    fn partitions_cover_exactly_once(
        n in 1usize..300,
        clients in 1usize..20,
        alpha in 0.05f32..10.0,
        seed in 0u64..500,
    ) {
        let labels: Vec<usize> = (0..n).map(|i| i % 7).collect();
        let mut r = rng::seeded(seed);
        for shards in [
            iid_partition(n, clients, &mut r),
            dirichlet_partition(&labels, 7, clients, alpha, &mut r),
        ] {
            let mut seen = vec![false; n];
            for s in &shards {
                for &i in s {
                    prop_assert!(!seen[i], "sample {i} assigned twice");
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&x| x), "some sample unassigned");
        }
    }
}
