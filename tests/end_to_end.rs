//! Cross-crate end-to-end tests: full federated runs through the
//! facade crate, checking the qualitative claims the paper makes.

use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};

fn spec4() -> SynthSpec {
    let mut s = SynthSpec::test_spec(4);
    s.input = (3, 8, 8);
    s
}

/// AdaptiveFL must actually learn: accuracy well above chance after a
/// handful of rounds on an easy task.
#[test]
fn adaptivefl_learns_above_chance() {
    let mut cfg = SimConfig::quick_test(900);
    cfg.rounds = 8;
    cfg.eval_every = 8;
    let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Iid);
    let r = sim.run(MethodKind::AdaptiveFl);
    assert!(
        r.final_full_accuracy() > 0.45,
        "accuracy {} not above chance",
        r.final_full_accuracy()
    );
}

/// Cross-level parameter sharing must beat the Decoupled baseline on
/// the full model (the paper's core comparison) given the same data,
/// fleet and budget. A single tiny run is noisy, so this compares the
/// mean over three seeds with a small slack.
#[test]
fn adaptivefl_beats_decoupled_on_full_model() {
    let mut ours_acc = 0.0f32;
    let mut dec_acc = 0.0f32;
    for seed in [901u64, 902, 903] {
        let mut cfg = SimConfig::quick_test(seed);
        cfg.rounds = 10;
        cfg.eval_every = 10;
        let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Dirichlet(0.6));
        ours_acc += sim.run(MethodKind::AdaptiveFl).final_full_accuracy();
        dec_acc += sim.run(MethodKind::Decoupled).final_full_accuracy();
    }
    assert!(
        ours_acc >= dec_acc - 0.05,
        "AdaptiveFL mean {} well below Decoupled mean {}",
        ours_acc / 3.0,
        dec_acc / 3.0
    );
}

/// Whole runs replay bit-for-bit from the same seed (the determinism
/// the experiment harness relies on).
#[test]
fn whole_runs_are_deterministic() {
    let cfg = SimConfig::quick_test(902);
    let run = || {
        let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Dirichlet(0.3));
        sim.run(MethodKind::HeteroFl)
    };
    assert_eq!(run(), run());
}

/// Different seeds must actually change the run.
#[test]
fn different_seeds_differ() {
    let mut cfg = SimConfig::quick_test(903);
    let a = {
        let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Iid);
        sim.run(MethodKind::AdaptiveFl)
    };
    cfg.seed = 904;
    let b = {
        let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Iid);
        sim.run(MethodKind::AdaptiveFl)
    };
    assert_ne!(a, b);
}

/// The communication-waste rate is a proper rate for every method.
#[test]
fn comm_waste_is_a_rate_for_every_method() {
    let mut cfg = SimConfig::quick_test(905);
    cfg.rounds = 3;
    for kind in [
        MethodKind::AdaptiveFl,
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AllLarge,
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
    ] {
        let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Iid);
        let r = sim.run(kind);
        let w = r.comm_waste_rate();
        assert!((0.0..=1.0).contains(&w), "{kind}: waste {w}");
        // All-Large never wastes: everyone returns what was sent.
        if kind == MethodKind::AllLarge {
            assert_eq!(w, 0.0);
        }
    }
}

/// Simulated wall-clock must be positive and accumulate monotonically.
#[test]
fn simulated_time_accumulates() {
    let mut cfg = SimConfig::quick_test(906);
    cfg.rounds = 4;
    cfg.eval_every = 1;
    let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Iid);
    let r = sim.run(MethodKind::AdaptiveFl);
    let tc = r.time_curve();
    assert!(tc.windows(2).all(|w| w[1].0 >= w[0].0));
    assert!(r.total_sim_secs() > 0.0);
}

/// Evaluation snapshots include S/M/L level accuracies for the
/// heterogeneous methods and none for All-Large.
#[test]
fn eval_levels_match_method_structure() {
    let mut cfg = SimConfig::quick_test(907);
    cfg.rounds = 1;
    cfg.eval_every = 1;
    let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Iid);
    let het = sim.run(MethodKind::AdaptiveFl);
    assert_eq!(het.evals[0].levels.len(), 3);
    let names: Vec<&str> = het.evals[0]
        .levels
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    assert_eq!(names, vec!["S_1", "M_1", "L_1"]);
    let all = sim.run(MethodKind::AllLarge);
    assert!(all.evals[0].levels.is_empty());
}

/// Client dropout: with partial availability, fewer clients
/// participate but the run still completes and learns.
#[test]
fn partial_availability_still_trains() {
    let mut cfg = SimConfig::quick_test(908);
    cfg.rounds = 6;
    cfg.eval_every = 6;
    let spec = spec4();
    let full_params = cfg.model.num_params(&cfg.model.full_plan());
    let fleet = adaptivefl::device::DeviceFleet::with_proportions(
        cfg.num_clients,
        cfg.proportions,
        full_params,
        cfg.dynamics,
        cfg.seed,
    )
    .with_availability(0.6);
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid).with_fleet(fleet);
    let r = sim.run(MethodKind::AdaptiveFl);
    // Some rounds must have fewer than K participants.
    let short_rounds = r
        .rounds
        .iter()
        .filter(|x| x.sent_params < cfg.clients_per_round as u64 * 1000)
        .count();
    let _ = short_rounds; // sent size varies by model; just check learning:
    assert!(r.final_full_accuracy() > 0.3);
}

/// FedProx local training plugs into a full federated run.
#[test]
fn fedprox_variant_runs() {
    let mut cfg = SimConfig::quick_test(909);
    cfg.rounds = 5;
    cfg.eval_every = 5;
    cfg.local = cfg.local.with_prox(0.1);
    let mut sim = Simulation::prepare(&cfg, &spec4(), Partition::Dirichlet(0.3));
    let r = sim.run(MethodKind::AdaptiveFl);
    assert!(
        r.final_full_accuracy() > 0.25,
        "{}",
        r.final_full_accuracy()
    );
}
