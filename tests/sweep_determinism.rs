//! The sweep engine's core guarantee: a `cells × seeds` sweep
//! produces byte-identical records whether the jobs run serially
//! in-process, on one scheduler thread, or across eight — scheduling
//! must never leak into results.

use std::collections::BTreeMap;
use std::path::PathBuf;

use adaptivefl_bench::sweep::io::{read_records, write_record};
use adaptivefl_bench::sweep::{evaluate_claims, grids, run_parallel, Cell, CellRecord, JobOpts};

const SEEDS: [u64; 3] = [2024, 2025, 2026];

fn jobs(cells: &[Cell]) -> Vec<(&Cell, u64)> {
    cells
        .iter()
        .flat_map(|c| SEEDS.iter().map(move |s| (c, *s)))
        .collect()
}

fn sweep_records(cells: &[Cell], threads: usize) -> Vec<CellRecord> {
    let opts = JobOpts::default();
    run_parallel(&jobs(cells), threads, |_, (cell, seed)| {
        CellRecord::new(cell, *seed, &cell.execute(*seed, &opts))
    })
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adaptivefl-sweep-det-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serialized bytes of every record file a sweep would write, keyed
/// by relative path.
fn on_disk_bytes(records: &[CellRecord], tag: &str) -> BTreeMap<String, Vec<u8>> {
    let root = tmp_root(tag);
    for r in records {
        write_record(&root, r).expect("write record");
    }
    // Round-trip through read_records so the comparison covers the
    // full persistence path, then collect raw bytes per file.
    assert_eq!(read_records(&root).expect("read back").len(), records.len());
    let mut out = BTreeMap::new();
    for r in records {
        let rel = format!("{}/{}.json", r.slug, r.seed);
        let bytes = std::fs::read(root.join(&rel)).expect("record file");
        out.insert(rel, bytes);
    }
    std::fs::remove_dir_all(&root).expect("cleanup");
    out
}

#[test]
fn sweep_is_thread_count_invariant_and_matches_serial() {
    let cells = grids::tiny(2024);
    assert!(!cells.is_empty());

    // Serial in-process reference: plain loop, no scheduler at all.
    let opts = JobOpts::default();
    let serial: Vec<CellRecord> = jobs(&cells)
        .into_iter()
        .map(|(cell, seed)| CellRecord::new(cell, seed, &cell.execute(seed, &opts)))
        .collect();

    let one = sweep_records(&cells, 1);
    let eight = sweep_records(&cells, 8);
    assert_eq!(serial, one, "1-thread scheduler must equal a plain loop");
    assert_eq!(one, eight, "8 threads must equal 1 thread");

    // And the bytes on disk are identical too, not just the structs.
    assert_eq!(
        on_disk_bytes(&serial, "serial"),
        on_disk_bytes(&eight, "eight")
    );
}

#[test]
fn verdicts_are_a_pure_function_of_records() {
    let cells = grids::tiny(2024);
    let records = sweep_records(&cells, 4);
    let a = serde_json::to_string_pretty(&evaluate_claims(&records)).unwrap();
    let b = serde_json::to_string_pretty(&evaluate_claims(&records)).unwrap();
    assert_eq!(a, b);
    // Record order must not matter either.
    let mut reversed = records.clone();
    reversed.reverse();
    let c = serde_json::to_string_pretty(&evaluate_claims(&reversed)).unwrap();
    assert_eq!(a, c);
}

#[test]
fn seeds_produce_distinct_runs() {
    let cells = grids::tiny(2024);
    let records = sweep_records(&cells[..1], 2);
    assert_eq!(records.len(), SEEDS.len());
    let fps: Vec<u64> = records.iter().map(|r| r.fingerprint_fnv).collect();
    assert!(
        fps.windows(2).any(|w| w[0] != w[1]),
        "different seeds should not all collide: {fps:?}"
    );
}
