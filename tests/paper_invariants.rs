//! Invariants lifted directly from the paper: Table 1 numbers, pool
//! structure, capacity gating, and RL behaviour over a real run.

use adaptivefl::core::aggregate::{aggregate, Upload};
use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::pool::{Level, ModelPool, DEFAULT_RATIOS};
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::device::ResourceDynamics;
use adaptivefl::models::ModelConfig;
use adaptivefl::nn::ParamMap;
use adaptivefl::tensor::Tensor;
use proptest::prelude::*;

/// Table 1 of the paper, exactly: level sizes and ratios of the VGG16
/// split (± rounding of the width quantisation).
#[test]
fn table1_sizes_reproduce() {
    let cfg = ModelConfig::vgg16_cifar();
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let paper: &[(&str, f64, f64)] = &[
        ("S_3", 5.67, 0.17),
        ("S_2", 6.48, 0.19),
        ("S_1", 8.39, 0.25),
        ("M_3", 14.84, 0.44),
        ("M_2", 15.41, 0.46),
        ("M_1", 16.81, 0.50),
        ("L_1", 33.65, 1.00),
    ];
    let full = pool.largest().params as f64;
    for (name, params_m, ratio) in paper {
        let e = pool
            .entries()
            .iter()
            .find(|e| e.name() == *name)
            .unwrap_or_else(|| panic!("{name} missing from pool"));
        let got_m = e.params as f64 / 1e6;
        assert!(
            (got_m - params_m).abs() < 0.08,
            "{name}: {got_m:.2}M vs paper {params_m}M"
        );
        let got_ratio = e.params as f64 / full;
        assert!(
            (got_ratio - ratio).abs() < 0.01,
            "{name}: ratio {got_ratio:.2} vs {ratio}"
        );
    }
}

/// The pool has 2p+1 entries for every p, ordered by size, with the
/// full model last.
#[test]
fn pool_structure_for_all_p() {
    let cfg = ModelConfig::tiny(10);
    for p in 1..=4 {
        let pool = ModelPool::split(&cfg, p, DEFAULT_RATIOS);
        assert_eq!(pool.len(), 2 * p + 1);
        assert_eq!(pool.largest().level, Level::Large);
        for w in pool.entries().windows(2) {
            assert!(w[0].params <= w[1].params);
        }
    }
}

/// Capacity gating: in an all-weak static fleet, the uploads can never
/// exceed K × (weak capacity) parameters per round — weak devices
/// physically cannot return medium or large models.
#[test]
fn weak_devices_never_return_large_models() {
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    let mut cfg = SimConfig::quick_test(950);
    cfg.proportions = (1, 0, 0); // all weak
    cfg.dynamics = ResourceDynamics::Static;
    cfg.rounds = 3;
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
    let full = cfg.model.num_params(&cfg.model.full_plan());
    let weak_cap = (full as f64 * 0.30).round() as u64;
    let r = sim.run(MethodKind::AdaptiveFl);
    for round in &r.rounds {
        assert!(
            round.returned_params <= cfg.clients_per_round as u64 * weak_cap,
            "round {}: returned {} exceeds weak budget",
            round.round,
            round.returned_params
        );
    }
}

/// Under HeteroFL (no client-side adaptation), an all-weak fleet with
/// spiky resources must produce failures — the mismatch AdaptiveFL's
/// client-side pruning avoids by construction.
#[test]
fn heterofl_fails_where_adaptivefl_adapts() {
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    let mut cfg = SimConfig::quick_test(951);
    cfg.rounds = 6;
    cfg.dynamics = ResourceDynamics::Spiky {
        jitter: 0.05,
        drop_prob: 0.5,
        drop_to: 0.3,
    };
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
    let het = sim.run(MethodKind::HeteroFl);
    let ours = sim.run(MethodKind::AdaptiveFl);
    let het_failures: usize = het.rounds.iter().map(|r| r.failures).sum();
    let our_failures: usize = ours.rounds.iter().map(|r| r.failures).sum();
    assert!(
        het_failures > 0,
        "spiky resources must break static assignment"
    );
    assert!(
        our_failures <= het_failures,
        "adaptive pruning should fail at most as often ({our_failures} vs {het_failures})"
    );
}

/// The paper's fine-grained claim: with p = 3 the pool offers strictly
/// more distinct sizes than the coarse p = 1 pool.
#[test]
fn fine_grained_pool_offers_more_sizes() {
    let cfg = ModelConfig::vgg16_cifar();
    let fine = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let coarse = ModelPool::split(&cfg, 1, DEFAULT_RATIOS);
    let distinct = |pool: &ModelPool| {
        let mut sizes: Vec<u64> = pool.entries().iter().map(|e| e.params).collect();
        sizes.dedup();
        sizes.len()
    };
    assert!(distinct(&fine) > distinct(&coarse));
}

/// Every level representative is nested in the full model and the
/// client-side `largest_fitting` respects both capacity and nesting.
#[test]
fn client_pruning_respects_capacity_and_nesting() {
    let cfg = ModelConfig::resnet18_fast(10);
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let full = pool.largest();
    for e in pool.entries() {
        assert!(
            e.plan.nested_in(&full.plan),
            "{} not nested in L_1",
            e.name()
        );
    }
    for received in 0..pool.len() {
        for capacity in [0u64, full.params / 4, full.params / 2, full.params * 2] {
            if let Some(fit) = pool.largest_fitting(received, capacity) {
                assert!(fit.params <= capacity);
                assert!(fit.index <= received);
                assert!(fit.plan.nested_in(&pool.entry(received).plan));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Client-side pruning is *maximal*: for any received entry and
    /// capacity, `largest_fitting` returns the biggest nested entry
    /// that fits — no admissible larger choice exists (paper §3.2).
    #[test]
    fn largest_fitting_is_maximal(
        p in 1usize..4,
        received in 0usize..9,
        cap_permille in 0u64..1100,
    ) {
        let cfg = ModelConfig::tiny(10);
        let pool = ModelPool::split(&cfg, p, DEFAULT_RATIOS);
        let received = received % pool.len();
        let capacity = pool.largest().params * cap_permille / 1000;
        let fit = pool.largest_fitting(received, capacity);
        let received_plan = &pool.entry(received).plan;
        match fit {
            Some(e) => {
                prop_assert!(e.params <= capacity);
                prop_assert!(e.index <= received);
                prop_assert!(e.plan.nested_in(received_plan));
                // Maximality: every admissible entry above it misses
                // at least one constraint.
                for bigger in pool.entries()[e.index + 1..=received].iter() {
                    prop_assert!(
                        bigger.params > capacity || !bigger.plan.nested_in(received_plan),
                        "{} was admissible but not chosen over {}",
                        bigger.name(), e.name()
                    );
                }
            }
            None => {
                for cand in pool.entries()[..=received].iter() {
                    prop_assert!(
                        cand.params > capacity || !cand.plan.nested_in(received_plan),
                        "{} fits yet None was returned", cand.name()
                    );
                }
            }
        }
    }

    /// Algorithm 2 at the facade: aggregating nested constant uploads
    /// leaves every element within the [min, max] envelope of its
    /// contributors, and elements beyond all uploads untouched.
    #[test]
    fn aggregation_respects_contributor_envelope(
        n in 2usize..12,
        init in -5.0f32..5.0,
        draws in prop::collection::vec(
            (1usize..12, -3.0f32..3.0, 0.5f32..20.0),
            1..5,
        ),
    ) {
        let mut global = ParamMap::new();
        global.insert("w", Tensor::full(&[n], init));
        let uploads: Vec<Upload> = draws
            .iter()
            .map(|&(k, v, w)| {
                let len = 1 + (k - 1) % n;
                let mut m = ParamMap::new();
                m.insert("w", Tensor::full(&[len], v));
                Upload { params: m, weight: w }
            })
            .collect();
        aggregate(&mut global, &uploads);
        let after = global.get("w").unwrap();
        for i in 0..n {
            let contributors: Vec<f32> = draws
                .iter()
                .filter(|&&(k, _, _)| i < 1 + (k - 1) % n)
                .map(|&(_, v, _)| v)
                .collect();
            let got = after.as_slice()[i];
            if contributors.is_empty() {
                prop_assert_eq!(got.to_bits(), init.to_bits(), "element {}", i);
            } else {
                let lo = contributors.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = contributors.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!(
                    got >= lo - 1e-4 && got <= hi + 1e-4,
                    "element {}: {} outside envelope [{}, {}]", i, got, lo, hi
                );
            }
        }
    }
}
