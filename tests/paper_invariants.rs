//! Invariants lifted directly from the paper: Table 1 numbers, pool
//! structure, capacity gating, and RL behaviour over a real run.

use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::pool::{Level, ModelPool, DEFAULT_RATIOS};
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::device::ResourceDynamics;
use adaptivefl::models::ModelConfig;

/// Table 1 of the paper, exactly: level sizes and ratios of the VGG16
/// split (± rounding of the width quantisation).
#[test]
fn table1_sizes_reproduce() {
    let cfg = ModelConfig::vgg16_cifar();
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let paper: &[(&str, f64, f64)] = &[
        ("S_3", 5.67, 0.17),
        ("S_2", 6.48, 0.19),
        ("S_1", 8.39, 0.25),
        ("M_3", 14.84, 0.44),
        ("M_2", 15.41, 0.46),
        ("M_1", 16.81, 0.50),
        ("L_1", 33.65, 1.00),
    ];
    let full = pool.largest().params as f64;
    for (name, params_m, ratio) in paper {
        let e = pool
            .entries()
            .iter()
            .find(|e| e.name() == *name)
            .unwrap_or_else(|| panic!("{name} missing from pool"));
        let got_m = e.params as f64 / 1e6;
        assert!(
            (got_m - params_m).abs() < 0.08,
            "{name}: {got_m:.2}M vs paper {params_m}M"
        );
        let got_ratio = e.params as f64 / full;
        assert!(
            (got_ratio - ratio).abs() < 0.01,
            "{name}: ratio {got_ratio:.2} vs {ratio}"
        );
    }
}

/// The pool has 2p+1 entries for every p, ordered by size, with the
/// full model last.
#[test]
fn pool_structure_for_all_p() {
    let cfg = ModelConfig::tiny(10);
    for p in 1..=4 {
        let pool = ModelPool::split(&cfg, p, DEFAULT_RATIOS);
        assert_eq!(pool.len(), 2 * p + 1);
        assert_eq!(pool.largest().level, Level::Large);
        for w in pool.entries().windows(2) {
            assert!(w[0].params <= w[1].params);
        }
    }
}

/// Capacity gating: in an all-weak static fleet, the uploads can never
/// exceed K × (weak capacity) parameters per round — weak devices
/// physically cannot return medium or large models.
#[test]
fn weak_devices_never_return_large_models() {
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    let mut cfg = SimConfig::quick_test(950);
    cfg.proportions = (1, 0, 0); // all weak
    cfg.dynamics = ResourceDynamics::Static;
    cfg.rounds = 3;
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
    let full = cfg.model.num_params(&cfg.model.full_plan());
    let weak_cap = (full as f64 * 0.30).round() as u64;
    let r = sim.run(MethodKind::AdaptiveFl);
    for round in &r.rounds {
        assert!(
            round.returned_params <= cfg.clients_per_round as u64 * weak_cap,
            "round {}: returned {} exceeds weak budget",
            round.round,
            round.returned_params
        );
    }
}

/// Under HeteroFL (no client-side adaptation), an all-weak fleet with
/// spiky resources must produce failures — the mismatch AdaptiveFL's
/// client-side pruning avoids by construction.
#[test]
fn heterofl_fails_where_adaptivefl_adapts() {
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    let mut cfg = SimConfig::quick_test(951);
    cfg.rounds = 6;
    cfg.dynamics = ResourceDynamics::Spiky {
        jitter: 0.05,
        drop_prob: 0.5,
        drop_to: 0.3,
    };
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
    let het = sim.run(MethodKind::HeteroFl);
    let ours = sim.run(MethodKind::AdaptiveFl);
    let het_failures: usize = het.rounds.iter().map(|r| r.failures).sum();
    let our_failures: usize = ours.rounds.iter().map(|r| r.failures).sum();
    assert!(
        het_failures > 0,
        "spiky resources must break static assignment"
    );
    assert!(
        our_failures <= het_failures,
        "adaptive pruning should fail at most as often ({our_failures} vs {het_failures})"
    );
}

/// The paper's fine-grained claim: with p = 3 the pool offers strictly
/// more distinct sizes than the coarse p = 1 pool.
#[test]
fn fine_grained_pool_offers_more_sizes() {
    let cfg = ModelConfig::vgg16_cifar();
    let fine = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let coarse = ModelPool::split(&cfg, 1, DEFAULT_RATIOS);
    let distinct = |pool: &ModelPool| {
        let mut sizes: Vec<u64> = pool.entries().iter().map(|e| e.params).collect();
        sizes.dedup();
        sizes.len()
    };
    assert!(distinct(&fine) > distinct(&coarse));
}

/// Every level representative is nested in the full model and the
/// client-side `largest_fitting` respects both capacity and nesting.
#[test]
fn client_pruning_respects_capacity_and_nesting() {
    let cfg = ModelConfig::resnet18_fast(10);
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let full = pool.largest();
    for e in pool.entries() {
        assert!(
            e.plan.nested_in(&full.plan),
            "{} not nested in L_1",
            e.name()
        );
    }
    for received in 0..pool.len() {
        for capacity in [0u64, full.params / 4, full.params / 2, full.params * 2] {
            if let Some(fit) = pool.largest_fitting(received, capacity) {
                assert!(fit.params <= capacity);
                assert!(fit.index <= received);
                assert!(fit.plan.nested_in(&pool.entry(received).plan));
            }
        }
    }
}
