//! Golden fingerprint regression suite: the 9-decimal `RunResult`
//! fingerprint of every method kind under the quick-test recipe is
//! committed under `tests/goldens/` and diffed here. Any change to the
//! numerics — initialisation, selection, aggregation, transport
//! faults — shows up as a golden mismatch.
//!
//! To regenerate after an *intentional* numerical change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test golden_fingerprints
//! ```

use std::path::PathBuf;

use adaptivefl::comm::{FaultPlan, SimTransport};
use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::select::SelectionStrategy;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};

/// All seven method kinds of the comparison, in a fixed order.
fn all_kinds() -> [MethodKind; 7] {
    [
        MethodKind::AdaptiveFl,
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
        MethodKind::AllLarge,
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
    ]
}

fn prepare() -> Simulation {
    let cfg = SimConfig::quick_test(900);
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.5))
}

/// The faulty transport of the goldens: every fault class enabled, two
/// worker threads (results are thread-count invariant).
fn faulty_transport() -> SimTransport {
    SimTransport::new().with_threads(2).with_faults(FaultPlan {
        upload_drop: 0.15,
        straggler_prob: 0.2,
        crash_prob: 0.1,
        truncate_prob: 0.05,
        seed: 7,
        ..Default::default()
    })
}

fn slug(kind: MethodKind) -> String {
    format!("{kind}")
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn check_golden(kind: MethodKind, transport: &str, fingerprint: &str) {
    let path = goldens_dir().join(format!("{}-{transport}.txt", slug(kind)));
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
        std::fs::write(&path, fingerprint).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDENS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        fingerprint,
        want,
        "fingerprint of {kind} over {transport} transport drifted from {}\n\
         (if the numerical change is intentional, regenerate with UPDATE_GOLDENS=1)",
        path.display()
    );
}

#[test]
fn goldens_match_perfect_transport() {
    for kind in all_kinds() {
        let fp = prepare().run(kind).fingerprint();
        check_golden(kind, "perfect", &fp);
    }
}

#[test]
fn goldens_match_faulty_transport() {
    for kind in all_kinds() {
        let fp = prepare()
            .run_with_transport(kind, &mut faulty_transport())
            .fingerprint();
        check_golden(kind, "faulty", &fp);
    }
}

#[test]
fn fingerprints_have_nine_decimals_and_method_names() {
    let fp = prepare().run(MethodKind::AdaptiveFl).fingerprint();
    assert!(fp.starts_with("AdaptiveFL r0 "), "{fp}");
    for line in fp.lines() {
        let loss = line
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("loss=").or(tok.strip_prefix("full=")))
            .unwrap_or_else(|| panic!("no loss/full field in {line}"));
        let decimals = loss.split('.').nth(1).map_or(0, str::len);
        assert_eq!(decimals, 9, "{line}");
    }
}
