//! Scratch-arena determinism: runs that share one [`Scratch`] arena —
//! including back-to-back runs that inherit each other's recycled,
//! dirty buffers — must produce fingerprints bit-identical to runs with
//! a fresh private arena. This is the arena's core contract (`take`
//! always hands out zeroed storage), exercised end-to-end through the
//! faulty parallel transport where buffer recycling order is
//! nondeterministic across worker threads.

use adaptivefl::comm::{FaultPlan, SimTransport};
use adaptivefl::core::methods::MethodKind;
use adaptivefl::core::sim::{SimConfig, Simulation};
use adaptivefl::data::{Partition, SynthSpec};
use adaptivefl::tensor::Scratch;

/// Same recipe as the golden fingerprint suite.
fn prepare() -> Simulation {
    let cfg = SimConfig::quick_test(900);
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.5))
}

/// The golden suite's faulty transport: every fault class enabled,
/// two worker threads.
fn faulty_transport() -> SimTransport {
    SimTransport::new().with_threads(2).with_faults(FaultPlan {
        upload_drop: 0.15,
        straggler_prob: 0.2,
        crash_prob: 0.1,
        truncate_prob: 0.05,
        seed: 7,
        ..Default::default()
    })
}

fn run_faulty(sim: &mut Simulation, kind: MethodKind) -> String {
    sim.run_with_transport(kind, &mut faulty_transport())
        .fingerprint()
}

/// For one method: a fresh-arena run is reproducible, and two
/// back-to-back runs sharing one arena (the second inheriting the
/// first's recycled buffers) both match it exactly.
fn check_method(kind: MethodKind) {
    let fresh_a = run_faulty(&mut prepare(), kind);
    let fresh_b = run_faulty(&mut prepare(), kind);
    assert_eq!(fresh_a, fresh_b, "{kind}: fresh runs not reproducible");

    let arena = Scratch::new();
    let mut sim1 = prepare();
    sim1.set_scratch(arena.clone());
    let shared_1 = run_faulty(&mut sim1, kind);
    let mut sim2 = prepare();
    sim2.set_scratch(arena.clone());
    let shared_2 = run_faulty(&mut sim2, kind);

    assert_eq!(
        shared_1, fresh_a,
        "{kind}: first shared-arena run drifted from fresh-arena run"
    );
    assert_eq!(
        shared_2, fresh_a,
        "{kind}: second shared-arena run (dirty recycled buffers) drifted"
    );
    assert!(
        arena.reuses() > 0,
        "{kind}: arena was never reused — the test exercised nothing"
    );
}

#[test]
fn adaptivefl_shared_arena_is_bit_identical() {
    check_method(MethodKind::AdaptiveFl);
}

#[test]
fn heterofl_shared_arena_is_bit_identical() {
    check_method(MethodKind::HeteroFl);
}
