//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator implementing the vendored `rand` traits.
//!
//! The output stream is *not* bit-compatible with upstream
//! `rand_chacha` (which composes words differently), but it is a real
//! ChaCha8 — deterministic per seed on every platform, with the full
//! statistical quality the workspace's simulations rely on.

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block: constants, 8 key words, 2
    /// counter words, 2 nonce words.
    state: [u32; 16],
    /// Buffered keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    /// Number of words in a serialised state snapshot: the 16-word
    /// ChaCha input block, the 16-word keystream buffer, and the next
    /// buffer index.
    pub const STATE_WORDS: usize = 33;

    /// Serialises the full generator state so a cloned stream can be
    /// reconstructed later (e.g. from a crash-safe checkpoint).
    pub fn state_words(&self) -> [u32; Self::STATE_WORDS] {
        let mut out = [0u32; Self::STATE_WORDS];
        out[..16].copy_from_slice(&self.state);
        out[16..32].copy_from_slice(&self.buf);
        out[32] = self.idx as u32;
        out
    }

    /// Rebuilds a generator from [`ChaCha8Rng::state_words`]. The
    /// restored stream continues exactly where the snapshotted one
    /// stopped. Returns `None` when the buffer index is out of range.
    pub fn from_state_words(words: &[u32; Self::STATE_WORDS]) -> Option<Self> {
        let idx = words[32] as usize;
        if idx > 16 {
            return None;
        }
        let mut state = [0u32; 16];
        state.copy_from_slice(&words[..16]);
        let mut buf = [0u32; 16];
        buf.copy_from_slice(&words[16..32]);
        Some(ChaCha8Rng { state, buf, idx })
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seeds_separate_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn keystream_crosses_block_boundary() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        // 40 words spans three 16-word blocks.
        let v: Vec<u32> = (0..40).map(|_| r.next_u32()).collect();
        assert_eq!(v.len(), 40);
        let distinct: std::collections::BTreeSet<u32> = v.iter().copied().collect();
        assert!(distinct.len() > 35, "keystream should look random");
    }

    #[test]
    fn unit_doubles_are_uniformish() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let n = 4000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let _ = a.next_u32();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_words_roundtrip_mid_block() {
        let mut a = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..21 {
            let _ = a.next_u32(); // stop mid-way through the 2nd block
        }
        let words = a.state_words();
        let mut b = ChaCha8Rng::from_state_words(&words).expect("valid state");
        let va: Vec<u64> = (0..48).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..48).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn bad_state_index_rejected() {
        let mut words = ChaCha8Rng::seed_from_u64(1).state_words();
        words[32] = 17;
        assert!(ChaCha8Rng::from_state_words(&words).is_none());
    }
}
