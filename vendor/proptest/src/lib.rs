//! Offline stand-in for `proptest`: the `proptest!` macro, range and
//! collection strategies, and `prop_assert*` — enough to run this
//! workspace's property tests. Cases are drawn from a deterministic
//! per-test RNG (seeded from the test name), with no shrinking: a
//! failing case reports its inputs via the assertion message instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty strategy range");
                    let draw = rng.next_u64() as u128 % span as u128;
                    ((self.start as i128) + draw as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty strategy range");
                    let draw = rng.next_u64() as u128 % span as u128;
                    ((*self.start() as i128) + draw as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG (SplitMix64 seeded from the test
    /// name), so property tests are reproducible run-to-run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary tag, typically the test name.
        pub fn new(tag: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Runs each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of upstream's `prop::...` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running the body over drawn cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::new(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "property `{}` failed at case {} with inputs {{ {} }}: {}",
                        stringify!($name), __case, __inputs, __e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failures report the drawn inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                __a, __b
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2i64..2, f in 0.5f32..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f), "f = {f} out of range");
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(1usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn tuple_strategies_compose(t in (0u64..10, 0.0f64..1.0, 1usize..3)) {
            prop_assert!(t.0 < 10);
            prop_assert_eq!(t.2.min(2), t.2);
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::new("same-tag");
        let mut b = crate::test_runner::TestRng::new("same-tag");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::new("other-tag");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_surface_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            #[allow(unreachable_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
