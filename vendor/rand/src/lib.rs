//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of exactly the
//! APIs it uses: [`RngCore`], the [`Rng`] extension trait (`gen`,
//! `gen_range`, `gen_bool`, `sample`), [`SeedableRng`] with the
//! SplitMix64 `seed_from_u64` expansion, the [`distributions`] module
//! (`Standard`, `Uniform`, the `Distribution` trait), and
//! [`seq::SliceRandom`] (Fisher–Yates `shuffle`/`choose`).
//!
//! The numeric streams are *not* bit-compatible with upstream `rand`;
//! every consumer in this workspace only requires determinism per seed,
//! which this implementation provides on all platforms.

pub mod distributions;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size byte seed or a single `u64`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the same
    /// construction upstream `rand` uses, so distinct `u64` seeds give
    /// well-separated states).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&x[..n]);
        }
        Self::from_seed(seed)
    }

    /// Seeds from the system clock — only for throwaway generators.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm(u64);

    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            (splitmix64(&mut self.0) >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut r = Sm(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut r = Sm(2);
        for _ in 0..100 {
            let a = r.gen::<f64>();
            let b = r.gen::<f32>();
            assert!((0.0..1.0).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Sm(3);
        let hits = (0..2000).filter(|_| r.gen_bool(0.25)).count();
        assert!((380..620).contains(&hits), "hits {hits}");
    }
}
