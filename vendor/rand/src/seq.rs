//! Sequence helpers: shuffling and random element choice.

use crate::distributions::uniform::SampleUniform;
use crate::RngCore;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_between(rng, 0, i, true);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = usize::sample_between(rng, 0, self.len(), false);
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix64;

    struct Sm(u64);

    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            (splitmix64(&mut self.0) >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Sm(7);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = Sm(8);
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut r).is_none());
        assert!([1, 2, 3].choose(&mut r).is_some());
    }
}
