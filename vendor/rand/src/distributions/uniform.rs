//! Uniform sampling over ranges.

use std::ops::{Range, RangeInclusive};

use super::Distribution;
use crate::RngCore;

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws one value in `[lo, hi)` (`hi` inclusive when `inclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Work in u128 so the span of full-width 64-bit ranges
                // never overflows.
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample empty range");
                // Multiply-shift rejection-free mapping; the modulo bias
                // over a 64-bit draw is negligible for simulation use.
                let draw = rng.next_u64() as u128 % span as u128;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    lo < hi || (inclusive && lo == hi),
                    "cannot sample empty range"
                );
                let unit: $t = super::Standard.sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// A reusable uniform distribution over `[lo, hi)` or `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform on `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Uniform {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform on `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        Uniform {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_between(rng, self.lo, self.hi, self.inclusive)
    }
}
