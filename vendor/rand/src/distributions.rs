//! Distributions: the `Distribution` trait, the `Standard` primitive
//! sampler, and the `Uniform` range distribution.

use crate::RngCore;

pub mod uniform;

pub use uniform::Uniform;

/// A type that can produce values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution of a primitive type: full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                if std::mem::size_of::<$t>() <= 4 {
                    rng.next_u32() as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                let u: $u = Standard.sample(rng);
                u as $t
            }
        }
    )*};
}

impl_standard_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Distribution<f32> for Standard {
    /// Uniform on `[0, 1)` with 24 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    /// Uniform on `[0, 1)` with 53 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}
