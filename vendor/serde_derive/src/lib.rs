//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on `proc_macro`
//! token trees (no `syn`/`quote`), generating impls of the vendored
//! value-tree `serde` traits.
//!
//! Supported shapes — everything this workspace derives on:
//! named structs, tuple structs (newtype = transparent), unit
//! structs, and enums with unit / tuple / struct variants (externally
//! tagged, like upstream). Field attributes: `#[serde(default)]` and
//! `#[serde(default = "path")]`. Generic types are rejected with a
//! clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum DefaultAttr {
    /// Field is required.
    None,
    /// `#[serde(default)]` — `Default::default()` when missing.
    Std,
    /// `#[serde(default = "path")]` — call `path()` when missing.
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: DefaultAttr,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading `#[...]` attributes, returning the serde
    /// default spec if one is present among them.
    fn take_attrs(&mut self) -> DefaultAttr {
        let mut default = DefaultAttr::None;
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    match self.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            if let Some(d) = parse_serde_attr(g.stream()) {
                                default = d;
                            }
                        }
                        other => panic!("expected [...] after # in attribute, got {other:?}"),
                    }
                }
                _ => return default,
            }
        }
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn take_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected {what}, got {other:?}"),
        }
    }

    /// Consumes type tokens up to a top-level `,` (angle-bracket
    /// aware); returns false when the cursor was already at the end.
    fn skip_type(&mut self) -> bool {
        let mut angle: i32 = 0;
        let mut saw_any = false;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return true;
                }
                _ => {}
            }
            saw_any = true;
            self.next();
        }
        saw_any
    }
}

/// Parses the inside of one `#[...]`; `Some` if it was a
/// `serde(default…)` attribute.
fn parse_serde_attr(stream: TokenStream) -> Option<DefaultAttr> {
    let mut c = Cursor::new(stream);
    match c.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let mut inner = Cursor::new(group.stream());
    while let Some(t) = inner.next() {
        if let TokenTree::Ident(i) = &t {
            if i.to_string() == "default" {
                if let Some(TokenTree::Punct(p)) = inner.peek() {
                    if p.as_char() == '=' {
                        inner.next();
                        if let Some(TokenTree::Literal(l)) = inner.next() {
                            let raw = l.to_string();
                            let path = raw.trim_matches('"').to_string();
                            return Some(DefaultAttr::Path(path));
                        }
                        panic!("expected string literal after serde(default =)");
                    }
                }
                return Some(DefaultAttr::Std);
            }
        }
    }
    None
}

/// Parses the named fields inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let default = c.take_attrs();
        if c.at_end() {
            break;
        }
        c.take_visibility();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected : after field `{name}`, got {other:?}"),
        }
        c.skip_type();
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the fields of a tuple-struct/tuple-variant paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut arity = 0;
    loop {
        let _ = c.take_attrs();
        c.take_visibility();
        if !c.skip_type() {
            return arity;
        }
        arity += 1;
        if c.at_end() {
            return arity;
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        let _ = c.take_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Optional discriminant (`= expr`) then `,`.
        match c.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                while let Some(t) = c.next() {
                    if matches!(&t, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
            }
            other => panic!("unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    let _ = c.take_attrs();
    c.take_visibility();
    let kw = c.expect_ident("struct or enum");
    let kind = kw.as_str().to_string();
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("the vendored serde derive does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_named_fields(receiver: &str, fields: &[Field]) -> String {
    let mut code = String::from("{ let mut __m = ::serde::Map::new();\n");
    for f in fields {
        code.push_str(&format!(
            "__m.insert(\"{n}\".to_string(), ::serde::Serialize::to_value(&{receiver}{n}));\n",
            n = f.name
        ));
    }
    code.push_str("::serde::Value::Object(__m) }");
    code
}

/// Emits the field initializer for a missing-or-present object entry.
fn deserialize_field(obj: &str, f: &Field, ty_name: &str) -> String {
    let missing = match &f.default {
        DefaultAttr::None => format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(\
             \"missing field `{}` for {}\"))",
            f.name, ty_name
        ),
        DefaultAttr::Std => "::std::default::Default::default()".to_string(),
        DefaultAttr::Path(p) => format!("{p}()"),
    };
    format!(
        "{n}: match {obj}.get(\"{n}\") {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         ::std::option::Option::None => {missing},\n\
         }}",
        n = f.name
    )
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => (name, serialize_named_fields("self.", fields)),
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{ let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{v}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__outer) }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("{ let mut __m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(\"{n}\".to_string(), \
                                 ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__m) }");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ \
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(\"{v}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__outer) }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| deserialize_field("__obj", f, name))
                .collect();
            (
                name,
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join(",\n")
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let __items = __v.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                     if __items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                     \"wrong tuple arity for {name}\"));\n}}\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (name, format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array for {name}::{v}\"))?;\n\
                             if __items.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"wrong arity for {name}::{v}\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{v}({items}))\n}}\n",
                            v = v.name,
                            items = items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let full = format!("{name}::{v}", v = v.name);
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| deserialize_field("__obj", f, &full))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object for {full}\"))?;\n\
                             ::std::result::Result::Ok({full} {{\n{inits}\n}})\n}}\n",
                            v = v.name,
                            inits = inits.join(",\n")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__m) => {{\n\
                     let (__k, __inner) = __m.iter().next().ok_or_else(|| \
                     ::serde::DeError::custom(\"empty object for {name}\"))?;\n\
                     match __k.as_str() {{\n\
                     {data_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }}\n}}\n\
                     _ => ::std::result::Result::Err(::serde::DeError::custom(\
                     \"expected string or object for {name}\")),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the vendored `serde::Serialize` (value-tree) trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` (value-tree) trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
