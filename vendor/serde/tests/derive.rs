//! Exercises the hand-rolled derive macros over every shape the
//! workspace uses: named structs, newtype/tuple structs, enums with
//! unit/tuple/struct variants, and the `#[serde(default)]` attrs.

use serde::{Deserialize, Serialize, Value};

fn default_availability() -> f64 {
    0.9
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pub name: String,
    pub dims: Vec<usize>,
    #[serde(default)]
    pub relu: bool,
    #[serde(default = "default_availability")]
    pub availability: f64,
    pub scale: (f32, f32),
    pub tags: std::collections::BTreeMap<String, u32>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Wrapper(pub u64);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pair(pub u32, pub String);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dynamics {
    Still,
    Jitter { jitter: f64 },
    Spiky { jitter: f64, drop_prob: f64 },
    Scaled(f32),
    Pinned(u32, u32),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nested {
    pub inner: Profile,
    pub modes: Vec<Dynamics>,
    pub maybe: Option<Wrapper>,
}

fn sample_profile() -> Profile {
    let mut tags = std::collections::BTreeMap::new();
    tags.insert("k".to_string(), 3u32);
    Profile {
        name: "edge-7".to_string(),
        dims: vec![8, 4, 3, 3],
        relu: true,
        availability: 0.42,
        scale: (1.5, -2.0),
        tags,
    }
}

#[test]
fn named_struct_roundtrip() {
    let p = sample_profile();
    assert_eq!(Profile::from_value(&p.to_value()).unwrap(), p);
}

#[test]
fn missing_fields_use_defaults() {
    let mut m = serde::Map::new();
    m.insert("name".to_string(), Value::String("x".to_string()));
    m.insert("dims".to_string(), Value::Array(vec![]));
    m.insert("scale".to_string(), (0.0f32, 0.0f32).to_value());
    m.insert("tags".to_string(), Value::Object(serde::Map::new()));
    let p = Profile::from_value(&Value::Object(m)).unwrap();
    assert!(!p.relu, "serde(default) should give bool::default()");
    assert_eq!(
        p.availability, 0.9,
        "serde(default = path) should call the fn"
    );
}

#[test]
fn missing_required_field_errors() {
    let m = serde::Map::new();
    let err = Profile::from_value(&Value::Object(m)).unwrap_err();
    assert!(err.to_string().contains("name"), "{err}");
}

#[test]
fn tuple_structs_roundtrip() {
    let w = Wrapper(99);
    // Newtype is transparent, like upstream serde.
    assert_eq!(w.to_value(), 99u64.to_value());
    assert_eq!(Wrapper::from_value(&w.to_value()).unwrap(), w);
    let p = Pair(7, "seven".to_string());
    assert_eq!(Pair::from_value(&p.to_value()).unwrap(), p);
}

#[test]
fn enum_variants_roundtrip() {
    for d in [
        Dynamics::Still,
        Dynamics::Jitter { jitter: 0.1 },
        Dynamics::Spiky {
            jitter: 0.1,
            drop_prob: 0.05,
        },
        Dynamics::Scaled(0.5),
        Dynamics::Pinned(3, 4),
    ] {
        assert_eq!(Dynamics::from_value(&d.to_value()).unwrap(), d, "{d:?}");
    }
}

#[test]
fn enum_tagging_is_external() {
    assert_eq!(
        Dynamics::Still.to_value(),
        Value::String("Still".to_string())
    );
    let v = Dynamics::Jitter { jitter: 0.25 }.to_value();
    let obj = v.as_object().unwrap();
    assert_eq!(obj.keys().collect::<Vec<_>>(), ["Jitter"]);
    assert_eq!(
        obj.get("Jitter").unwrap().get("jitter").unwrap().as_f64(),
        Some(0.25)
    );
}

#[test]
fn unknown_variant_errors() {
    let err = Dynamics::from_value(&Value::String("Wobbly".to_string())).unwrap_err();
    assert!(err.to_string().contains("Wobbly"), "{err}");
}

#[test]
fn nested_structures_roundtrip() {
    let n = Nested {
        inner: sample_profile(),
        modes: vec![Dynamics::Still, Dynamics::Pinned(1, 2)],
        maybe: None,
    };
    assert_eq!(Nested::from_value(&n.to_value()).unwrap(), n);
    let n2 = Nested {
        maybe: Some(Wrapper(5)),
        ..n
    };
    assert_eq!(Nested::from_value(&n2.to_value()).unwrap(), n2);
}

#[test]
fn object_fields_keep_declaration_order() {
    let v = sample_profile().to_value();
    let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
    assert_eq!(
        keys,
        ["name", "dims", "relu", "availability", "scale", "tags"]
    );
}
