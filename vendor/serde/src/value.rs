//! The JSON-like value tree both serialization directions go through.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key (objects) or index-as-string is not supported.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes a string with JSON escaping.
pub fn write_json_string(f: &mut impl std::fmt::Write, s: &str) -> std::fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// A JSON number: integer forms are kept exact so integers print
/// without a trailing `.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn from_u64(v: u64) -> Self {
        Number(N::PosInt(v))
    }

    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number(N::PosInt(v as u64))
        } else {
            Number(N::NegInt(v))
        }
    }

    /// Returns `None` for non-finite values, mirroring upstream.
    pub fn from_f64(v: f64) -> Option<Self> {
        v.is_finite().then_some(Number(N::Float(v)))
    }

    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        })
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(v) => (v.fract() == 0.0 && v.abs() < 9.2e18).then_some(v as i64),
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            N::NegInt(_) => None,
            N::Float(v) => (v.fract() == 0.0 && (0.0..1.8e19).contains(&v)).then_some(v as u64),
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            N::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e16 {
                    // Keep float-ness visible, as serde_json does.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map, so serialized objects keep
/// their field declaration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts or replaces; replacement keeps the original position.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}
