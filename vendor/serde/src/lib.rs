//! Offline stand-in for `serde`: a value-tree serialization framework
//! with the same derive ergonomics (`#[derive(Serialize, Deserialize)]`,
//! `#[serde(default)]`, `#[serde(default = "path")]`).
//!
//! Instead of upstream's visitor architecture, both directions go
//! through [`value::Value`] — ample for this workspace, where serde is
//! used for JSON result files and config round-trips.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Converts to the value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(DeError::custom)
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(DeError::custom)
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match Number::from_f64(*self as f64) {
                    Some(n) => Value::Number(n),
                    None => Value::Null,
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                if v.is_null() {
                    // Non-finite floats serialize as null.
                    return Ok(<$t>::NAN);
                }
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|got| {
            DeError::custom(format!("expected {N}-element array, got {}", got.len()))
        })
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let arity = [$($idx),+].len();
                if items.len() != arity {
                    return Err(DeError::custom(format!(
                        "expected {arity}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64, "x".to_string());
        assert_eq!(
            <(usize, f64, String)>::from_value(&t.to_value()).unwrap(),
            t
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            BTreeMap::<String, u32>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&5u32.to_value()).unwrap(),
            Some(5)
        );
    }

    #[test]
    fn nan_serializes_to_null_and_back() {
        let v = f64::NAN.to_value();
        assert!(v.is_null());
        assert!(f64::from_value(&v).unwrap().is_nan());
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
        assert!(<(u32, u32)>::from_value(&vec![1u32].to_value()).is_err());
    }
}
