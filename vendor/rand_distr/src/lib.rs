//! Offline stand-in for `rand_distr`: the `Normal` and `Gamma`
//! distributions the workspace samples from, over the vendored `rand`
//! traits. Algorithms are the standard ones (Box–Muller and
//! Marsaglia–Tsang), so statistical behavior matches upstream even
//! though the exact draw sequences differ.

use rand::distributions::Standard;
use rand::RngCore;

pub use rand::distributions::{Distribution, Uniform};

/// Error type for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation or shape parameter was not finite/positive.
    BadParam,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Floating-point scalar usable by the distributions here.
pub trait Float: Copy + PartialOrd {
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn from_f64(x: f64) -> Self {
        x as f32
    }

    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Float for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }

    fn to_f64(self) -> f64 {
        self
    }
}

/// Draws a standard-normal f64 via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = Standard.sample(rng);
        let u2: f64 = Standard.sample(rng);
        if u1 > 0.0 {
            let r = (-2.0 * u1.ln()).sqrt();
            return r * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, Error> {
        let sd = std_dev.to_f64();
        if !sd.is_finite() || sd < 0.0 {
            return Err(Error::BadParam);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let z = standard_normal(rng);
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// The gamma distribution with the given shape and scale.
#[derive(Debug, Clone, Copy)]
pub struct Gamma<F: Float> {
    shape: F,
    scale: F,
}

impl<F: Float> Gamma<F> {
    /// Creates a gamma distribution; both parameters must be finite
    /// and positive.
    pub fn new(shape: F, scale: F) -> Result<Self, Error> {
        let (k, s) = (shape.to_f64(), scale.to_f64());
        if !k.is_finite() || k <= 0.0 || !s.is_finite() || s <= 0.0 {
            return Err(Error::BadParam);
        }
        Ok(Gamma { shape, scale })
    }
}

impl<F: Float> Distribution<F> for Gamma<F> {
    /// Marsaglia–Tsang squeeze method; shape < 1 handled with the
    /// standard `U^(1/k)` boost.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let shape = self.shape.to_f64();
        let scale = self.scale.to_f64();
        let (k, boost) = if shape < 1.0 {
            let u: f64 = Standard.sample(rng);
            // Guard u == 0 so the boost stays finite.
            (shape + 1.0, u.max(f64::MIN_POSITIVE).powf(1.0 / shape))
        } else {
            (shape, 1.0)
        };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = Standard.sample(rng);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2
                || u.max(f64::MIN_POSITIVE).ln() < 0.5 * x2 + d * (1.0 - v + v.ln())
            {
                return F::from_f64(d * v * boost * scale);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngCore};

    struct Sm(u64);

    impl RngCore for Sm {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f32, f32::NAN).is_err());
        assert!(Normal::new(0.0f32, 0.5).is_ok());
    }

    #[test]
    fn normal_moments_match() {
        let mut r = Sm(3);
        let d = Normal::new(2.0f64, 3.0).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn gamma_rejects_bad_params() {
        assert!(Gamma::new(0.0f64, 1.0).is_err());
        assert!(Gamma::new(1.0f64, -1.0).is_err());
        assert!(Gamma::new(0.5f64, 1.0).is_ok());
    }

    #[test]
    fn gamma_moments_match_for_large_and_small_shape() {
        let mut r = Sm(4);
        for &shape in &[0.3f64, 2.5] {
            let d = Gamma::new(shape, 1.0).unwrap();
            let xs: Vec<f64> = (0..40_000).map(|_| d.sample(&mut r)).collect();
            let (mean, var) = moments(&xs);
            assert!((mean - shape).abs() < 0.08, "shape {shape}: mean {mean}");
            assert!((var - shape).abs() < 0.25, "shape {shape}: var {var}");
        }
    }

    #[test]
    fn gamma_samples_are_positive() {
        let mut r = Sm(5);
        let d = Gamma::new(0.1f64, 1.0).unwrap();
        for _ in 0..2000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn uniform_reexport_works() {
        let mut r = Sm(6);
        let d = Uniform::new_inclusive(-1.0f32, 1.0f32);
        for _ in 0..100 {
            let x = d.sample(&mut r);
            assert!((-1.0..=1.0).contains(&x));
        }
        let _ = r.gen::<f32>();
    }
}
