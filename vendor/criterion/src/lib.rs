//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness exposing the `Criterion`/`Bencher` builder surface and the
//! `criterion_group!`/`criterion_main!` macros. Reports mean/min/max
//! per benchmark to stdout; no plots, no statistics engine.

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the routine until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters == 0 {
                break;
            }
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
            if run_start.elapsed() > self.measurement_time {
                break;
            }
        }

        if samples_ns.is_empty() {
            println!("{id:<40} no samples");
            return self;
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples)",
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            samples_ns.len()
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times the routine under test.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` once under the timer. Each call accumulates into
    /// the current sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Groups benchmark functions, in either criterion form:
/// `criterion_group!(name, target1, target2)` or
/// `criterion_group! { name = n; config = expr; targets = t1, t2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        quick().bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0, "routine must actually run");
    }

    #[test]
    fn group_macro_both_forms_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group! {
            name = structured;
            config = super::tests::quick();
            targets = target
        }
        criterion_group!(positional, target);
        structured();
        positional();
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with(" s"));
    }
}
