//! Offline stand-in for the `bytes` crate: the subset the workspace
//! uses for wire frames. `Bytes` is a cheaply-cloneable immutable
//! buffer, `BytesMut` an append buffer, and `Buf`/`BufMut` the
//! big-endian read/write cursors (matching upstream's byte order).

use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer for building frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian write cursor.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian read cursor.
///
/// # Panics
///
/// All getters panic when fewer than the requested bytes remain,
/// matching upstream; length-check with [`Buf::remaining`] first for
/// fallible decoding.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f32(&mut self) -> f32 {
        f32::from_be_bytes(self.get_u32().to_be_bytes())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.get_u64().to_be_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        self.start += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_i8(-3);
        buf.put_u16(515);
        buf.put_u32(70_000);
        buf.put_u64(1 << 40);
        buf.put_f32(-2.5);
        buf.put_f64(std::f64::consts::PI);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_i8(), -3);
        assert_eq!(r.get_u16(), 515);
        assert_eq!(r.get_u32(), 70_000);
        assert_eq!(r.get_u64(), 1 << 40);
        assert_eq!(r.get_f32(), -2.5);
        assert_eq!(r.get_f64(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[1, 2]);
    }

    #[test]
    fn bytes_slice_shares_and_reads() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mut s = b.slice(2..6);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get_u16(), 0x0203);
        assert_eq!(s.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
