//! Offline stand-in for `serde_json`: JSON text parsing and printing
//! over the vendored `serde` value tree.

use serde::{Deserialize, Serialize};

pub use serde::value::{Map, Number};
pub use serde::Value;

/// Error from parsing or printing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// Byte offset the parser had reached, when relevant.
    at: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>, at: usize) -> Self {
        Error {
            msg: msg.into(),
            at: Some(at),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.at {
            Some(at) => write!(f, "JSON error at byte {at}: {}", self.msg),
            None => write!(f, "JSON error: {}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error {
            msg: e.to_string(),
            at: None,
        }
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a [`Value`].
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    Ok(T::from_value(&v)?)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                let _ = serde::value::write_json_string(out, k);
                out.push_str(": ");
                pretty(val, indent + 1, out);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(
                format!("expected `{}`", expected as char),
                self.pos,
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}`"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!("unexpected `{}`", b as char), self.pos)),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            // Surrogate pairs unsupported; map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the remaining text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        let number = if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new("invalid number", start))?;
            Number::from_f64(f).ok_or_else(|| Error::new("non-finite number", start))?
        } else if let Ok(u) = text.parse::<u64>() {
            Number::from_u64(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::from_i64(i)
        } else {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::new("invalid number", start))?;
            Number::from_f64(f).ok_or_else(|| Error::new("non-finite number", start))?
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert!(v.get("d").unwrap().is_null());
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn text_roundtrip_preserves_value() {
        let src = r#"{"rows": [{"m": "adaptivefl", "acc": 0.5125, "n": 40}], "ok": false}"#;
        let v: Value = from_str(src).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        let prettied = to_string_pretty(&v).unwrap();
        let v3: Value = from_str(&prettied).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Value = from_str(r#"{"a": [1, 2]}"#).unwrap();
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn integers_print_without_decimal_point() {
        let v: Value = from_str("[3, 3.0]").unwrap();
        assert_eq!(to_string(&v).unwrap(), "[3,3.0]");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2,, 3]").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn typed_from_str_works() {
        let xs: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let pair: (f64, String) = from_str(r#"[2.5, "hi"]"#).unwrap();
        assert_eq!(pair, (2.5, "hi".to_string()));
    }
}
