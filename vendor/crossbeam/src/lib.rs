//! Offline stand-in for `crossbeam`: scoped threads layered on
//! `std::thread::scope` (std has provided structured scopes since
//! 1.63, so the stand-in is a thin adapter keeping crossbeam's
//! call shape: `scope(|s| { s.spawn(|_| ...); })`).

pub mod thread {
    use std::thread as std_thread;

    /// The result of a scope: `Err` holds a payload if any spawned
    /// thread panicked.
    pub type Result<T> = std_thread::Result<T>;

    /// A handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from outside the scope.
        /// The closure receives the scope handle (crossbeam style) so
        /// nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope handle; joins all unjoined spawned
    /// threads before returning. Returns `Err` if any spawned thread
    /// panicked (after all threads complete).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let data = [1usize, 2, 3, 4];
        let out = thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| counter.fetch_add(x, Ordering::SeqCst)))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            counter.load(Ordering::SeqCst)
        })
        .unwrap();
        assert_eq!(out, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let out = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn panic_in_thread_is_reported() {
        let r = thread::scope(|s| {
            s.spawn::<_, ()>(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
