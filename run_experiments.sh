#!/bin/bash
# Regenerates every table and figure of the paper; logs under results/.
#
# Flags are forwarded to every binary: --full (larger configuration),
# --seed <n>, --resume <dir>, and --trace <dir>. With --resume each run
# checkpoints into its own subdirectory of <dir> every few rounds, so
# rerunning this script after a crash or interruption continues every
# run from its newest valid snapshot instead of starting over. With
# --trace each run streams a .jsonl trace into <dir>, and the script
# renders a combined trace_report at the end.
#
# For multi-seed statistics with confidence intervals and verdicts,
# run the sweep engine instead:
#   ./target/release/sweep --seeds 3 --jobs "$(nproc)"
#
# pipefail matters: every run is piped through tee, and without it a
# crashed experiment would vanish into tee's exit status 0.
set -uo pipefail
cd /root/repo
mkdir -p results/logs

# Detect --trace <dir> among the forwarded flags so we can render the
# report afterwards; the flag itself still reaches every binary.
trace_dir=""
prev=""
for a in "$@"; do
    if [ "$prev" = "--trace" ]; then
        trace_dir="$a"
    fi
    prev="$a"
done

for exp in table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 ablation; do
    echo "=== running $exp ($(date +%H:%M:%S)) ==="
    if ! ./target/release/$exp "$@" 2>&1 | tee results/logs/$exp.log; then
        echo "=== FAILED: $exp — see results/logs/$exp.log ===" >&2
        exit 1
    fi
done
echo "=== rendering summary ==="
if ! ./target/release/summarize "$@" 2>&1 | tee results/logs/summarize.log; then
    echo "=== FAILED: summarize — see results/logs/summarize.log ===" >&2
    exit 1
fi
if [ -n "$trace_dir" ]; then
    echo "=== rendering trace report ==="
    if ! ./target/release/trace_report "$trace_dir" 2>&1 | tee results/logs/trace_report.log; then
        echo "=== FAILED: trace_report — see results/logs/trace_report.log ===" >&2
        exit 1
    fi
fi
echo "=== all experiments done ($(date +%H:%M:%S)) ==="
