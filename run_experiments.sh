#!/bin/bash
# Regenerates every table and figure of the paper; logs under results/.
#
# Flags are forwarded to every binary: --full (larger configuration),
# --seed <n>, --resume <dir>, and --trace <dir>. With --resume each run
# checkpoints into its own subdirectory of <dir> every few rounds, so
# rerunning this script after a crash or interruption continues every
# run from its newest valid snapshot instead of starting over. With
# --trace each run streams a .jsonl trace into <dir>, and the script
# renders a combined trace_report at the end.
set -u
cd /root/repo
mkdir -p results/logs

# Detect --trace <dir> among the forwarded flags so we can render the
# report afterwards; the flag itself still reaches every binary.
trace_dir=""
prev=""
for a in "$@"; do
    if [ "$prev" = "--trace" ]; then
        trace_dir="$a"
    fi
    prev="$a"
done

for exp in table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 ablation; do
    echo "=== running $exp ($(date +%H:%M:%S)) ==="
    ./target/release/$exp "$@" 2>&1 | tee results/logs/$exp.log
done
echo "=== rendering summary ==="
./target/release/summarize "$@" 2>&1 | tee results/logs/summarize.log
if [ -n "$trace_dir" ]; then
    echo "=== rendering trace report ==="
    ./target/release/trace_report "$trace_dir" 2>&1 | tee results/logs/trace_report.log
fi
echo "=== all experiments done ($(date +%H:%M:%S)) ==="
