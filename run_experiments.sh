#!/bin/bash
# Regenerates every table and figure of the paper; logs under results/.
set -u
cd /root/repo
mkdir -p results/logs
for exp in table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 ablation; do
    echo "=== running $exp ($(date +%H:%M:%S)) ==="
    ./target/release/$exp "$@" 2>&1 | tee results/logs/$exp.log
done
echo "=== all experiments done ($(date +%H:%M:%S)) ==="
