#!/bin/bash
# Regenerates every table and figure of the paper; logs under results/.
#
# Flags are forwarded to every binary: --full (larger configuration),
# --seed <n>, and --resume <dir>. With --resume each run checkpoints
# into its own subdirectory of <dir> every few rounds, so rerunning
# this script after a crash or interruption continues every run from
# its newest valid snapshot instead of starting over.
set -u
cd /root/repo
mkdir -p results/logs
for exp in table1 table2 table3 table4 fig2 fig3 fig4 fig5 fig6 ablation; do
    echo "=== running $exp ($(date +%H:%M:%S)) ==="
    ./target/release/$exp "$@" 2>&1 | tee results/logs/$exp.log
done
echo "=== rendering summary ==="
./target/release/summarize "$@" 2>&1 | tee results/logs/summarize.log
echo "=== all experiments done ($(date +%H:%M:%S)) ==="
