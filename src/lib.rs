//! # AdaptiveFL
//!
//! A pure-Rust reproduction of **"AdaptiveFL: Adaptive Heterogeneous
//! Federated Learning for Resource-Constrained AIoT Systems"**
//! (Jia et al., DAC 2024): fine-grained width-wise model pruning,
//! RL-based client selection, and heterogeneous model aggregation, plus
//! the four baselines the paper compares against (All-Large, Decoupled,
//! HeteroFL, ScaleFL) and everything underneath — tensors, neural
//! networks with manual backprop, a width-configurable model zoo,
//! synthetic federated datasets, and an AIoT device simulator.
//!
//! This facade crate re-exports the workspace's public API under one
//! namespace:
//!
//! * [`tensor`] — dense f32 tensors and kernels,
//! * [`nn`] — layers, losses, SGD, named parameter maps,
//! * [`models`] — VGG16 / ResNet18 / MobileNetV2 / TinyCnn with width
//!   plans,
//! * [`data`] — synthetic federated datasets and partitioners,
//! * [`device`] — heterogeneous device simulation,
//! * [`core`] — the AdaptiveFL engine and baselines,
//! * [`comm`] — simulated transport: wire encoding, fault injection,
//!   round deadlines, parallel client execution,
//! * [`store`] — crash-safe checkpointing: CRC-checked snapshot files,
//!   atomic writes, retention, deterministic resume.
//!
//! # Quickstart
//!
//! ```no_run
//! use adaptivefl::core::methods::MethodKind;
//! use adaptivefl::core::sim::{SimConfig, Simulation};
//! use adaptivefl::data::{Partition, SynthSpec};
//!
//! let cfg = SimConfig::quick_test(42);
//! let mut sim = Simulation::prepare(
//!     &cfg,
//!     &SynthSpec::test_spec(4),
//!     Partition::Dirichlet(0.6),
//! );
//! let result = sim.run(MethodKind::AdaptiveFl);
//! println!("AdaptiveFL reached {:.1}%", 100.0 * result.final_full_accuracy());
//! ```
//!
//! (The dataset spec and `cfg.model` must agree in classes and input
//! shape; `SimConfig::quick_test` is pre-matched to
//! `SynthSpec::test_spec(4)` with an 8×8 input.)
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `adaptivefl-bench` crate for the binaries that regenerate every
//! table and figure of the paper.

/// Simulated federated transport: wire messages, fault injection,
/// round deadlines, parallel client execution.
pub use adaptivefl_comm as comm;
/// The AdaptiveFL engine: pool, pruning, RL selection, aggregation,
/// methods, simulator.
pub use adaptivefl_core as core;
/// Synthetic federated datasets and partitioners.
pub use adaptivefl_data as data;
/// Heterogeneous AIoT device simulation.
pub use adaptivefl_device as device;
/// Width-configurable model zoo.
pub use adaptivefl_models as models;
/// Neural-network substrate.
pub use adaptivefl_nn as nn;
/// Crash-safe snapshot persistence and deterministic resume.
pub use adaptivefl_store as store;
/// Tensor substrate.
pub use adaptivefl_tensor as tensor;
/// Structured tracing: recording/JSONL tracers and trace reports.
pub use adaptivefl_trace as trace;
