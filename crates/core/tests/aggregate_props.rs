//! Property tests for Algorithm 2 (heterogeneous aggregation):
//! uncovered elements keep the previous global value bit-for-bit, and
//! covered elements are the data-size-weighted mean of their
//! contributors — reproduced exactly by a same-order f32 replica and
//! within float tolerance of an f64 reference.

use std::sync::Mutex;

use adaptivefl_core::aggregate::{aggregate, aggregate_traced, Upload};
use adaptivefl_core::trace::{Phase, TraceEvent, Tracer};
use adaptivefl_nn::ParamMap;
use adaptivefl_tensor::Tensor;
use proptest::prelude::*;

fn one_param(name: &str, t: Tensor) -> ParamMap {
    let mut m = ParamMap::new();
    m.insert(name, t);
    m
}

/// Uploads drawn as (prefix length, constant value, weight) triples
/// over a length-`n` global vector.
fn build_uploads(n: usize, draws: &[(usize, f32, f32)]) -> Vec<Upload> {
    draws
        .iter()
        .map(|&(k, v, w)| Upload {
            params: one_param("w", Tensor::full(&[1 + k % n], v)),
            weight: w,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Line 14 of Algorithm 2: an element no upload covers keeps its
    /// previous global value, bit-for-bit.
    #[test]
    fn uncovered_elements_keep_previous_value(
        n in 2usize..16,
        init in -8.0f32..8.0,
        draws in prop::collection::vec(
            (0usize..64, -4.0f32..4.0, 0.5f32..40.0),
            1..6,
        ),
    ) {
        let before = Tensor::full(&[n], init);
        let mut global = one_param("w", before.clone());
        let uploads = build_uploads(n, &draws);
        let covered = uploads
            .iter()
            .map(|u| u.params.get("w").unwrap().shape()[0])
            .max()
            .unwrap();
        aggregate(&mut global, &uploads);
        let after = global.get("w").unwrap();
        for i in covered..n {
            prop_assert_eq!(
                after.as_slice()[i].to_bits(),
                before.as_slice()[i].to_bits(),
                "uncovered element {} changed", i
            );
        }
        // And every covered element did change ownership: with at
        // least one contributor its value is defined by the uploads
        // alone, so re-aggregating into a different global gives the
        // same covered prefix.
        let mut other = one_param("w", Tensor::full(&[n], init + 100.0));
        aggregate(&mut other, &uploads);
        for i in 0..covered {
            prop_assert_eq!(
                other.get("w").unwrap().as_slice()[i].to_bits(),
                after.as_slice()[i].to_bits(),
                "covered element {} depends on the previous global", i
            );
        }
    }

    /// Covered elements equal the data-size-weighted mean: exactly the
    /// same-order f32 accumulation (bit-for-bit), and within a loose
    /// bound of the f64 reference mean.
    #[test]
    fn covered_elements_are_weighted_mean(
        n in 1usize..12,
        draws in prop::collection::vec(
            (0usize..64, -4.0f32..4.0, 0.5f32..40.0),
            1..6,
        ),
    ) {
        let mut global = one_param("w", Tensor::full(&[n], 9.25));
        let uploads = build_uploads(n, &draws);
        aggregate(&mut global, &uploads);
        let after = global.get("w").unwrap();
        for i in 0..n {
            // Same-order f32 replica of the accumulator.
            let mut acc = 0.0f32;
            let mut cnt = 0.0f32;
            // f64 reference for the mathematical weighted mean.
            let mut acc64 = 0.0f64;
            let mut cnt64 = 0.0f64;
            for u in &uploads {
                let block = u.params.get("w").unwrap();
                if i < block.shape()[0] {
                    let v = block.as_slice()[i];
                    acc += u.weight * v;
                    cnt += u.weight;
                    acc64 += u.weight as f64 * v as f64;
                    cnt64 += u.weight as f64;
                }
            }
            if cnt == 0.0 {
                continue; // uncovered, checked elsewhere
            }
            let got = after.as_slice()[i];
            prop_assert_eq!(
                got.to_bits(),
                (acc / cnt).to_bits(),
                "element {} is not the same-order f32 weighted mean", i
            );
            let reference = (acc64 / cnt64) as f32;
            let ulp = (reference.abs() * f32::EPSILON).max(f32::MIN_POSITIVE);
            // ≤ 5 uploads ⇒ at most 9 f32 roundings ⇒ a few ULP.
            prop_assert!(
                (got - reference).abs() <= 16.0 * ulp,
                "element {} drifted from the f64 reference: {} vs {}",
                i, got, reference
            );
        }
    }
}

/// A minimal collecting tracer local to this test (the real recording
/// tracer lives downstream in `adaptivefl-trace`).
#[derive(Default)]
struct CoverageTracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer for CoverageTracer {
    fn enabled(&self) -> bool {
        true
    }
    fn event(&self, event: TraceEvent) {
        self.events.lock().unwrap().push(event);
    }
    fn phase(&self, _phase: Phase, _nanos: u64) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The coverage events `aggregate_traced` emits agree with an
    /// independent count of covered elements, and tracing leaves the
    /// aggregation result bit-identical.
    #[test]
    fn layer_coverage_events_match_reality(
        n in 1usize..12,
        draws in prop::collection::vec(
            (0usize..64, -4.0f32..4.0, 0.5f32..40.0),
            1..6,
        ),
    ) {
        let mut traced = one_param("w", Tensor::full(&[n], 1.5));
        let mut untraced = traced.clone();
        let uploads = build_uploads(n, &draws);
        let tracer = CoverageTracer::default();
        aggregate_traced(&mut traced, &uploads, &tracer, 7);
        aggregate(&mut untraced, &uploads);
        for (a, b) in traced
            .get("w").unwrap().as_slice().iter()
            .zip(untraced.get("w").unwrap().as_slice())
        {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "tracing perturbed aggregation");
        }

        let covered_want = uploads
            .iter()
            .map(|u| u.params.get("w").unwrap().shape()[0])
            .max()
            .unwrap()
            .min(n) as u64;
        let events = tracer.events.lock().unwrap();
        prop_assert_eq!(events.len(), 1);
        match &events[0] {
            TraceEvent::LayerCoverage { round, layer, covered, total, uploads: nup } => {
                prop_assert_eq!(*round, 7usize);
                prop_assert_eq!(layer.as_str(), "w");
                prop_assert_eq!(*covered, covered_want);
                prop_assert_eq!(*total, n as u64);
                prop_assert_eq!(*nup, uploads.len());
            }
            other => return Err(TestCaseError::fail(format!("unexpected event {other:?}"))),
        }
    }
}
