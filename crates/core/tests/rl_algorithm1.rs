//! Unit and property tests pinning the RL tables to Algorithm 1 of
//! the paper: the `1/√n` curiosity bonus (MBIE-EB), the `T_r` updates
//! of lines 12–26, and the `min(0.5, R_s) · R_c` reward cap.

use adaptivefl_core::pool::{Level, ModelPool, DEFAULT_RATIOS};
use adaptivefl_core::rl::RlState;
use adaptivefl_models::ModelConfig;
use proptest::prelude::*;

fn pool() -> ModelPool {
    ModelPool::split(&ModelConfig::tiny(10), 3, DEFAULT_RATIOS)
}

/// A transparent reference model of Algorithm 1's table updates
/// (lines 12–26), kept deliberately naive so any drift in the real
/// implementation shows up as a mismatch.
struct ReferenceTables {
    t_c: Vec<Vec<f64>>,
    t_r: Vec<Vec<f64>>,
    p: usize,
}

impl ReferenceTables {
    fn new(pool: &ModelPool, clients: usize) -> Self {
        ReferenceTables {
            t_c: vec![vec![1.0; clients]; 3],
            t_r: vec![vec![1.0; clients]; pool.len()],
            p: pool.p(),
        }
    }

    fn dispatch(&mut self, level: Level, client: usize) {
        // Line 12.
        self.t_c[level.type_index()][client] += 1.0;
    }

    fn ret(&mut self, pool: &ModelPool, sent: usize, returned: Option<usize>, client: usize) {
        let top = pool.len();
        match returned {
            Some(ret) if ret == sent => {
                // Line 13 + lines 15–18.
                self.t_c[pool.entry(ret).level.type_index()][client] += 1.0;
                for t in sent..top {
                    self.t_r[t][client] += 1.0;
                }
                self.t_r[top - 1][client] += (self.p - 1) as f64;
            }
            Some(ret) => {
                // Line 13 + lines 20–25.
                self.t_c[pool.entry(ret).level.type_index()][client] += 1.0;
                self.t_r[ret][client] += self.p as f64;
                for (tau, t) in (ret..top).enumerate() {
                    self.t_r[t][client] = (self.t_r[t][client] - tau as f64).max(0.0);
                }
            }
            None => {
                for t in 0..top {
                    self.t_r[t][client] = (self.t_r[t][client] - (t + 1) as f64).max(0.0);
                }
            }
        }
    }
}

#[test]
fn curiosity_bonus_is_exactly_inverse_sqrt() {
    // After n dispatches of one type, T_c = 1 + n and the bonus is
    // 1/√(1+n) — bit-for-bit, not approximately.
    let mut rl = RlState::new(3, 2);
    for n in 0u32..100 {
        for level in Level::all() {
            assert_eq!(rl.curiosity(level, 0), 1.0 + n as f64);
            assert_eq!(
                rl.curiosity_reward(level, 0).to_bits(),
                (1.0 / (1.0 + n as f64).sqrt()).to_bits(),
                "bonus must be exactly 1/sqrt(T_c) at n={n}"
            );
        }
        for level in Level::all() {
            rl.update_on_dispatch(level, 0);
        }
    }
    // The untouched client never moved.
    assert_eq!(rl.curiosity_reward(Level::Small, 1), 1.0);
}

#[test]
fn full_success_matches_lines_15_18() {
    let p = pool();
    let mut rl = RlState::new(p.p(), 1);
    let sent = 3;
    rl.update_on_return(&p, sent, Some(sent), 0);
    // Curiosity for the returned type bumped (line 13).
    assert_eq!(rl.curiosity(p.entry(sent).level, 0), 2.0);
    // Sizes below `sent` untouched; `sent..top` gain one point each;
    // L_1 gains the extra p−1 bonus (lines 15–18).
    for t in 0..sent {
        assert_eq!(rl.score(t, 0), 1.0, "index {t}");
    }
    for t in sent..p.len() - 1 {
        assert_eq!(rl.score(t, 0), 2.0, "index {t}");
    }
    assert_eq!(rl.score(p.len() - 1, 0), 2.0 + (p.p() - 1) as f64);
}

#[test]
fn local_prune_matches_lines_20_25() {
    let p = pool();
    let mut rl = RlState::new(p.p(), 1);
    let (sent, ret) = (p.len() - 1, 2);
    rl.update_on_return(&p, sent, Some(ret), 0);
    // The achieved size gains +p, then the growing τ walks upward from
    // it: score(ret) = 1 + p − 0, score(ret+1) = 1 − 1, score(ret+2) =
    // 1 − 2 → 0, … (lines 20–25).
    assert_eq!(rl.score(ret, 0), 1.0 + p.p() as f64);
    assert_eq!(rl.score(ret + 1, 0), 0.0);
    for t in ret + 2..p.len() {
        assert_eq!(rl.score(t, 0), 0.0, "index {t}");
    }
    for t in 0..ret {
        assert_eq!(rl.score(t, 0), 1.0, "index {t}");
    }
}

#[test]
fn reward_cap_is_min_half_rs_times_rc() {
    let p = pool();
    let mut rl = RlState::new(p.p(), 2);
    // Drive client 0's small-model success estimate above the cap.
    for _ in 0..60 {
        rl.update_on_return(&p, p.len() - 1, Some(p.len() - 1), 0);
    }
    for idx in 0..p.len() {
        let rs = rl.resource_reward(&p, idx, 0);
        let rc = rl.curiosity_reward(p.entry(idx).level, 0);
        let want = rs.min(0.5) * rc;
        let got = rl.reward(&p, idx, 0);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "index {idx}: {got} vs {want}"
        );
        assert!(got <= 0.5 * rc + f64::EPSILON, "cap exceeded at {idx}");
    }
    // A cap of 1.0 disables the clamp for every sub-1 R_s.
    let uncapped = RlState::new(p.p(), 1).with_reward_cap(1.0);
    for idx in 0..p.len() {
        let rs = uncapped.resource_reward(&p, idx, 0);
        assert!(rs < 1.0, "fresh R_s must be below 1: {rs}");
        let want = rs * uncapped.curiosity_reward(p.entry(idx).level, 0);
        assert_eq!(uncapped.reward(&p, idx, 0).to_bits(), want.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of dispatches and returns leaves the tables
    /// exactly where the naive line-by-line transcription of
    /// Algorithm 1 puts them.
    #[test]
    fn table_updates_match_reference_model(
        ops in prop::collection::vec(
            // (client, sent index, returned offset; offset 0 ⇒ total
            // failure, k>0 ⇒ returned index (k−1) clamped to sent).
            (0usize..4, 0usize..7, 0usize..9),
            1..40,
        ),
    ) {
        let p = pool();
        let mut rl = RlState::new(p.p(), 4);
        let mut reference = ReferenceTables::new(&p, 4);
        for &(client, sent, ret_draw) in &ops {
            let level = p.entry(sent).level;
            rl.update_on_dispatch(level, client);
            reference.dispatch(level, client);
            let returned = match ret_draw {
                0 => None,
                k => Some((k - 1).min(sent)),
            };
            rl.update_on_return(&p, sent, returned, client);
            reference.ret(&p, sent, returned, client);
        }
        for level in Level::all() {
            for c in 0..4 {
                prop_assert_eq!(
                    rl.curiosity(level, c).to_bits(),
                    reference.t_c[level.type_index()][c].to_bits()
                );
            }
        }
        for t in 0..p.len() {
            for c in 0..4 {
                prop_assert_eq!(
                    rl.score(t, c).to_bits(),
                    reference.t_r[t][c].to_bits()
                );
            }
        }
    }

    /// The combined reward never exceeds the capped product, for any
    /// training history and any pool index.
    #[test]
    fn reward_never_exceeds_cap_times_curiosity(
        ops in prop::collection::vec((0usize..3, 0usize..7, 0usize..9), 0..30),
        idx in 0usize..7,
        client in 0usize..3,
    ) {
        let p = pool();
        let mut rl = RlState::new(p.p(), 3);
        for &(c, sent, ret_draw) in &ops {
            rl.update_on_dispatch(p.entry(sent).level, c);
            let returned = match ret_draw {
                0 => None,
                k => Some((k - 1).min(sent)),
            };
            rl.update_on_return(&p, sent, returned, c);
        }
        let rc = rl.curiosity_reward(p.entry(idx).level, client);
        let rs = rl.resource_reward(&p, idx, client);
        let r = rl.reward(&p, idx, client);
        prop_assert!(r >= 0.0);
        prop_assert_eq!(r.to_bits(), (rs.min(0.5) * rc).to_bits());
        prop_assert!(r <= 0.5 * rc);
    }
}
