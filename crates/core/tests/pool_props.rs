//! Property tests for `Split(M)`: every `(family, p, ratios)` choice
//! yields an ordered `2p+1` pool whose entries nest within their level
//! and inside `L_1`, with every fine-grained start unit `I ≥ τ`.

use adaptivefl_core::pool::{Level, ModelPool, DEFAULT_RATIOS};
use adaptivefl_models::ModelConfig;
use proptest::prelude::*;

fn family(idx: usize) -> ModelConfig {
    match idx % 4 {
        0 => ModelConfig::tiny(10),
        1 => ModelConfig::vgg16_fast(10),
        2 => ModelConfig::resnet18_fast(10),
        _ => ModelConfig::mobilenet_v2_fast(10),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structure: `2p+1` entries, globally ordered by size, `p` per
    /// fine-grained level plus the single full model on top.
    #[test]
    fn pool_is_ordered_2p_plus_1(
        fam in 0usize..4,
        p in 1usize..4,
        rs in 0.30f32..0.50,
        dm in 0.12f32..0.35,
    ) {
        let cfg = family(fam);
        let pool = ModelPool::split(&cfg, p, (rs, rs + dm));
        prop_assert_eq!(pool.len(), 2 * p + 1);
        prop_assert_eq!(pool.level_indices(Level::Small).len(), p);
        prop_assert_eq!(pool.level_indices(Level::Medium).len(), p);
        prop_assert_eq!(pool.level_indices(Level::Large).len(), 1);
        for (i, e) in pool.entries().iter().enumerate() {
            prop_assert_eq!(e.index, i, "entries must be re-indexed after sort");
        }
        for w in pool.entries().windows(2) {
            prop_assert!(
                w[0].params <= w[1].params,
                "{} ({}) must not outweigh {} ({})",
                w[0].name(), w[0].params, w[1].name(), w[1].params
            );
        }
        prop_assert_eq!(pool.largest().level, Level::Large);
        prop_assert_eq!(pool.largest().params, cfg.num_params(&cfg.full_plan()));
    }

    /// Nesting: within a level, each entry's width plan is physically
    /// nested in the next larger one of the same level, and every
    /// entry nests inside the full model `L_1`. (Cross-level entries
    /// need not nest — S and M use different width ratios.)
    #[test]
    fn entries_nest_within_level_and_in_l1(
        fam in 0usize..4,
        p in 1usize..4,
        rs in 0.30f32..0.50,
        dm in 0.12f32..0.35,
    ) {
        let cfg = family(fam);
        let pool = ModelPool::split(&cfg, p, (rs, rs + dm));
        let full = &pool.largest().plan;
        for e in pool.entries() {
            prop_assert!(
                e.plan.nested_in(full),
                "{} must nest in L_1", e.name()
            );
        }
        for level in [Level::Small, Level::Medium] {
            let idx = pool.level_indices(level);
            for w in idx.windows(2) {
                let (small, large) = (pool.entry(w[0]), pool.entry(w[1]));
                prop_assert!(
                    small.plan.nested_in(&large.plan),
                    "{} must nest in {}", small.name(), large.name()
                );
            }
        }
    }

    /// The paper's threshold: every fine-grained start unit satisfies
    /// `I ≥ τ` — shallow layers are never pruned (§3.2) — and `I` is
    /// drawn from the family's allowed list.
    #[test]
    fn start_units_respect_tau(
        fam in 0usize..4,
        p in 1usize..4,
    ) {
        let cfg = family(fam);
        let tau = cfg.min_start_unit();
        let allowed = cfg.allowed_start_units();
        let pool = ModelPool::split(&cfg, p, DEFAULT_RATIOS);
        for e in pool.entries() {
            if e.level == Level::Large {
                continue; // L_1 is unpruned; its spec has no I.
            }
            prop_assert!(
                e.spec.start_unit >= tau,
                "{}: I = {} below tau = {}", e.name(), e.spec.start_unit, tau
            );
            prop_assert!(
                allowed.contains(&e.spec.start_unit),
                "{}: I = {} not an allowed start unit", e.name(), e.spec.start_unit
            );
        }
        // Within a level, larger rank numbers mean smaller models,
        // i.e. start units descend toward tau with rank.
        for level in [Level::Small, Level::Medium] {
            let idx = pool.level_indices(level);
            for w in idx.windows(2) {
                prop_assert!(
                    pool.entry(w[0]).spec.start_unit <= pool.entry(w[1]).spec.start_unit,
                    "start units must ascend with size within level {:?}", level
                );
            }
        }
    }
}
