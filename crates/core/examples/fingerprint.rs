//! Bit-identity fingerprint: print the legacy round/eval fields of a
//! quick-test run for every method, for diffing across refactors
//! (`cargo run --release -p adaptivefl-core --example fingerprint`).
//! The simulator is deterministic, so any accounting or RNG-stream
//! drift shows up as a diff.

use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_data::{Partition, SynthSpec};

fn main() {
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    for kind in [
        MethodKind::AdaptiveFl,
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
        MethodKind::AllLarge,
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
    ] {
        let cfg = SimConfig::quick_test(900);
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.5));
        let res = sim.run(kind);
        // The fingerprint prints the legacy round/eval fields only
        // (the comm field is absent pre-refactor).
        print!("{}", res.fingerprint());
    }
}
