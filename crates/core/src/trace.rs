//! Structured observability for the round loop.
//!
//! A [`Tracer`] receives two kinds of signals while a simulation runs:
//!
//! * **events** ([`TraceEvent`]) — structured facts about what the
//!   server and clients did: which pool submodel each client received
//!   (§3.2), how the RL tables were updated (Algorithm 1, lines
//!   12–26), which parameter elements the heterogeneous aggregation
//!   covered (Algorithm 2), per-client transport outcomes, and
//!   checkpoint activity. Events carry *only deterministic data* —
//!   round indices, client ids, byte counts, losses — never wall-clock
//!   time.
//! * **phase durations** ([`Phase`]) — monotonic wall-clock nanoseconds
//!   for each execution phase, measured with [`PhaseTimer`]. Wall-clock
//!   readings flow exclusively through this channel, so they can never
//!   leak into the deterministic run state: a traced run's
//!   [`RunResult`](crate::metrics::RunResult) is bit-identical to an
//!   untraced one (asserted by the `adaptivefl-trace` determinism
//!   tests).
//!
//! The default tracer is [`NoopTracer`]. Every emission site guards on
//! [`Tracer::enabled`], so when tracing is off no event is constructed
//! and no clock is read — the hot path pays one predictable branch.
//! `adaptivefl-trace` provides the real implementations
//! (`RecordingTracer` for in-memory capture, `JsonlTracer` for
//! streaming a run to disk) and the report renderer.

use std::time::Instant;

/// Execution phases a tracer can time. The variants mirror the round
/// loop: a `Round` contains `Dispatch`, per-client `ClientTrain`,
/// `Collect` and `Aggregate`; `Eval` and `Checkpoint` happen between
/// rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One full federated round (dispatch → exchange → aggregate).
    Round,
    /// One client's local training (runs inside the transport,
    /// possibly on a worker thread).
    ClientTrain,
    /// Server-side job construction and RL dispatch updates.
    Dispatch,
    /// Server-side consumption of deliveries (RL return updates,
    /// upload gathering).
    Collect,
    /// Heterogeneous aggregation (Algorithm 2).
    Aggregate,
    /// Evaluation of the global/per-level models.
    Eval,
    /// Snapshot encode + write (or read, on resume).
    Checkpoint,
}

impl Phase {
    /// Stable lower-case name used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Round => "round",
            Phase::ClientTrain => "client_train",
            Phase::Dispatch => "dispatch",
            Phase::Collect => "collect",
            Phase::Aggregate => "aggregate",
            Phase::Eval => "eval",
            Phase::Checkpoint => "checkpoint",
        }
    }

    /// Every phase, in report order.
    pub fn all() -> [Phase; 7] {
        [
            Phase::Round,
            Phase::ClientTrain,
            Phase::Dispatch,
            Phase::Collect,
            Phase::Aggregate,
            Phase::Eval,
            Phase::Checkpoint,
        ]
    }

    /// Parses a name produced by [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::all().into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured fact about a run. All payloads are deterministic:
/// they derive from the seeded simulation only, never from wall-clock
/// time or thread scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A run (fresh or resumed) entered the round loop.
    RunStart {
        /// Method display name.
        method: String,
        /// First round the loop will execute (>0 on resume).
        start_round: usize,
        /// Total configured rounds.
        rounds: usize,
    },
    /// A round began.
    RoundStart {
        /// Round index (0-based).
        round: usize,
    },
    /// A round completed.
    RoundEnd {
        /// Round index.
        round: usize,
        /// Simulated (not wall-clock) round duration, seconds.
        sim_secs: f64,
        /// Clients that failed to return anything.
        failures: usize,
    },
    /// The server dispatched a model to a client.
    Dispatch {
        /// Round index.
        round: usize,
        /// Target client.
        client: usize,
        /// Method-specific tag (pool index for AdaptiveFL, level index
        /// for the baselines).
        tag: usize,
        /// Parameter elements sent down the link.
        params: u64,
    },
    /// A client finished local training (emitted from inside the
    /// client job, before the uplink).
    ClientTrain {
        /// Round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Client-side tag (e.g. the pool index it pruned down to).
        tag: usize,
        /// Local training loss.
        loss: f32,
        /// Local samples trained on.
        samples: usize,
        /// Per-sample MACs of the trained submodel.
        macs_per_sample: u64,
    },
    /// The server consumed one delivery.
    Collect {
        /// Round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Delivery status name (`delivered`, `training_failed`,
        /// `dropped`, `late`, `crashed`).
        status: &'static str,
        /// Parameter elements that arrived (0 unless delivered).
        up_params: u64,
    },
    /// Aggregation coverage of one parameter tensor (Algorithm 2):
    /// how many of its elements were covered by at least one upload.
    LayerCoverage {
        /// Round index.
        round: usize,
        /// Parameter name.
        layer: String,
        /// Elements covered by ≥1 upload this round.
        covered: u64,
        /// Total elements in the tensor.
        total: u64,
        /// Number of uploads contributing to this tensor.
        uploads: usize,
    },
    /// Curiosity-table update at dispatch (Algorithm 1, line 12).
    RlDispatch {
        /// Round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Curiosity row (`T_c` type index: S=0, M=1, L=2).
        level: usize,
    },
    /// Resource-table update at return (Algorithm 1, lines 13–26).
    RlReturn {
        /// Round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Dispatched pool index.
        sent: usize,
        /// Returned pool index, or `None` on total failure.
        returned: Option<usize>,
    },
    /// Per-client transport outcome (emitted by fault-injecting
    /// transports).
    Comm {
        /// Round index.
        round: usize,
        /// Client id.
        client: usize,
        /// Payload bytes down the link.
        bytes_down: u64,
        /// Payload bytes that arrived back (0 unless delivered).
        bytes_up: u64,
        /// Delivery status name.
        status: &'static str,
        /// Whether a straggler delay hit this client.
        straggled: bool,
    },
    /// A snapshot was saved.
    CheckpointSave {
        /// Completed rounds at the checkpoint.
        round: usize,
    },
    /// A snapshot was loaded for resume.
    CheckpointLoad {
        /// Completed rounds in the loaded snapshot.
        round: usize,
    },
    /// An evaluation completed.
    Eval {
        /// Round index evaluated after.
        round: usize,
        /// Full (global-model) accuracy.
        full: f32,
    },
}

impl TraceEvent {
    /// Stable snake_case tag naming the event type (the `type` field
    /// of the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::Dispatch { .. } => "dispatch",
            TraceEvent::ClientTrain { .. } => "client_train",
            TraceEvent::Collect { .. } => "collect",
            TraceEvent::LayerCoverage { .. } => "layer_coverage",
            TraceEvent::RlDispatch { .. } => "rl_dispatch",
            TraceEvent::RlReturn { .. } => "rl_return",
            TraceEvent::Comm { .. } => "comm",
            TraceEvent::CheckpointSave { .. } => "checkpoint_save",
            TraceEvent::CheckpointLoad { .. } => "checkpoint_load",
            TraceEvent::Eval { .. } => "eval",
        }
    }
}

/// Stable status name for a [`DeliveryStatus`](crate::transport::DeliveryStatus)
/// in traces.
pub fn status_name(status: crate::transport::DeliveryStatus) -> &'static str {
    use crate::transport::DeliveryStatus::*;
    match status {
        Delivered => "delivered",
        TrainingFailed => "training_failed",
        Dropped => "dropped",
        Late => "late",
        Crashed => "crashed",
    }
}

/// A sink for trace signals. Implementations must be `Sync`: client
/// jobs emit [`TraceEvent::ClientTrain`] from transport worker
/// threads.
///
/// The contract every implementation must keep: **consume signals
/// without feeding anything back** — a tracer never touches RNGs,
/// model state or records, so traced and untraced runs are
/// bit-identical.
pub trait Tracer: Send + Sync {
    /// `true` when the tracer wants signals. Emission sites guard on
    /// this, so a disabled tracer costs one branch and zero
    /// allocations or clock reads.
    fn enabled(&self) -> bool;

    /// Receives one structured event.
    fn event(&self, event: TraceEvent);

    /// Receives one phase duration in monotonic nanoseconds.
    fn phase(&self, phase: Phase, nanos: u64);
}

/// The default tracer: discards everything, reports itself disabled,
/// and (thanks to the `enabled` guards at every site) compiles the hot
/// paths down to untraced code.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn enabled(&self) -> bool {
        false
    }

    fn event(&self, _event: TraceEvent) {}

    fn phase(&self, _phase: Phase, _nanos: u64) {}
}

/// Times one phase against a tracer. When the tracer is disabled the
/// clock is never read.
///
/// ```ignore
/// let timer = PhaseTimer::start(tracer, Phase::Aggregate);
/// aggregate(...);
/// timer.stop(tracer);
/// ```
#[must_use = "call stop() to record the duration"]
pub struct PhaseTimer {
    phase: Phase,
    start: Option<Instant>,
}

impl PhaseTimer {
    /// Starts timing `phase` (a no-op when the tracer is disabled).
    pub fn start(tracer: &dyn Tracer, phase: Phase) -> Self {
        PhaseTimer {
            phase,
            start: tracer.enabled().then(Instant::now),
        }
    }

    /// Stops the timer and reports the elapsed nanoseconds.
    pub fn stop(self, tracer: &dyn Tracer) {
        if let Some(t0) = self.start {
            tracer.phase(self.phase, t0.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let t = NoopTracer;
        assert!(!t.enabled());
        t.event(TraceEvent::RoundStart { round: 0 });
        t.phase(Phase::Round, 123);
    }

    #[test]
    fn noop_timer_never_reads_the_clock() {
        let t = NoopTracer;
        let timer = PhaseTimer::start(&t, Phase::Aggregate);
        assert!(timer.start.is_none());
        timer.stop(&t);
    }

    #[test]
    fn phase_names_roundtrip() {
        for p in Phase::all() {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn event_kinds_are_distinct() {
        let events = [
            TraceEvent::RunStart {
                method: "m".into(),
                start_round: 0,
                rounds: 1,
            },
            TraceEvent::RoundStart { round: 0 },
            TraceEvent::RoundEnd {
                round: 0,
                sim_secs: 0.0,
                failures: 0,
            },
            TraceEvent::Dispatch {
                round: 0,
                client: 0,
                tag: 0,
                params: 0,
            },
            TraceEvent::ClientTrain {
                round: 0,
                client: 0,
                tag: 0,
                loss: 0.0,
                samples: 0,
                macs_per_sample: 0,
            },
            TraceEvent::Collect {
                round: 0,
                client: 0,
                status: "delivered",
                up_params: 0,
            },
            TraceEvent::LayerCoverage {
                round: 0,
                layer: "w".into(),
                covered: 0,
                total: 0,
                uploads: 0,
            },
            TraceEvent::RlDispatch {
                round: 0,
                client: 0,
                level: 0,
            },
            TraceEvent::RlReturn {
                round: 0,
                client: 0,
                sent: 0,
                returned: None,
            },
            TraceEvent::Comm {
                round: 0,
                client: 0,
                bytes_down: 0,
                bytes_up: 0,
                status: "delivered",
                straggled: false,
            },
            TraceEvent::CheckpointSave { round: 0 },
            TraceEvent::CheckpointLoad { round: 0 },
            TraceEvent::Eval {
                round: 0,
                full: 0.0,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn status_names_cover_every_status() {
        use crate::transport::DeliveryStatus::*;
        let mut names: Vec<&str> = [Delivered, TrainingFailed, Dropped, Late, Crashed]
            .into_iter()
            .map(status_name)
            .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
