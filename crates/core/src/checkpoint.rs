//! Crash-safe checkpointing: the state every server-side component
//! must expose so a run can be snapshotted mid-way and resumed
//! bit-identically.
//!
//! The pieces:
//!
//! * [`MethodState`] — a method-agnostic container for everything an
//!   [`FlMethod`](crate::methods::FlMethod) owns: named parameter maps
//!   (the global model, or one per level for Decoupled), the optional
//!   [`RlState`] tables, and opaque extras for forward compatibility.
//! * [`Checkpointable`] — capture/restore over [`MethodState`];
//!   a supertrait of `FlMethod`, so every method is checkpointable by
//!   construction.
//! * [`ServerSnapshot`] — one frozen run: config fingerprint, method
//!   kind and state, the run RNG's reconstruction words, the model-pool
//!   shape (for validation) and the accumulated round/eval history.
//! * [`SnapshotSink`] — where snapshots go during a run. The
//!   `adaptivefl-store` crate provides the durable, CRC-checked,
//!   atomically-written implementation; [`MemorySink`] collects
//!   snapshots in memory for tests.
//!
//! Determinism contract: a run resumed from a snapshot taken after
//! round `R` replays rounds `R+1..T` with the exact RNG stream and
//! server state of the uninterrupted run, so the final accuracy, RL
//! tables and [`CommStats`](crate::transport::CommStats) are
//! bit-identical at any thread count (see `Simulation::resume_*`).

use adaptivefl_nn::ParamMap;
use rand_chacha::ChaCha8Rng;

use crate::error::CoreError;
use crate::methods::MethodKind;
use crate::metrics::{EvalRecord, RoundRecord};
use crate::rl::RlState;

/// Everything one [`FlMethod`](crate::methods::FlMethod) owns, in a
/// method-agnostic shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MethodState {
    /// Named parameter maps, e.g. `[("global", …)]` or one entry per
    /// Decoupled level. Order is part of the contract: restore matches
    /// by position after validating names.
    pub params: Vec<(String, ParamMap)>,
    /// RL tables for methods that carry them (AdaptiveFL variants).
    pub rl: Option<RlState>,
    /// Method-specific opaque extras (`key` → bytes), reserved for
    /// methods whose state outgrows the two fields above.
    pub extra: Vec<(String, Vec<u8>)>,
}

impl MethodState {
    /// The common single-global-model state.
    pub fn single(global: ParamMap) -> Self {
        MethodState {
            params: vec![("global".to_string(), global)],
            rl: None,
            extra: Vec::new(),
        }
    }

    /// Takes the single `"global"` parameter map out of the state.
    pub fn into_single(mut self) -> Result<ParamMap, CoreError> {
        if self.params.len() != 1 || self.params[0].0 != "global" {
            return Err(CoreError::Snapshot(format!(
                "expected one \"global\" parameter map, found {:?}",
                self.params.iter().map(|(n, _)| n).collect::<Vec<_>>()
            )));
        }
        Ok(self.params.remove(0).1)
    }
}

/// Capture/restore of server-side state. A supertrait of
/// [`FlMethod`](crate::methods::FlMethod): every method must be able to
/// freeze itself into a [`MethodState`] and later restore from one.
pub trait Checkpointable {
    /// Freezes the current state.
    fn capture(&self) -> MethodState;

    /// Replaces the current state with a previously captured one.
    ///
    /// Implementations must validate structural compatibility (map
    /// count/names, table dimensions) and return
    /// [`CoreError::Snapshot`] on mismatch rather than panic.
    fn restore(&mut self, state: MethodState) -> Result<(), CoreError>;
}

/// One frozen run, as captured between rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// The method kind, when the run was started from a
    /// [`MethodKind`]; `None` for explicitly constructed methods
    /// (whose resume goes through
    /// `Simulation::resume_method_with_transport`).
    pub kind: Option<MethodKind>,
    /// The method's display name (resume validates it).
    pub method_name: String,
    /// Rounds fully completed (the resumed run starts at this index).
    pub completed_rounds: usize,
    /// The run RNG's reconstruction words
    /// ([`ChaCha8Rng::state_words`]).
    pub rng_words: Vec<u32>,
    /// The frozen method state.
    pub method: MethodState,
    /// Per-round history up to `completed_rounds`.
    pub rounds: Vec<RoundRecord>,
    /// Evaluation history up to `completed_rounds`.
    pub evals: Vec<EvalRecord>,
    /// Deterministic fingerprint of the [`SimConfig`](crate::sim::SimConfig)
    /// (its `Debug` rendering); resume refuses a mismatched
    /// environment.
    pub cfg_fingerprint: String,
    /// `p` of the model pool the run was built on.
    pub pool_p: usize,
    /// Per-entry parameter counts of the pool, ascending — a cheap
    /// structural check that the resumed environment splits the model
    /// identically.
    pub pool_params: Vec<u64>,
}

impl ServerSnapshot {
    /// Rebuilds the run RNG frozen in this snapshot.
    pub fn rng(&self) -> Result<ChaCha8Rng, CoreError> {
        let words: [u32; ChaCha8Rng::STATE_WORDS] =
            self.rng_words.as_slice().try_into().map_err(|_| {
                CoreError::Snapshot(format!(
                    "rng state has {} words, want {}",
                    self.rng_words.len(),
                    ChaCha8Rng::STATE_WORDS
                ))
            })?;
        ChaCha8Rng::from_state_words(&words)
            .ok_or_else(|| CoreError::Snapshot("rng buffer index out of range".into()))
    }
}

/// Destination for snapshots produced during a run.
pub trait SnapshotSink {
    /// Persists one snapshot. An error aborts the run (the run's state
    /// is still intact in memory, but the caller asked for durability
    /// it cannot have).
    fn save(&mut self, snap: &ServerSnapshot) -> Result<(), CoreError>;
}

/// A [`SnapshotSink`] that keeps every snapshot in memory — for tests
/// and for callers that manage durability themselves.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// The collected snapshots, in save order.
    pub snapshots: Vec<ServerSnapshot>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The newest snapshot, if any.
    pub fn latest(&self) -> Option<&ServerSnapshot> {
        self.snapshots.last()
    }

    /// The snapshot taken after `completed_rounds` rounds, if any.
    pub fn at_round(&self, completed_rounds: usize) -> Option<&ServerSnapshot> {
        self.snapshots
            .iter()
            .find(|s| s.completed_rounds == completed_rounds)
    }
}

impl SnapshotSink for MemorySink {
    fn save(&mut self, snap: &ServerSnapshot) -> Result<(), CoreError> {
        self.snapshots.push(snap.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::Tensor;
    use rand::RngCore;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_state_roundtrips() {
        let mut map = ParamMap::new();
        map.insert("w", Tensor::zeros(&[3]));
        let state = MethodState::single(map.clone());
        assert_eq!(state.into_single().expect("single"), map);
    }

    #[test]
    fn into_single_rejects_multi_map_state() {
        let state = MethodState {
            params: vec![("a".into(), ParamMap::new()), ("b".into(), ParamMap::new())],
            rl: None,
            extra: Vec::new(),
        };
        assert!(state.into_single().is_err());
    }

    #[test]
    fn snapshot_rng_restores_stream() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            let _ = rng.next_u32();
        }
        let snap = ServerSnapshot {
            kind: None,
            method_name: "x".into(),
            completed_rounds: 0,
            rng_words: rng.state_words().to_vec(),
            method: MethodState::default(),
            rounds: Vec::new(),
            evals: Vec::new(),
            cfg_fingerprint: String::new(),
            pool_p: 1,
            pool_params: Vec::new(),
        };
        let mut restored = snap.rng().expect("valid words");
        assert_eq!(restored.next_u64(), rng.next_u64());
    }

    #[test]
    fn snapshot_rng_rejects_bad_word_count() {
        let snap = ServerSnapshot {
            kind: None,
            method_name: "x".into(),
            completed_rounds: 0,
            rng_words: vec![0; 5],
            method: MethodState::default(),
            rounds: Vec::new(),
            evals: Vec::new(),
            cfg_fingerprint: String::new(),
            pool_p: 1,
            pool_params: Vec::new(),
        };
        assert!(snap.rng().is_err());
    }

    #[test]
    fn memory_sink_collects_and_finds() {
        let mut sink = MemorySink::new();
        for r in [2usize, 4] {
            let snap = ServerSnapshot {
                kind: None,
                method_name: "x".into(),
                completed_rounds: r,
                rng_words: Vec::new(),
                method: MethodState::default(),
                rounds: Vec::new(),
                evals: Vec::new(),
                cfg_fingerprint: String::new(),
                pool_p: 1,
                pool_params: Vec::new(),
            };
            sink.save(&snap).expect("memory sink is infallible");
        }
        assert_eq!(sink.snapshots.len(), 2);
        assert_eq!(sink.latest().expect("latest").completed_rounds, 4);
        assert_eq!(sink.at_round(2).expect("found").completed_rounds, 2);
        assert!(sink.at_round(3).is_none());
    }
}
