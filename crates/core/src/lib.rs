//! The AdaptiveFL federated-learning engine (DAC 2024 reproduction).
//!
//! This crate implements the paper's contribution and all the
//! comparison methods on top of the substrate crates:
//!
//! * [`pool`] — the fine-grained width-wise model pool
//!   (`Split(M)` of Algorithm 1): `2p+1` nested submodels across the
//!   Small / Medium / Large levels, each a `(r_w, I)` prune of the
//!   global model.
//! * [`prune`] — nested parameter extraction and the client-side
//!   available-resource-aware pruning (`argmax size ≤ Γ`).
//! * [`aggregate`] — heterogeneous aggregation (Algorithm 2):
//!   per-element data-size-weighted averaging with untouched elements
//!   keeping their previous value.
//! * [`rl`] — the curiosity table `T_c`, resource table `T_r`, reward
//!   functions and table updates of §3.3.
//! * [`select`] — client-selection strategies: the RL policy and the
//!   ablation variants (+Greed, +Random, +C, +S, +CS).
//! * [`methods`] — AdaptiveFL itself plus the four baselines
//!   (All-Large, Decoupled, HeteroFL, ScaleFL) behind one
//!   [`FlMethod`](methods::FlMethod) trait.
//! * [`sim`] — the round-loop simulator that produces the metrics the
//!   paper reports (accuracy per level, learning curves,
//!   communication-waste rate, simulated wall-clock).
//! * [`transport`] — the client↔server exchange abstraction every
//!   method routes through: [`PerfectTransport`](transport::PerfectTransport)
//!   is the lossless default; the `adaptivefl-comm` crate provides a
//!   faulty, deadline-enforcing, parallel `SimTransport`.
//! * [`checkpoint`] — crash-safe state capture: the
//!   [`Checkpointable`](checkpoint::Checkpointable) trait every method
//!   implements, [`ServerSnapshot`](checkpoint::ServerSnapshot) frozen
//!   runs, and the [`SnapshotSink`](checkpoint::SnapshotSink) hook the
//!   `adaptivefl-store` crate plugs durable storage into; resumed runs
//!   are bit-identical to uninterrupted ones.
//! * [`trace`] — structured observability: the [`Tracer`](trace::Tracer)
//!   trait every phase of the round loop reports into, with the
//!   zero-overhead [`NoopTracer`](trace::NoopTracer) default; the
//!   `adaptivefl-trace` crate provides recording/JSONL implementations
//!   and the report renderer. Traced runs are bit-identical to
//!   untraced ones.
//!
//! # Example
//!
//! ```no_run
//! use adaptivefl_core::sim::{SimConfig, Simulation};
//! use adaptivefl_core::methods::MethodKind;
//! use adaptivefl_data::{Partition, SynthSpec};
//!
//! let cfg = SimConfig::quick_test(42);
//! let mut sim = Simulation::prepare(
//!     &cfg,
//!     &SynthSpec::cifar10_like(),
//!     Partition::Dirichlet(0.6),
//! );
//! let result = sim.run(MethodKind::AdaptiveFl);
//! println!("final accuracy: {:.2}%", 100.0 * result.final_full_accuracy());
//! ```

pub mod aggregate;
pub mod checkpoint;
pub mod compress;
pub mod error;
pub mod methods;
pub mod metrics;
pub mod pool;
pub mod prune;
pub mod rl;
pub mod select;
pub mod sim;
pub mod trace;
pub mod trainer;
pub mod transport;

pub use checkpoint::{Checkpointable, MemorySink, MethodState, ServerSnapshot, SnapshotSink};
pub use error::CoreError;
pub use pool::{Level, ModelPool, PoolEntry};
pub use trace::{NoopTracer, Phase, PhaseTimer, TraceEvent, Tracer};
pub use transport::{CommStats, PerfectTransport, Transport};
