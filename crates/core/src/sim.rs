//! The experiment simulator: environment assembly and the round loop.

use adaptivefl_data::{FederatedDataset, Partition, SynthSpec};
use adaptivefl_device::{DeviceFleet, ResourceDynamics};
use adaptivefl_models::ModelConfig;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::methods::MethodKind;
use crate::metrics::RunResult;
use crate::pool::{ModelPool, DEFAULT_RATIOS};
use crate::trainer::LocalTrainer;
use crate::transport::{PerfectTransport, Transport};

/// Everything that defines one experiment (except the dataset spec and
/// partition, which are passed to [`Simulation::prepare`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Model family/size.
    pub model: ModelConfig,
    /// Federated rounds `T`.
    pub rounds: usize,
    /// Clients selected per round `K` (the paper uses 10 %).
    pub clients_per_round: usize,
    /// Local training hyper-parameters.
    pub local: LocalTrainer,
    /// Evaluate every this many rounds (the final round is always
    /// evaluated).
    pub eval_every: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Submodels per level (`p`; 1 = coarse-grained ablation).
    pub p: usize,
    /// Width ratios of the S and M levels.
    pub ratios: (f32, f32),
    /// Weak:medium:strong device proportion (paper default 4:3:3).
    pub proportions: (usize, usize, usize),
    /// Resource fluctuation model.
    pub dynamics: ResourceDynamics,
    /// Total clients in the federation.
    pub num_clients: usize,
    /// Training samples per client.
    pub samples_per_client: usize,
    /// Held-out test samples.
    pub test_samples: usize,
    /// Master seed; every random stream derives from it.
    pub seed: u64,
}

impl SimConfig {
    /// A reduced-scale configuration that mirrors the paper's protocol
    /// (100 clients, 10 % participation, uncertain resources, 4:3:3
    /// classes) at CPU-friendly cost.
    pub fn fast(model: ModelConfig, seed: u64) -> Self {
        SimConfig {
            model,
            rounds: 30,
            clients_per_round: 10,
            local: LocalTrainer::fast(),
            eval_every: 5,
            eval_batch: 64,
            p: 3,
            ratios: DEFAULT_RATIOS,
            proportions: (4, 3, 3),
            dynamics: ResourceDynamics::uncertain(),
            num_clients: 100,
            samples_per_client: 30,
            test_samples: 400,
            seed,
        }
    }

    /// A minimal configuration for unit/integration tests (seconds, not
    /// minutes).
    pub fn quick_test(seed: u64) -> Self {
        SimConfig {
            model: ModelConfig {
                kind: adaptivefl_models::ModelKind::TinyCnn,
                input: (3, 8, 8),
                classes: 4,
                width_mult: 1.0,
            },
            rounds: 4,
            clients_per_round: 4,
            local: LocalTrainer {
                lr: 0.05,
                momentum: 0.5,
                epochs: 1,
                batch_size: 8,
                prox_mu: 0.0,
            },
            eval_every: 2,
            eval_batch: 32,
            p: 2,
            ratios: DEFAULT_RATIOS,
            proportions: (4, 3, 3),
            dynamics: ResourceDynamics::uncertain(),
            num_clients: 10,
            samples_per_client: 12,
            test_samples: 60,
            seed,
        }
    }
}

/// The shared, read-only experiment environment: data, devices, model
/// pool.
pub struct Env {
    /// The experiment configuration.
    pub cfg: SimConfig,
    /// Per-client shards + test set.
    pub data: FederatedDataset,
    /// Simulated devices (index-aligned with data clients).
    pub fleet: DeviceFleet,
    /// The `2p+1`-entry model pool.
    pub pool: ModelPool,
}

impl Env {
    /// A freshly initialised full global model (deterministic per
    /// seed).
    pub fn fresh_global(&self) -> ParamMap {
        let mut rng = adaptivefl_tensor::rng::derived(self.cfg.seed, "global-init");
        self.cfg
            .model
            .build(&self.cfg.model.full_plan(), &mut rng)
            .param_map()
    }

    /// RNG for evaluation-time network scaffolding (weights are always
    /// overwritten by a load, so the stream only needs to be cheap and
    /// deterministic).
    pub fn eval_rng(&self) -> ChaCha8Rng {
        adaptivefl_tensor::rng::derived(self.cfg.seed, "eval-scaffold")
    }

    /// Clients that can participate in `round`: they hold data and
    /// their device is currently reachable.
    pub fn eligible_clients(&self, round: usize) -> Vec<usize> {
        (0..self.data.num_clients())
            .filter(|&c| {
                !self.data.client(c).is_empty() && self.fleet.device(c).available_at(round)
            })
            .collect()
    }
}

/// One prepared experiment: an [`Env`] ready to run any method.
pub struct Simulation {
    env: Env,
}

impl Simulation {
    /// Synthesises the dataset and device fleet for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the model's class count or input shape disagrees with
    /// the dataset spec.
    pub fn prepare(cfg: &SimConfig, spec: &SynthSpec, partition: Partition) -> Self {
        assert_eq!(
            cfg.model.classes, spec.classes,
            "model classes must match dataset classes"
        );
        assert_eq!(
            cfg.model.input, spec.input,
            "model input shape must match dataset input shape"
        );
        let data = FederatedDataset::synthesize(
            spec,
            cfg.num_clients,
            cfg.samples_per_client,
            cfg.test_samples,
            partition,
            cfg.seed,
        );
        let full_params = cfg.model.num_params(&cfg.model.full_plan());
        let fleet = DeviceFleet::with_proportions(
            cfg.num_clients,
            cfg.proportions,
            full_params,
            cfg.dynamics,
            cfg.seed,
        );
        let pool = ModelPool::split(&cfg.model, cfg.p, cfg.ratios);
        Simulation {
            env: Env {
                cfg: *cfg,
                data,
                fleet,
                pool,
            },
        }
    }

    /// The environment (shared across methods for fair comparison).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Replaces the auto-generated fleet with an explicit one (e.g. the
    /// paper's real test-bed of `adaptivefl_device::testbed`).
    ///
    /// # Panics
    ///
    /// Panics if the fleet size differs from the number of clients.
    pub fn with_fleet(mut self, fleet: DeviceFleet) -> Self {
        assert_eq!(
            fleet.len(),
            self.env.data.num_clients(),
            "fleet must have one device per client"
        );
        self.env.fleet = fleet;
        self
    }

    /// Runs one method for `cfg.rounds` rounds over the default
    /// [`PerfectTransport`] (lossless sequential link), evaluating
    /// every `cfg.eval_every` rounds and after the final round.
    pub fn run(&mut self, kind: MethodKind) -> RunResult {
        self.run_with_transport(kind, &mut PerfectTransport)
    }

    /// Runs one method over an explicit transport (e.g. the faulty
    /// parallel `SimTransport` of `adaptivefl-comm`).
    pub fn run_with_transport(
        &mut self,
        kind: MethodKind,
        transport: &mut dyn Transport,
    ) -> RunResult {
        let method = kind.instantiate(&self.env);
        self.run_method_with_transport(method, transport)
    }

    /// Runs an explicitly constructed method (e.g. an AdaptiveFL
    /// instance with non-default RL settings for ablations) over the
    /// default [`PerfectTransport`].
    pub fn run_method(&mut self, method: Box<dyn crate::methods::FlMethod>) -> RunResult {
        self.run_method_with_transport(method, &mut PerfectTransport)
    }

    /// Runs an explicitly constructed method over an explicit
    /// transport.
    pub fn run_method_with_transport(
        &mut self,
        mut method: Box<dyn crate::methods::FlMethod>,
        transport: &mut dyn Transport,
    ) -> RunResult {
        let mut rng =
            adaptivefl_tensor::rng::derived(self.env.cfg.seed, &format!("run-{}", method.name()));
        let mut rounds = Vec::with_capacity(self.env.cfg.rounds);
        let mut evals = Vec::new();
        for t in 0..self.env.cfg.rounds {
            rounds.push(method.round(&self.env, t, transport, &mut rng));
            let last = t + 1 == self.env.cfg.rounds;
            if last || (t + 1) % self.env.cfg.eval_every.max(1) == 0 {
                evals.push(method.evaluate(&self.env, t));
            }
        }
        RunResult {
            method: method.name(),
            rounds,
            evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use crate::select::SelectionStrategy;

    fn spec() -> SynthSpec {
        let mut s = SynthSpec::test_spec(4);
        s.input = (3, 8, 8);
        s
    }

    #[test]
    fn adaptivefl_quick_run_learns_something() {
        let cfg = SimConfig::quick_test(100);
        let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let res = sim.run(MethodKind::AdaptiveFl);
        assert_eq!(res.rounds.len(), 4);
        assert!(!res.evals.is_empty());
        // 4 classes → chance 0.25; even a tiny run should beat it.
        assert!(
            res.final_full_accuracy() > 0.3,
            "accuracy {}",
            res.final_full_accuracy()
        );
        // Communication waste must be in [0, 1).
        let w = res.comm_waste_rate();
        assert!((0.0..1.0).contains(&w), "waste {w}");
    }

    #[test]
    fn all_methods_run_one_round() {
        let mut cfg = SimConfig::quick_test(101);
        cfg.rounds = 1;
        cfg.eval_every = 1;
        for kind in [
            MethodKind::AdaptiveFl,
            MethodKind::AdaptiveFlGreedy,
            MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
            MethodKind::AdaptiveFlVariant(SelectionStrategy::CuriosityOnly),
            MethodKind::AdaptiveFlVariant(SelectionStrategy::ResourceOnly),
            MethodKind::AllLarge,
            MethodKind::Decoupled,
            MethodKind::HeteroFl,
            MethodKind::ScaleFl,
        ] {
            let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.6));
            let res = sim.run(kind);
            assert_eq!(res.rounds.len(), 1, "{kind}");
            assert_eq!(res.evals.len(), 1, "{kind}");
            assert!(res.final_full_accuracy() >= 0.0, "{kind}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = SimConfig::quick_test(102);
        let run = || {
            let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.3));
            sim.run(MethodKind::AdaptiveFl)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_wastes_more_communication_than_rl() {
        let mut cfg = SimConfig::quick_test(103);
        cfg.rounds = 6;
        let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let rl = sim.run(MethodKind::AdaptiveFl);
        let greedy = sim.run(MethodKind::AdaptiveFlGreedy);
        assert!(
            greedy.comm_waste_rate() > rl.comm_waste_rate(),
            "greedy {} vs rl {}",
            greedy.comm_waste_rate(),
            rl.comm_waste_rate()
        );
    }
}
