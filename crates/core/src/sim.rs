//! The experiment simulator: environment assembly and the round loop.

use adaptivefl_data::{FederatedDataset, Partition, SynthSpec};
use adaptivefl_device::{DeviceFleet, ResourceDynamics};
use adaptivefl_models::ModelConfig;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use adaptivefl_tensor::Scratch;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use std::sync::Arc;

use crate::checkpoint::{ServerSnapshot, SnapshotSink};
use crate::error::CoreError;
use crate::methods::{FlMethod, MethodKind};
use crate::metrics::{EvalRecord, RoundRecord, RunResult};
use crate::pool::{ModelPool, DEFAULT_RATIOS};
use crate::trace::{NoopTracer, Phase, PhaseTimer, TraceEvent, Tracer};
use crate::trainer::LocalTrainer;
use crate::transport::{PerfectTransport, Transport};

/// Everything that defines one experiment (except the dataset spec and
/// partition, which are passed to [`Simulation::prepare`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Model family/size.
    pub model: ModelConfig,
    /// Federated rounds `T`.
    pub rounds: usize,
    /// Clients selected per round `K` (the paper uses 10 %).
    pub clients_per_round: usize,
    /// Local training hyper-parameters.
    pub local: LocalTrainer,
    /// Evaluate every this many rounds (the final round is always
    /// evaluated).
    pub eval_every: usize,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Submodels per level (`p`; 1 = coarse-grained ablation).
    pub p: usize,
    /// Width ratios of the S and M levels.
    pub ratios: (f32, f32),
    /// Weak:medium:strong device proportion (paper default 4:3:3).
    pub proportions: (usize, usize, usize),
    /// Resource fluctuation model.
    pub dynamics: ResourceDynamics,
    /// Total clients in the federation.
    pub num_clients: usize,
    /// Training samples per client.
    pub samples_per_client: usize,
    /// Held-out test samples.
    pub test_samples: usize,
    /// Master seed; every random stream derives from it.
    pub seed: u64,
}

impl SimConfig {
    /// A reduced-scale configuration that mirrors the paper's protocol
    /// (100 clients, 10 % participation, uncertain resources, 4:3:3
    /// classes) at CPU-friendly cost.
    pub fn fast(model: ModelConfig, seed: u64) -> Self {
        SimConfig {
            model,
            rounds: 30,
            clients_per_round: 10,
            local: LocalTrainer::fast(),
            eval_every: 5,
            eval_batch: 64,
            p: 3,
            ratios: DEFAULT_RATIOS,
            proportions: (4, 3, 3),
            dynamics: ResourceDynamics::uncertain(),
            num_clients: 100,
            samples_per_client: 30,
            test_samples: 400,
            seed,
        }
    }

    /// The same configuration re-keyed to a different master seed —
    /// the per-job seeding hook of the multi-seed sweep engine. Every
    /// random stream (data synthesis, fleet, method RNGs, per-client
    /// training streams) derives from `cfg.seed`, so two jobs built
    /// from the same cell at different seeds share nothing but the
    /// configuration shape.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A minimal configuration for unit/integration tests (seconds, not
    /// minutes).
    pub fn quick_test(seed: u64) -> Self {
        SimConfig {
            model: ModelConfig {
                kind: adaptivefl_models::ModelKind::TinyCnn,
                input: (3, 8, 8),
                classes: 4,
                width_mult: 1.0,
            },
            rounds: 4,
            clients_per_round: 4,
            local: LocalTrainer {
                lr: 0.05,
                momentum: 0.5,
                epochs: 1,
                batch_size: 8,
                prox_mu: 0.0,
            },
            eval_every: 2,
            eval_batch: 32,
            p: 2,
            ratios: DEFAULT_RATIOS,
            proportions: (4, 3, 3),
            dynamics: ResourceDynamics::uncertain(),
            num_clients: 10,
            samples_per_client: 12,
            test_samples: 60,
            seed,
        }
    }
}

/// The shared, read-only experiment environment: data, devices, model
/// pool.
pub struct Env {
    /// The experiment configuration.
    pub cfg: SimConfig,
    /// Per-client shards + test set.
    pub data: FederatedDataset,
    /// Simulated devices (index-aligned with data clients).
    pub fleet: DeviceFleet,
    /// The `2p+1`-entry model pool.
    pub pool: ModelPool,
    /// Observability sink (defaults to the zero-overhead
    /// [`NoopTracer`]). Shared so client jobs can emit from transport
    /// worker threads; tracers only consume signals, never influence
    /// the run.
    pub tracer: Arc<dyn Tracer>,
    /// Shared buffer arena for aggregation and optimizer temporaries.
    /// Handles are cheap clones of one pool; buffers always leave it
    /// zeroed or fully overwritten, so sharing an arena (even across
    /// runs) is bit-identical to allocating fresh.
    pub scratch: Scratch,
}

impl Env {
    /// The active tracer.
    pub fn tracer(&self) -> &dyn Tracer {
        &*self.tracer
    }

    /// A freshly initialised full global model (deterministic per
    /// seed).
    pub fn fresh_global(&self) -> ParamMap {
        let mut rng = adaptivefl_tensor::rng::derived(self.cfg.seed, "global-init");
        self.cfg
            .model
            .build(&self.cfg.model.full_plan(), &mut rng)
            .param_map()
    }

    /// RNG for evaluation-time network scaffolding (weights are always
    /// overwritten by a load, so the stream only needs to be cheap and
    /// deterministic).
    pub fn eval_rng(&self) -> ChaCha8Rng {
        adaptivefl_tensor::rng::derived(self.cfg.seed, "eval-scaffold")
    }

    /// Clients that can participate in `round`: they hold data and
    /// their device is currently reachable.
    pub fn eligible_clients(&self, round: usize) -> Vec<usize> {
        (0..self.data.num_clients())
            .filter(|&c| {
                !self.data.client(c).is_empty() && self.fleet.device(c).available_at(round)
            })
            .collect()
    }
}

/// Checkpoint hooks for a run (see [`Simulation::run_with_hooks`]).
pub struct RunHooks<'a> {
    /// Snapshot every this many completed rounds (0 = only when
    /// halting). Snapshots are skipped after the final round — a
    /// finished run has nothing left to resume.
    pub checkpoint_every: usize,
    /// Where snapshots go (e.g. the durable `adaptivefl-store`
    /// `SnapshotStore`, or a [`MemorySink`](crate::checkpoint::MemorySink)).
    pub sink: &'a mut dyn SnapshotSink,
    /// Crash-test harness: stop after this many completed rounds,
    /// saving a final snapshot and returning `Ok(None)` instead of a
    /// result — the in-process equivalent of killing the server
    /// mid-run.
    pub halt_after: Option<usize>,
}

/// One prepared experiment: an [`Env`] ready to run any method.
pub struct Simulation {
    env: Env,
}

impl Simulation {
    /// Synthesises the dataset and device fleet for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the model's class count or input shape disagrees with
    /// the dataset spec.
    pub fn prepare(cfg: &SimConfig, spec: &SynthSpec, partition: Partition) -> Self {
        assert_eq!(
            cfg.model.classes, spec.classes,
            "model classes must match dataset classes"
        );
        assert_eq!(
            cfg.model.input, spec.input,
            "model input shape must match dataset input shape"
        );
        let data = FederatedDataset::synthesize(
            spec,
            cfg.num_clients,
            cfg.samples_per_client,
            cfg.test_samples,
            partition,
            cfg.seed,
        );
        let full_params = cfg.model.num_params(&cfg.model.full_plan());
        let fleet = DeviceFleet::with_proportions(
            cfg.num_clients,
            cfg.proportions,
            full_params,
            cfg.dynamics,
            cfg.seed,
        );
        let pool = ModelPool::split(&cfg.model, cfg.p, cfg.ratios);
        Simulation {
            env: Env {
                cfg: *cfg,
                data,
                fleet,
                pool,
                tracer: Arc::new(NoopTracer),
                scratch: Scratch::new(),
            },
        }
    }

    /// The environment (shared across methods for fair comparison).
    pub fn env(&self) -> &Env {
        &self.env
    }

    /// Replaces the auto-generated fleet with an explicit one (e.g. the
    /// paper's real test-bed of `adaptivefl_device::testbed`).
    ///
    /// # Panics
    ///
    /// Panics if the fleet size differs from the number of clients.
    pub fn with_fleet(mut self, fleet: DeviceFleet) -> Self {
        assert_eq!(
            fleet.len(),
            self.env.data.num_clients(),
            "fleet must have one device per client"
        );
        self.env.fleet = fleet;
        self
    }

    /// Installs a tracer for subsequent runs (builder form). Tracers
    /// observe but never influence a run: a traced run's result is
    /// bit-identical to an untraced one.
    pub fn with_tracer(mut self, tracer: Arc<dyn Tracer>) -> Self {
        self.env.tracer = tracer;
        self
    }

    /// Installs a tracer for subsequent runs.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.env.tracer = tracer;
    }

    /// Installs a shared scratch arena for subsequent runs (builder
    /// form). Sharing an arena across simulations reuses its buffers;
    /// results are bit-identical to a private arena.
    pub fn with_scratch(mut self, scratch: Scratch) -> Self {
        self.env.scratch = scratch;
        self
    }

    /// Installs a shared scratch arena for subsequent runs.
    pub fn set_scratch(&mut self, scratch: Scratch) {
        self.env.scratch = scratch;
    }

    /// Runs one method for `cfg.rounds` rounds over the default
    /// [`PerfectTransport`] (lossless sequential link), evaluating
    /// every `cfg.eval_every` rounds and after the final round.
    pub fn run(&mut self, kind: MethodKind) -> RunResult {
        self.run_with_transport(kind, &mut PerfectTransport)
    }

    /// Runs one method over an explicit transport (e.g. the faulty
    /// parallel `SimTransport` of `adaptivefl-comm`).
    pub fn run_with_transport(
        &mut self,
        kind: MethodKind,
        transport: &mut dyn Transport,
    ) -> RunResult {
        let method = kind.instantiate(&self.env);
        self.run_method_with_transport(method, transport)
    }

    /// Runs an explicitly constructed method (e.g. an AdaptiveFL
    /// instance with non-default RL settings for ablations) over the
    /// default [`PerfectTransport`].
    pub fn run_method(&mut self, method: Box<dyn crate::methods::FlMethod>) -> RunResult {
        self.run_method_with_transport(method, &mut PerfectTransport)
    }

    /// Runs an explicitly constructed method over an explicit
    /// transport.
    pub fn run_method_with_transport(
        &mut self,
        method: Box<dyn crate::methods::FlMethod>,
        transport: &mut dyn Transport,
    ) -> RunResult {
        let rng = self.run_rng(&*method);
        self.drive(
            None,
            method,
            transport,
            rng,
            0,
            Vec::new(),
            Vec::new(),
            None,
        )
        .expect("no sink configured, so no sink error is possible")
        .expect("no halt configured, so the run completes")
    }

    /// Runs a method with checkpoint/halt hooks: every
    /// `hooks.checkpoint_every` completed rounds the full server state
    /// is frozen into a [`ServerSnapshot`] and handed to the sink.
    /// Returns `Ok(None)` when `hooks.halt_after` stopped the run
    /// early (after saving a snapshot).
    pub fn run_with_hooks(
        &mut self,
        kind: MethodKind,
        transport: &mut dyn Transport,
        hooks: RunHooks<'_>,
    ) -> Result<Option<RunResult>, CoreError> {
        let method = kind.instantiate(&self.env);
        let rng = self.run_rng(&*method);
        self.drive(
            Some(kind),
            method,
            transport,
            rng,
            0,
            Vec::new(),
            Vec::new(),
            Some(hooks),
        )
    }

    /// Runs an explicitly constructed method with checkpoint/halt
    /// hooks (the `run_method` counterpart of
    /// [`Simulation::run_with_hooks`]). Snapshots carry no
    /// [`MethodKind`], so they resume through
    /// [`Simulation::resume_method_with_transport`] /
    /// [`Simulation::resume_method_with_hooks`].
    pub fn run_method_with_hooks(
        &mut self,
        method: Box<dyn crate::methods::FlMethod>,
        transport: &mut dyn Transport,
        hooks: RunHooks<'_>,
    ) -> Result<Option<RunResult>, CoreError> {
        let rng = self.run_rng(&*method);
        self.drive(
            None,
            method,
            transport,
            rng,
            0,
            Vec::new(),
            Vec::new(),
            Some(hooks),
        )
    }

    /// Runs a method, checkpointing every `every` rounds into `sink`.
    pub fn run_with_checkpoints(
        &mut self,
        kind: MethodKind,
        transport: &mut dyn Transport,
        every: usize,
        sink: &mut dyn SnapshotSink,
    ) -> Result<RunResult, CoreError> {
        let hooks = RunHooks {
            checkpoint_every: every,
            sink,
            halt_after: None,
        };
        Ok(self
            .run_with_hooks(kind, transport, hooks)?
            .expect("no halt configured, so the run completes"))
    }

    /// Resumes a snapshotted run over the default
    /// [`PerfectTransport`]. The continued run is bit-identical to the
    /// uninterrupted one: same RNG stream, same server state, same
    /// history.
    pub fn resume_from(&mut self, snap: &ServerSnapshot) -> Result<RunResult, CoreError> {
        self.resume_with_transport(snap, &mut PerfectTransport)
    }

    /// Resumes a snapshotted run over an explicit transport. The
    /// transport must be configured identically to the original run's
    /// (fault plans and deadlines are derived from the seed and round
    /// index, so a freshly built transport with the same settings
    /// replays identically at any thread count).
    pub fn resume_with_transport(
        &mut self,
        snap: &ServerSnapshot,
        transport: &mut dyn Transport,
    ) -> Result<RunResult, CoreError> {
        let Some(kind) = snap.kind else {
            return Err(CoreError::Snapshot(
                "snapshot has no method kind; resume the explicit method via \
                 resume_method_with_transport"
                    .into(),
            ));
        };
        let method = kind.instantiate(&self.env);
        Ok(self
            .resume_inner(Some(kind), method, snap, transport, None)?
            .expect("no halt configured, so the run completes"))
    }

    /// Resumes a snapshotted run with fresh checkpoint/halt hooks (so
    /// a resumed long run keeps checkpointing).
    pub fn resume_with_hooks(
        &mut self,
        snap: &ServerSnapshot,
        transport: &mut dyn Transport,
        hooks: RunHooks<'_>,
    ) -> Result<Option<RunResult>, CoreError> {
        let Some(kind) = snap.kind else {
            return Err(CoreError::Snapshot(
                "snapshot has no method kind; resume the explicit method via \
                 resume_method_with_transport"
                    .into(),
            ));
        };
        let method = kind.instantiate(&self.env);
        self.resume_inner(Some(kind), method, snap, transport, Some(hooks))
    }

    /// Resumes a snapshot into an explicitly constructed method (e.g.
    /// an AdaptiveFL instance with a non-default reward cap). The
    /// method must be constructed exactly as the original was; its
    /// state is then replaced by the snapshot's.
    pub fn resume_method_with_transport(
        &mut self,
        method: Box<dyn crate::methods::FlMethod>,
        snap: &ServerSnapshot,
        transport: &mut dyn Transport,
    ) -> Result<RunResult, CoreError> {
        Ok(self
            .resume_inner(snap.kind, method, snap, transport, None)?
            .expect("no halt configured, so the run completes"))
    }

    /// Resumes an explicitly constructed method with fresh
    /// checkpoint/halt hooks.
    pub fn resume_method_with_hooks(
        &mut self,
        method: Box<dyn crate::methods::FlMethod>,
        snap: &ServerSnapshot,
        transport: &mut dyn Transport,
        hooks: RunHooks<'_>,
    ) -> Result<Option<RunResult>, CoreError> {
        self.resume_inner(snap.kind, method, snap, transport, Some(hooks))
    }

    /// The deterministic environment fingerprint stored in snapshots
    /// and checked on resume.
    pub fn cfg_fingerprint(cfg: &SimConfig) -> String {
        format!("{cfg:?}")
    }

    fn run_rng(&self, method: &dyn FlMethod) -> ChaCha8Rng {
        adaptivefl_tensor::rng::derived(self.env.cfg.seed, &format!("run-{}", method.name()))
    }

    fn resume_inner(
        &mut self,
        kind: Option<MethodKind>,
        mut method: Box<dyn crate::methods::FlMethod>,
        snap: &ServerSnapshot,
        transport: &mut dyn Transport,
        hooks: Option<RunHooks<'_>>,
    ) -> Result<Option<RunResult>, CoreError> {
        self.validate_snapshot(snap, &*method)?;
        method.restore(snap.method.clone())?;
        let rng = snap.rng()?;
        self.drive(
            kind,
            method,
            transport,
            rng,
            snap.completed_rounds,
            snap.rounds.clone(),
            snap.evals.clone(),
            hooks,
        )
    }

    fn validate_snapshot(
        &self,
        snap: &ServerSnapshot,
        method: &dyn crate::methods::FlMethod,
    ) -> Result<(), CoreError> {
        if snap.method_name != method.name() {
            return Err(CoreError::Snapshot(format!(
                "snapshot is of method {}, resuming {}",
                snap.method_name,
                method.name()
            )));
        }
        let fp = Self::cfg_fingerprint(&self.env.cfg);
        if snap.cfg_fingerprint != fp {
            return Err(CoreError::Snapshot(format!(
                "configuration mismatch: snapshot built for {}, environment is {fp}",
                snap.cfg_fingerprint
            )));
        }
        let pool_params: Vec<u64> = self.env.pool.entries().iter().map(|e| e.params).collect();
        if snap.pool_p != self.env.pool.p() || snap.pool_params != pool_params {
            return Err(CoreError::Snapshot(
                "model pool mismatch: the environment splits the model differently".into(),
            ));
        }
        if snap.completed_rounds > self.env.cfg.rounds {
            return Err(CoreError::Snapshot(format!(
                "snapshot has {} completed rounds, configuration runs {}",
                snap.completed_rounds, self.env.cfg.rounds
            )));
        }
        if snap.rounds.len() != snap.completed_rounds {
            return Err(CoreError::Snapshot(format!(
                "snapshot history has {} round records for {} completed rounds",
                snap.rounds.len(),
                snap.completed_rounds
            )));
        }
        Ok(())
    }

    fn snapshot(
        &self,
        kind: Option<MethodKind>,
        method: &dyn crate::methods::FlMethod,
        rng: &ChaCha8Rng,
        completed_rounds: usize,
        rounds: &[RoundRecord],
        evals: &[EvalRecord],
    ) -> ServerSnapshot {
        ServerSnapshot {
            kind,
            method_name: method.name(),
            completed_rounds,
            rng_words: rng.state_words().to_vec(),
            method: method.capture(),
            rounds: rounds.to_vec(),
            evals: evals.to_vec(),
            cfg_fingerprint: Self::cfg_fingerprint(&self.env.cfg),
            pool_p: self.env.pool.p(),
            pool_params: self.env.pool.entries().iter().map(|e| e.params).collect(),
        }
    }

    /// The shared round loop: every `run_*`/`resume_*` entry point
    /// funnels through here so the round/eval/checkpoint cadence is
    /// identical whether a run starts fresh or from a snapshot.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &mut self,
        kind: Option<MethodKind>,
        mut method: Box<dyn crate::methods::FlMethod>,
        transport: &mut dyn Transport,
        mut rng: ChaCha8Rng,
        start_round: usize,
        mut rounds: Vec<RoundRecord>,
        mut evals: Vec<EvalRecord>,
        mut hooks: Option<RunHooks<'_>>,
    ) -> Result<Option<RunResult>, CoreError> {
        let tracer = Arc::clone(&self.env.tracer);
        if tracer.enabled() {
            tracer.event(TraceEvent::RunStart {
                method: method.name(),
                start_round,
                rounds: self.env.cfg.rounds,
            });
        }
        for t in start_round..self.env.cfg.rounds {
            if tracer.enabled() {
                tracer.event(TraceEvent::RoundStart { round: t });
            }
            let round_timer = PhaseTimer::start(&*tracer, Phase::Round);
            let rec = method.round(&self.env, t, transport, &mut rng);
            round_timer.stop(&*tracer);
            if tracer.enabled() {
                tracer.event(TraceEvent::RoundEnd {
                    round: t,
                    sim_secs: rec.sim_secs,
                    failures: rec.failures,
                });
            }
            rounds.push(rec);
            let last = t + 1 == self.env.cfg.rounds;
            if last || (t + 1) % self.env.cfg.eval_every.max(1) == 0 {
                let eval_timer = PhaseTimer::start(&*tracer, Phase::Eval);
                let ev = method.evaluate(&self.env, t);
                eval_timer.stop(&*tracer);
                if tracer.enabled() {
                    tracer.event(TraceEvent::Eval {
                        round: t,
                        full: ev.full,
                    });
                }
                evals.push(ev);
            }
            if let Some(h) = hooks.as_mut() {
                let done = t + 1;
                let halt = h.halt_after.is_some_and(|r| done >= r) && !last;
                let periodic = h.checkpoint_every > 0 && done % h.checkpoint_every == 0 && !last;
                if halt || periodic {
                    let ckpt_timer = PhaseTimer::start(&*tracer, Phase::Checkpoint);
                    let snap = self.snapshot(kind, &*method, &rng, done, &rounds, &evals);
                    h.sink.save(&snap)?;
                    ckpt_timer.stop(&*tracer);
                    if tracer.enabled() {
                        tracer.event(TraceEvent::CheckpointSave { round: done });
                    }
                }
                if halt {
                    return Ok(None);
                }
            }
        }
        Ok(Some(RunResult {
            method: method.name(),
            rounds,
            evals,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodKind;
    use crate::select::SelectionStrategy;

    fn spec() -> SynthSpec {
        let mut s = SynthSpec::test_spec(4);
        s.input = (3, 8, 8);
        s
    }

    #[test]
    fn adaptivefl_quick_run_learns_something() {
        let cfg = SimConfig::quick_test(100);
        let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let res = sim.run(MethodKind::AdaptiveFl);
        assert_eq!(res.rounds.len(), 4);
        assert!(!res.evals.is_empty());
        // 4 classes → chance 0.25; even a tiny run should beat it.
        assert!(
            res.final_full_accuracy() > 0.3,
            "accuracy {}",
            res.final_full_accuracy()
        );
        // Communication waste must be in [0, 1).
        let w = res.comm_waste_rate();
        assert!((0.0..1.0).contains(&w), "waste {w}");
    }

    #[test]
    fn all_methods_run_one_round() {
        let mut cfg = SimConfig::quick_test(101);
        cfg.rounds = 1;
        cfg.eval_every = 1;
        for kind in [
            MethodKind::AdaptiveFl,
            MethodKind::AdaptiveFlGreedy,
            MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
            MethodKind::AdaptiveFlVariant(SelectionStrategy::CuriosityOnly),
            MethodKind::AdaptiveFlVariant(SelectionStrategy::ResourceOnly),
            MethodKind::AllLarge,
            MethodKind::Decoupled,
            MethodKind::HeteroFl,
            MethodKind::ScaleFl,
        ] {
            let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.6));
            let res = sim.run(kind);
            assert_eq!(res.rounds.len(), 1, "{kind}");
            assert_eq!(res.evals.len(), 1, "{kind}");
            assert!(res.final_full_accuracy() >= 0.0, "{kind}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = SimConfig::quick_test(102);
        let run = || {
            let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.3));
            sim.run(MethodKind::AdaptiveFl)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        let cfg = SimConfig::quick_test(104);
        for kind in [
            MethodKind::AdaptiveFl,
            MethodKind::AdaptiveFlGreedy,
            MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
            MethodKind::AllLarge,
            MethodKind::Decoupled,
            MethodKind::HeteroFl,
            MethodKind::ScaleFl,
        ] {
            let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.5));
            let control = sim.run(kind);

            // Checkpoint every round of a second, identical run.
            let mut sink = crate::checkpoint::MemorySink::new();
            let mut sim2 = Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.5));
            let checked = sim2
                .run_with_checkpoints(kind, &mut PerfectTransport, 1, &mut sink)
                .unwrap();
            assert_eq!(control, checked, "{kind}: checkpointing changed the run");
            // Final round never snapshots; every earlier round does.
            assert_eq!(sink.snapshots.len(), cfg.rounds - 1, "{kind}");

            // Resume from every intermediate snapshot in a fresh
            // simulation; each must reproduce the control exactly.
            for snap in &sink.snapshots {
                let mut sim3 = Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.5));
                let resumed = sim3.resume_from(snap).unwrap();
                assert_eq!(
                    control, resumed,
                    "{kind}: resume from round {} diverged",
                    snap.completed_rounds
                );
            }
        }
    }

    #[test]
    fn halt_after_saves_a_resumable_snapshot() {
        let cfg = SimConfig::quick_test(105);
        let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let control = sim.run(MethodKind::AdaptiveFl);

        let mut sink = crate::checkpoint::MemorySink::new();
        let mut sim2 = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let halted = sim2
            .run_with_hooks(
                MethodKind::AdaptiveFl,
                &mut PerfectTransport,
                RunHooks {
                    checkpoint_every: 0,
                    sink: &mut sink,
                    halt_after: Some(2),
                },
            )
            .unwrap();
        assert!(halted.is_none(), "halt must abort the run");
        let snap = sink.latest().expect("halt saved a snapshot");
        assert_eq!(snap.completed_rounds, 2);

        let mut sim3 = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let resumed = sim3.resume_from(snap).unwrap();
        assert_eq!(control, resumed);
    }

    #[test]
    fn resume_rejects_mismatched_environment() {
        let cfg = SimConfig::quick_test(106);
        let mut sink = crate::checkpoint::MemorySink::new();
        let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        sim.run_with_checkpoints(MethodKind::AdaptiveFl, &mut PerfectTransport, 2, &mut sink)
            .unwrap();
        let snap = sink.latest().unwrap();

        // Wrong method.
        let mut sim2 = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let mut wrong = snap.clone();
        wrong.kind = Some(MethodKind::HeteroFl);
        assert!(sim2.resume_from(&wrong).is_err());

        // Wrong configuration (different seed → different fingerprint).
        let other = SimConfig::quick_test(107);
        let mut sim3 = Simulation::prepare(&other, &spec(), Partition::Iid);
        assert!(sim3.resume_from(snap).is_err());

        // Corrupt RNG state.
        let mut bad_rng = snap.clone();
        bad_rng.rng_words.pop();
        let mut sim4 = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        assert!(sim4.resume_from(&bad_rng).is_err());

        // History inconsistent with the declared progress.
        let mut bad_hist = snap.clone();
        bad_hist.rounds.pop();
        let mut sim5 = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        assert!(sim5.resume_from(&bad_hist).is_err());
    }

    #[test]
    fn greedy_wastes_more_communication_than_rl() {
        let mut cfg = SimConfig::quick_test(103);
        cfg.rounds = 6;
        let mut sim = Simulation::prepare(&cfg, &spec(), Partition::Iid);
        let rl = sim.run(MethodKind::AdaptiveFl);
        let greedy = sim.run(MethodKind::AdaptiveFlGreedy);
        assert!(
            greedy.comm_waste_rate() > rl.comm_waste_rate(),
            "greedy {} vs rl {}",
            greedy.comm_waste_rate(),
            rl.comm_waste_rate()
        );
    }
}
