//! The client↔server exchange abstraction.
//!
//! Every [`FlMethod`](crate::methods::FlMethod) round is split into
//! three phases: the method *dispatches* a batch of [`ClientJob`]s (one
//! per selected client), a [`Transport`] *executes* them and returns
//! the surviving uploads as [`Delivery`]s plus per-round [`CommStats`],
//! and the method *consumes* the deliveries (aggregation, RL updates,
//! metrics).
//!
//! Two transports exist:
//!
//! * [`PerfectTransport`] (here, the default) — a lossless sequential
//!   link: every upload arrives, jobs run in dispatch order against the
//!   shared round RNG. This reproduces the pre-transport simulator
//!   byte-for-byte.
//! * `SimTransport` (in the `adaptivefl-comm` crate) — wire-encodes
//!   uploads, injects faults (drops, stragglers, crashes, truncation),
//!   enforces a round deadline, and runs clients on a thread pool with
//!   per-client derived RNGs so results are thread-count invariant.

use bytes::{BufMut, BytesMut};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::aggregate::Upload;
use crate::compress::FrameReader;
use crate::error::CoreError;
use crate::sim::Env;

/// Per-round communication accounting, aggregated into
/// [`RoundRecord`](crate::metrics::RoundRecord).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Payload bytes dispatched to clients (dense `f32` elements × 4).
    pub bytes_down: u64,
    /// Payload bytes that arrived back at the server.
    pub bytes_up: u64,
    /// Uploads lost in transit (drop or truncation faults).
    pub drops: usize,
    /// Clients hit by a straggler delay.
    pub stragglers: usize,
    /// Uploads that arrived after the round deadline (wasted).
    pub deadline_misses: usize,
    /// Clients that crashed mid-round.
    pub crashes: usize,
}

impl CommStats {
    /// Adds another round's stats into this accumulator.
    pub fn accumulate(&mut self, other: &CommStats) {
        self.bytes_down += other.bytes_down;
        self.bytes_up += other.bytes_up;
        self.drops += other.drops;
        self.stragglers += other.stragglers;
        self.deadline_misses += other.deadline_misses;
        self.crashes += other.crashes;
    }

    /// Total faults that cost an upload (drops + deadline misses +
    /// crashes).
    pub fn lost_uploads(&self) -> usize {
        self.drops + self.deadline_misses + self.crashes
    }

    /// Appends the stats to a binary frame (big-endian) — the stable
    /// snapshot encoding.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.bytes_down);
        buf.put_u64(self.bytes_up);
        buf.put_u64(self.drops as u64);
        buf.put_u64(self.stragglers as u64);
        buf.put_u64(self.deadline_misses as u64);
        buf.put_u64(self.crashes as u64);
    }

    /// Parses stats encoded by [`CommStats::encode`]. Truncated frames
    /// return [`CoreError::MalformedFrame`], never panic.
    pub fn decode(r: &mut FrameReader<'_>) -> Result<Self, CoreError> {
        Ok(CommStats {
            bytes_down: r.u64()?,
            bytes_up: r.u64()?,
            drops: r.u64()? as usize,
            stragglers: r.u64()? as usize,
            deadline_misses: r.u64()? as usize,
            crashes: r.u64()? as usize,
        })
    }
}

/// What a client's local computation produced, before the uplink.
pub struct LocalOutcome {
    /// The trained submodel, or `None` when the client could not train
    /// anything (e.g. the dispatched model exceeded its current
    /// capacity).
    pub upload: Option<Upload>,
    /// Local training loss (0 when `upload` is `None`).
    pub loss: f32,
    /// Client-side tag for the server (e.g. the pool index the client
    /// pruned down to); meaningful only to the dispatching method.
    pub tag: usize,
    /// Per-sample forward/backward MACs of the trained submodel (0 on
    /// failure).
    pub macs_per_sample: u64,
    /// Local training samples (0 on failure).
    pub samples: usize,
    /// Parameter elements of the uploaded submodel (0 on failure).
    pub up_params: u64,
}

impl LocalOutcome {
    /// The outcome of a client that could not train the dispatched
    /// model: nothing comes back, only the downlink was spent.
    pub fn failure() -> Self {
        LocalOutcome {
            upload: None,
            loss: 0.0,
            tag: 0,
            macs_per_sample: 0,
            samples: 0,
            up_params: 0,
        }
    }
}

/// The client-side work closure: runs local training against an RNG
/// supplied by the transport (the shared round RNG for
/// [`PerfectTransport`], a per-client derived RNG for parallel
/// transports).
pub type JobFn<'a> = Box<dyn FnOnce(&mut ChaCha8Rng) -> LocalOutcome + Send + 'a>;

/// One dispatched unit of work: a model sent down a link to a client.
pub struct ClientJob<'a> {
    /// Target client id.
    pub client: usize,
    /// Method-specific dispatch tag echoed back in the [`Delivery`]
    /// (e.g. the dispatched pool index, or the level index).
    pub tag: usize,
    /// Parameter elements of the dispatched model (downlink size).
    pub down_params: u64,
    /// The local-training closure.
    pub run: JobFn<'a>,
}

/// How one client's round ended, from the server's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// The upload arrived intact and on time.
    Delivered,
    /// The client could not train the dispatched model (resource
    /// failure); nothing was uploaded.
    TrainingFailed,
    /// The upload was lost in transit (drop or truncation fault).
    Dropped,
    /// The upload arrived after the round deadline and was discarded.
    Late,
    /// The client crashed mid-round; nothing was uploaded.
    Crashed,
}

impl DeliveryStatus {
    /// `true` when the server received a usable upload.
    pub fn is_delivered(self) -> bool {
        matches!(self, DeliveryStatus::Delivered)
    }
}

/// One client's round outcome as observed by the server.
pub struct Delivery {
    /// Client id.
    pub client: usize,
    /// Dispatch tag from the [`ClientJob`].
    pub tag: usize,
    /// Client-side tag from the [`LocalOutcome`].
    pub client_tag: usize,
    /// How the round ended for this client.
    pub status: DeliveryStatus,
    /// Local training loss (server-visible only when delivered).
    pub loss: f32,
    /// The upload, present only when `status` is
    /// [`DeliveryStatus::Delivered`].
    pub upload: Option<Upload>,
    /// Parameter elements dispatched down the link.
    pub down_params: u64,
    /// Parameter elements the client produced for upload (counted as
    /// returned only when delivered).
    pub up_params: u64,
    /// This client's simulated wall-clock seconds (compute + both
    /// transfers, including any straggler delay).
    pub secs: f64,
}

/// A whole round's exchange: per-client deliveries plus the round-level
/// accounting.
pub struct Exchange {
    /// Per-client outcomes. [`PerfectTransport`] preserves dispatch
    /// order; parallel transports must sort by client id so that
    /// aggregation (f32 summation) is thread-count invariant.
    pub deliveries: Vec<Delivery>,
    /// Communication accounting for the round.
    pub stats: CommStats,
    /// Simulated wall-clock duration of the round (slowest client, or
    /// the deadline when one is enforced and missed).
    pub round_secs: f64,
}

/// A simulated client↔server link executing one round's jobs.
pub trait Transport: Send {
    /// Human-readable transport name (for logs and result files).
    fn name(&self) -> &'static str;

    /// Executes the round's jobs and returns what the server observed.
    ///
    /// `rng` is the method's round RNG; sequential transports thread it
    /// through every job (preserving the legacy stream), parallel
    /// transports may ignore it in favour of per-client derived RNGs.
    fn exchange(
        &mut self,
        env: &Env,
        round: usize,
        jobs: Vec<ClientJob<'_>>,
        rng: &mut ChaCha8Rng,
    ) -> Exchange;
}

/// Simulated wall-clock seconds for one client's round: local training
/// over `macs_per_sample` for `samples · epochs` samples plus the
/// down/up transfer of `down_params`/`up_params` elements as dense
/// `f32`.
pub fn client_secs(
    env: &Env,
    client: usize,
    macs_per_sample: u64,
    samples: usize,
    down_params: u64,
    up_params: u64,
) -> f64 {
    let device = env.fleet.device(client);
    let total_macs = macs_per_sample * samples as u64 * env.cfg.local.epochs as u64;
    device.round_time(total_macs, down_params * 4, up_params * 4)
}

/// The lossless default link: jobs run sequentially in dispatch order
/// against the shared round RNG, every upload arrives, and no faults or
/// deadlines exist. Byte-for-byte identical to the simulator before the
/// transport abstraction existed.
#[derive(Debug, Default, Clone, Copy)]
pub struct PerfectTransport;

impl Transport for PerfectTransport {
    fn name(&self) -> &'static str {
        "perfect"
    }

    fn exchange(
        &mut self,
        env: &Env,
        _round: usize,
        jobs: Vec<ClientJob<'_>>,
        rng: &mut ChaCha8Rng,
    ) -> Exchange {
        let mut deliveries = Vec::with_capacity(jobs.len());
        let mut stats = CommStats::default();
        let mut round_secs = 0.0f64;
        for job in jobs {
            let ClientJob {
                client,
                tag,
                down_params,
                run,
            } = job;
            let out = run(rng);
            let secs = client_secs(
                env,
                client,
                out.macs_per_sample,
                out.samples,
                down_params,
                out.up_params,
            );
            round_secs = round_secs.max(secs);
            stats.bytes_down += down_params * 4;
            let status = if out.upload.is_some() {
                stats.bytes_up += out.up_params * 4;
                DeliveryStatus::Delivered
            } else {
                DeliveryStatus::TrainingFailed
            };
            deliveries.push(Delivery {
                client,
                tag,
                client_tag: out.tag,
                status,
                loss: out.loss,
                upload: out.upload,
                down_params,
                up_params: out.up_params,
                secs,
            });
        }
        Exchange {
            deliveries,
            stats,
            round_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_stats_accumulate() {
        let mut a = CommStats {
            bytes_down: 100,
            bytes_up: 40,
            drops: 1,
            ..Default::default()
        };
        let b = CommStats {
            bytes_down: 50,
            bytes_up: 50,
            stragglers: 2,
            deadline_misses: 1,
            crashes: 1,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.bytes_down, 150);
        assert_eq!(a.bytes_up, 90);
        assert_eq!(a.drops, 1);
        assert_eq!(a.stragglers, 2);
        assert_eq!(a.lost_uploads(), 3);
    }

    #[test]
    fn comm_stats_encode_decode_roundtrips() {
        let stats = CommStats {
            bytes_down: 12_345,
            bytes_up: 678,
            drops: 2,
            stragglers: 3,
            deadline_misses: 1,
            crashes: 4,
        };
        let mut buf = BytesMut::new();
        stats.encode(&mut buf);
        let mut r = FrameReader::new(&buf);
        let back = CommStats::decode(&mut r).expect("intact frame");
        assert!(r.is_empty());
        assert_eq!(stats, back);
        assert!(CommStats::decode(&mut FrameReader::new(&buf[..buf.len() - 1])).is_err());
    }

    #[test]
    fn delivery_status_predicate() {
        assert!(DeliveryStatus::Delivered.is_delivered());
        for s in [
            DeliveryStatus::TrainingFailed,
            DeliveryStatus::Dropped,
            DeliveryStatus::Late,
            DeliveryStatus::Crashed,
        ] {
            assert!(!s.is_delivered());
        }
    }

    #[test]
    fn failure_outcome_is_empty() {
        let o = LocalOutcome::failure();
        assert!(o.upload.is_none());
        assert_eq!(o.up_params, 0);
        assert_eq!(o.samples, 0);
    }
}
