//! Error type for the federated engine.

/// Errors surfaced by the federated engine's fallible entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An experiment configuration is internally inconsistent.
    InvalidConfig(String),
    /// A parameter expected in a model exchange was missing.
    MissingParameter(String),
    /// A binary frame could not be decoded (truncated or corrupt).
    MalformedFrame(String),
    /// A checkpoint snapshot could not be written, read or applied
    /// (I/O failure, corruption, or an incompatible environment).
    Snapshot(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::MissingParameter(name) => write!(f, "missing parameter {name}"),
            CoreError::MalformedFrame(msg) => write!(f, "malformed frame: {msg}"),
            CoreError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CoreError::InvalidConfig("p must be positive".into());
        assert_eq!(e.to_string(), "invalid configuration: p must be positive");
    }
}
