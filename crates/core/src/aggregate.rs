//! Heterogeneous model aggregation — Algorithm 2 of the paper.
//!
//! Every uploaded submodel contributes `w · |d_c|` to the accumulator
//! of each parameter element it covers (prefix block of the full
//! tensor); covered elements become the weighted average, untouched
//! elements keep their previous global value (line 14 of Algorithm 2).

use adaptivefl_nn::ParamMap;
use adaptivefl_tensor::{Scratch, SliceSpec};

use crate::trace::{TraceEvent, Tracer};

/// One client upload: the trained submodel parameters and the client's
/// local data size `|d_c|` (the aggregation weight).
#[derive(Debug, Clone)]
pub struct Upload {
    /// Trained submodel parameters.
    pub params: ParamMap,
    /// Local data size `|d_c|`.
    pub weight: f32,
}

/// Aggregates uploads into the global model in place (Algorithm 2).
///
/// Upload tensors must be prefix blocks of the corresponding global
/// tensors; upload parameter names must exist in the global map.
///
/// # Panics
///
/// Panics if an upload has an unknown parameter name, a non-nested
/// shape, or a non-positive weight.
pub fn aggregate(global: &mut ParamMap, uploads: &[Upload]) {
    aggregate_traced(global, uploads, &crate::trace::NoopTracer, 0);
}

/// [`aggregate`] with per-layer element-coverage reporting: when the
/// tracer is enabled, emits one [`TraceEvent::LayerCoverage`] per
/// touched parameter tensor counting how many elements were covered by
/// at least one upload (Algorithm 2's covered/kept split). The
/// arithmetic is identical to [`aggregate`] — coverage is counted from
/// the same `cnt` accumulator the averaging already computes, so
/// tracing cannot perturb the result.
pub fn aggregate_traced(
    global: &mut ParamMap,
    uploads: &[Upload],
    tracer: &dyn Tracer,
    round: usize,
) {
    aggregate_with_scratch(global, uploads, tracer, round, &Scratch::new());
}

/// [`aggregate_traced`] drawing the per-parameter `acc`/`cnt`
/// accumulators from a [`Scratch`] arena, so a long run allocates them
/// once instead of twice per parameter per round. The arithmetic is
/// identical — the arena hands out zeroed buffers, exactly what the
/// per-round `Tensor::zeros` allocations previously produced.
pub fn aggregate_with_scratch(
    global: &mut ParamMap,
    uploads: &[Upload],
    tracer: &dyn Tracer,
    round: usize,
    scratch: &Scratch,
) {
    if uploads.is_empty() {
        return;
    }
    for u in uploads {
        assert!(u.weight > 0.0, "upload weight must be positive");
    }
    // Accumulate per parameter name, iterating the map in place (the
    // name-ordered walk is deterministic; no name-list clone needed).
    for (name, g) in global.iter_mut() {
        let mut acc = scratch.take_tensor(g.shape());
        let mut cnt = scratch.take_tensor(g.shape());
        let mut contributors = 0usize;
        for u in uploads {
            if let Some(block) = u.params.get(name) {
                let spec = SliceSpec::new(block.shape().to_vec());
                assert!(
                    spec.fits_in(g.shape()),
                    "upload for {name} has non-nested shape {:?} vs {:?}",
                    block.shape(),
                    g.shape()
                );
                spec.scatter_add(block, u.weight, &mut acc, &mut cnt);
                contributors += 1;
            }
        }
        if contributors > 0 {
            let gv = g.as_mut_slice();
            let av = acc.as_slice();
            let cv = cnt.as_slice();
            for i in 0..gv.len() {
                if cv[i] > 0.0 {
                    gv[i] = av[i] / cv[i];
                }
                // else: keep the previous global value (Algorithm 2, l.14).
            }
            if tracer.enabled() {
                let covered = cv.iter().filter(|&&c| c > 0.0).count() as u64;
                tracer.event(TraceEvent::LayerCoverage {
                    round,
                    layer: name.to_string(),
                    covered,
                    total: cv.len() as u64,
                    uploads: contributors,
                });
            }
        }
        scratch.recycle_tensor(acc);
        scratch.recycle_tensor(cnt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::Tensor;

    fn map(pairs: &[(&str, Tensor)]) -> ParamMap {
        let mut m = ParamMap::new();
        for (n, t) in pairs {
            m.insert(*n, t.clone());
        }
        m
    }

    #[test]
    fn homogeneous_uploads_reduce_to_fedavg() {
        let mut global = map(&[("w", Tensor::zeros(&[2, 2]))]);
        let u1 = Upload {
            params: map(&[("w", Tensor::full(&[2, 2], 1.0))]),
            weight: 10.0,
        };
        let u2 = Upload {
            params: map(&[("w", Tensor::full(&[2, 2], 4.0))]),
            weight: 30.0,
        };
        aggregate(&mut global, &[u1, u2]);
        // (1·10 + 4·30)/40 = 3.25 everywhere.
        assert!(global
            .get("w")
            .unwrap()
            .as_slice()
            .iter()
            .all(|&v| (v - 3.25).abs() < 1e-6));
    }

    #[test]
    fn uncovered_elements_keep_previous_values() {
        let mut global = map(&[("w", Tensor::full(&[3, 3], 7.0))]);
        let small = Upload {
            params: map(&[("w", Tensor::full(&[2, 2], 1.0))]),
            weight: 5.0,
        };
        aggregate(&mut global, &[small]);
        let g = global.get("w").unwrap();
        assert_eq!(g.at(&[0, 0]), 1.0);
        assert_eq!(g.at(&[1, 1]), 1.0);
        assert_eq!(g.at(&[2, 2]), 7.0); // untouched
        assert_eq!(g.at(&[0, 2]), 7.0); // untouched
    }

    #[test]
    fn heterogeneous_overlap_weights_by_data_size() {
        let mut global = map(&[("w", Tensor::zeros(&[2]))]);
        // Small client covers element 0 only; big client covers both.
        let small = Upload {
            params: map(&[("w", Tensor::full(&[1], 0.0))]),
            weight: 10.0,
        };
        let big = Upload {
            params: map(&[("w", Tensor::full(&[2], 3.0))]),
            weight: 10.0,
        };
        aggregate(&mut global, &[small, big]);
        let g = global.get("w").unwrap();
        assert!((g.as_slice()[0] - 1.5).abs() < 1e-6); // (0·10+3·10)/20
        assert!((g.as_slice()[1] - 3.0).abs() < 1e-6); // only big
    }

    #[test]
    fn uploads_may_omit_whole_parameters() {
        // E.g. a depth-pruned ScaleFL client omits deep-layer params.
        let mut global = map(&[
            ("deep", Tensor::full(&[2], 9.0)),
            ("shallow", Tensor::zeros(&[2])),
        ]);
        let u = Upload {
            params: map(&[("shallow", Tensor::ones(&[2]))]),
            weight: 1.0,
        };
        aggregate(&mut global, &[u]);
        assert_eq!(global.get("deep").unwrap().as_slice(), &[9.0, 9.0]);
        assert_eq!(global.get("shallow").unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn empty_upload_list_is_noop() {
        let mut global = map(&[("w", Tensor::full(&[2], 5.0))]);
        let before = global.clone();
        aggregate(&mut global, &[]);
        assert_eq!(global, before);
    }

    #[test]
    fn dirty_scratch_arena_does_not_perturb_results() {
        use crate::trace::NoopTracer;
        let build = || {
            map(&[
                ("a", Tensor::full(&[3, 3], 7.0)),
                ("b", Tensor::zeros(&[4])),
            ])
        };
        let uploads = vec![
            Upload {
                params: map(&[("a", Tensor::full(&[2, 2], 1.0)), ("b", Tensor::ones(&[2]))]),
                weight: 5.0,
            },
            Upload {
                params: map(&[("a", Tensor::full(&[3, 3], 4.0))]),
                weight: 3.0,
            },
        ];
        let mut fresh = build();
        aggregate(&mut fresh, &uploads);
        // Salt the arena with dirty buffers of the exact sizes the
        // aggregation will request; results must not change.
        let scratch = Scratch::new();
        for len in [9, 9, 4, 4] {
            let mut b = scratch.take(len);
            b.fill(1234.5);
            scratch.recycle(b);
        }
        let mut pooled = build();
        aggregate_with_scratch(&mut pooled, &uploads, &NoopTracer, 0, &scratch);
        assert_eq!(fresh, pooled);
        assert!(scratch.reuses() > 0, "arena was never reused");
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn rejects_zero_weight() {
        let mut global = map(&[("w", Tensor::zeros(&[1]))]);
        let u = Upload {
            params: map(&[("w", Tensor::zeros(&[1]))]),
            weight: 0.0,
        };
        aggregate(&mut global, &[u]);
    }

    #[test]
    fn aggregation_preserves_nesting_semantics() {
        // Three nested uploads: sizes 1, 2, 3 of a length-3 vector.
        let mut global = map(&[("w", Tensor::zeros(&[3]))]);
        let us: Vec<Upload> = (1..=3)
            .map(|k| Upload {
                params: map(&[("w", Tensor::full(&[k], k as f32))]),
                weight: 1.0,
            })
            .collect();
        aggregate(&mut global, &us);
        let g = global.get("w").unwrap();
        // Element 0: mean(1,2,3)=2; element 1: mean(2,3)=2.5; element 2: 3.
        assert!((g.as_slice()[0] - 2.0).abs() < 1e-6);
        assert!((g.as_slice()[1] - 2.5).abs() < 1e-6);
        assert!((g.as_slice()[2] - 3.0).abs() < 1e-6);
    }
}
