//! The RL state of §3.3: curiosity table `T_c`, resource table `T_r`,
//! the reward functions, and the table updates of Algorithm 1
//! (lines 12–26).

use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

use crate::compress::FrameReader;
use crate::error::CoreError;
use crate::pool::{Level, ModelPool};

/// Curiosity table `T_c[type][client]` and resource table
/// `T_r[pool index][client]`, both initialised to 1 (Algorithm 1,
/// lines 1–2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RlState {
    t_c: Vec<Vec<f64>>, // [3][clients]
    t_r: Vec<Vec<f64>>, // [2p+1][clients]
    p: usize,
    /// Upper bound on the resource reward (paper: 0.5, the "50 %
    /// success-rate cap"); configurable for the ablation benches.
    reward_cap: f64,
}

impl RlState {
    /// Creates the tables for a pool of `2p+1` entries and
    /// `num_clients` clients.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(p: usize, num_clients: usize) -> Self {
        assert!(p > 0 && num_clients > 0, "tables need positive dimensions");
        RlState {
            t_c: vec![vec![1.0; num_clients]; 3],
            t_r: vec![vec![1.0; num_clients]; 2 * p + 1],
            p,
            reward_cap: 0.5,
        }
    }

    /// Overrides the resource-reward cap (paper default 0.5). A cap of
    /// 1.0 disables it — used by the design-choice ablation.
    ///
    /// # Panics
    ///
    /// Panics unless `cap` is in `(0, 1]`.
    pub fn with_reward_cap(mut self, cap: f64) -> Self {
        assert!(cap > 0.0 && cap <= 1.0, "cap must be in (0, 1]");
        self.reward_cap = cap;
        self
    }

    /// Number of clients tracked.
    pub fn num_clients(&self) -> usize {
        self.t_c[0].len()
    }

    /// Curiosity count for `(level, client)`.
    pub fn curiosity(&self, level: Level, client: usize) -> f64 {
        self.t_c[level.type_index()][client]
    }

    /// Training score `T_r[model][client]`.
    pub fn score(&self, pool_index: usize, client: usize) -> f64 {
        self.t_r[pool_index][client]
    }

    /// Curiosity reward `R_c = 1/√(T_c[type][c])` (MBIE-EB).
    pub fn curiosity_reward(&self, level: Level, client: usize) -> f64 {
        1.0 / self.curiosity(level, client).sqrt()
    }

    /// Resource reward `R_s(m_i, c)` (paper §3.3): for each pool index
    /// `k` in `m_i`'s level, sum the scores of every model from `k` up
    /// to `L_1`, normalised by `p × Σ_k T_r[k][c]`.
    pub fn resource_reward(&self, pool: &ModelPool, pool_index: usize, client: usize) -> f64 {
        let level = pool.entry(pool_index).level;
        let top = pool.len(); // exclusive upper bound (L_1 inclusive)
        let level_indices = pool.level_indices(level);
        let numerator: f64 = level_indices
            .iter()
            .map(|&k| (k..top).map(|t| self.t_r[t][client]).sum::<f64>())
            .sum();
        let total: f64 = (0..top).map(|k| self.t_r[k][client]).sum();
        if total <= 0.0 {
            return 0.0;
        }
        numerator / (self.p as f64 * total)
    }

    /// Combined reward `R = min(0.5, R_s) · R_c` (paper §3.3: the 50 %
    /// success-rate cap keeps strong clients from starving the rest).
    pub fn reward(&self, pool: &ModelPool, pool_index: usize, client: usize) -> f64 {
        let level = pool.entry(pool_index).level;
        let rs = self.resource_reward(pool, pool_index, client);
        rs.min(self.reward_cap) * self.curiosity_reward(level, client)
    }

    /// Appends the tables to a binary frame (big-endian, `f64` as raw
    /// bits) — the stable snapshot encoding.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32(self.p as u32);
        buf.put_u64(self.reward_cap.to_bits());
        for table in [&self.t_c, &self.t_r] {
            buf.put_u32(table.len() as u32);
            buf.put_u32(table.first().map_or(0, Vec::len) as u32);
            for row in table {
                for &v in row {
                    buf.put_u64(v.to_bits());
                }
            }
        }
    }

    /// Parses tables encoded by [`RlState::encode`]. Never panics:
    /// truncated or structurally inconsistent frames return
    /// [`CoreError::MalformedFrame`].
    pub fn decode(r: &mut FrameReader<'_>) -> Result<Self, CoreError> {
        let p = r.u32()? as usize;
        let reward_cap = f64::from_bits(r.u64()?);
        if p == 0 || !(reward_cap > 0.0 && reward_cap <= 1.0) {
            return Err(CoreError::MalformedFrame(format!(
                "rl tables: invalid p={p} or cap={reward_cap}"
            )));
        }
        let mut tables = Vec::with_capacity(2);
        for (label, want_rows) in [("t_c", 3), ("t_r", 2 * p + 1)] {
            let rows = r.u32()? as usize;
            let cols = r.u32()? as usize;
            if rows != want_rows || cols == 0 {
                return Err(CoreError::MalformedFrame(format!(
                    "rl tables: {label} is {rows}×{cols}, want {want_rows} rows"
                )));
            }
            if r.remaining() < rows * cols * 8 {
                return Err(CoreError::MalformedFrame(format!(
                    "rl tables: {label} exceeds remaining frame"
                )));
            }
            let mut table = Vec::with_capacity(rows);
            for _ in 0..rows {
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(f64::from_bits(r.u64()?));
                }
                table.push(row);
            }
            tables.push(table);
        }
        let t_r = tables.pop().expect("two tables pushed");
        let t_c = tables.pop().expect("two tables pushed");
        if t_c[0].len() != t_r[0].len() {
            return Err(CoreError::MalformedFrame(
                "rl tables: client dimensions disagree".into(),
            ));
        }
        Ok(RlState {
            t_c,
            t_r,
            p,
            reward_cap,
        })
    }

    /// Dispatch-time update (Algorithm 1, line 12): bump the curiosity
    /// count for the sent model's type.
    pub fn update_on_dispatch(&mut self, level: Level, client: usize) {
        self.t_c[level.type_index()][client] += 1.0;
    }

    /// Return-time update (Algorithm 1, lines 13–26).
    ///
    /// * `sent` / `returned` are pool indices of `m_i` and `m'_i`;
    ///   `returned = None` models a client that could not train even
    ///   the smallest entry.
    pub fn update_on_return(
        &mut self,
        pool: &ModelPool,
        sent: usize,
        returned: Option<usize>,
        client: usize,
    ) {
        let top = pool.len();
        match returned {
            Some(ret) if ret == sent => {
                // Line 13: curiosity for the returned type.
                self.t_c[pool.entry(ret).level.type_index()][client] += 1.0;
                // Lines 15–18: the client trained the model unpruned,
                // so every size ≥ sent gains a point, with an extra
                // `p−1` bonus on `L_1`.
                for t in sent..top {
                    self.t_r[t][client] += 1.0;
                }
                self.t_r[top - 1][client] += (self.p - 1) as f64;
            }
            Some(ret) => {
                self.t_c[pool.entry(ret).level.type_index()][client] += 1.0;
                // Lines 20–25: reward the size the client actually
                // managed, punish everything larger with a growing τ.
                self.t_r[ret][client] += self.p as f64;
                let mut tau = 0.0;
                for t in ret..top {
                    self.t_r[t][client] = (self.t_r[t][client] - tau).max(0.0);
                    tau += 1.0;
                }
            }
            None => {
                // The client failed entirely: punish every size.
                let mut tau = 1.0;
                for t in 0..top {
                    self.t_r[t][client] = (self.t_r[t][client] - tau).max(0.0);
                    tau += 1.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{ModelPool, DEFAULT_RATIOS};
    use adaptivefl_models::ModelConfig;

    fn pool() -> ModelPool {
        ModelPool::split(&ModelConfig::tiny(10), 3, DEFAULT_RATIOS)
    }

    #[test]
    fn tables_initialise_to_one() {
        let rl = RlState::new(3, 5);
        assert_eq!(rl.curiosity(Level::Small, 0), 1.0);
        assert_eq!(rl.score(6, 4), 1.0);
        assert_eq!(rl.num_clients(), 5);
    }

    #[test]
    fn curiosity_reward_decays_with_selection() {
        let mut rl = RlState::new(3, 2);
        let before = rl.curiosity_reward(Level::Medium, 0);
        rl.update_on_dispatch(Level::Medium, 0);
        rl.update_on_dispatch(Level::Medium, 0);
        let after = rl.curiosity_reward(Level::Medium, 0);
        assert!(after < before);
        // Untouched client unchanged.
        assert_eq!(rl.curiosity_reward(Level::Medium, 1), before);
    }

    #[test]
    fn successful_training_raises_resource_reward_for_large_models() {
        let p = pool();
        let mut rl = RlState::new(p.p(), 3);
        let l1 = p.len() - 1;
        let before = rl.resource_reward(&p, l1, 0);
        // Client 0 repeatedly trains L_1 without pruning.
        for _ in 0..5 {
            rl.update_on_return(&p, l1, Some(l1), 0);
        }
        let after = rl.resource_reward(&p, l1, 0);
        assert!(
            after > before,
            "resource reward should grow after successes: {before} → {after}"
        );
        // Compared to an untouched client, client 0 looks stronger.
        assert!(after > rl.resource_reward(&p, l1, 1));
    }

    #[test]
    fn local_pruning_punishes_larger_sizes() {
        let p = pool();
        let mut rl = RlState::new(p.p(), 2);
        let l1 = p.len() - 1;
        // Sent L_1, client pruned it down to S_1 (index 2).
        rl.update_on_return(&p, l1, Some(2), 0);
        // S_1 got the +p bonus (minus τ=0): 1 + 3 = 4.
        assert_eq!(rl.score(2, 0), 4.0);
        // Larger sizes progressively punished: index 3 → 1-1=0, …
        assert_eq!(rl.score(3, 0), 0.0);
        assert_eq!(rl.score(l1, 0), 0.0);
        // Resource reward for L_1 on this client now lower than on a
        // fresh client.
        assert!(rl.resource_reward(&p, l1, 0) < rl.resource_reward(&p, l1, 1));
    }

    #[test]
    fn reward_is_capped_at_half_resource() {
        let p = pool();
        let mut rl = RlState::new(p.p(), 2);
        // Make client 0 look extremely strong.
        for _ in 0..50 {
            rl.update_on_return(&p, p.len() - 1, Some(p.len() - 1), 0);
        }
        let rs = rl.resource_reward(&p, 0, 0);
        assert!(rs > 0.5, "small models should look near-certain: {rs}");
        let r = rl.reward(&p, 0, 0);
        let rc = rl.curiosity_reward(Level::Small, 0);
        assert!(
            (r - 0.5 * rc).abs() < 1e-9,
            "cap not applied: {r} vs {}",
            0.5 * rc
        );
    }

    #[test]
    fn total_failure_zeroes_scores() {
        let p = pool();
        let mut rl = RlState::new(p.p(), 1);
        rl.update_on_return(&p, 0, None, 0);
        for t in 0..p.len() {
            assert_eq!(rl.score(t, 0), 0.0);
        }
    }

    #[test]
    fn encode_decode_roundtrips_trained_tables() {
        let p = pool();
        let mut rl = RlState::new(p.p(), 4).with_reward_cap(0.7);
        rl.update_on_dispatch(Level::Medium, 1);
        rl.update_on_return(&p, 6, Some(2), 1);
        rl.update_on_return(&p, 0, None, 3);
        let mut buf = bytes::BytesMut::new();
        rl.encode(&mut buf);
        let mut r = FrameReader::new(&buf);
        let back = RlState::decode(&mut r).expect("intact frame");
        assert!(r.is_empty());
        assert_eq!(rl, back);
    }

    #[test]
    fn decode_rejects_truncation() {
        let rl = RlState::new(2, 3);
        let mut buf = bytes::BytesMut::new();
        rl.encode(&mut buf);
        for cut in [0, 4, 11, buf.len() / 2, buf.len() - 1] {
            assert!(
                RlState::decode(&mut FrameReader::new(&buf[..cut])).is_err(),
                "prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn fresh_state_resource_reward_scales_with_level() {
        // With all-ones tables, smaller models have larger numerators
        // (more upward mass), so R_s(S) > R_s(M) > R_s(L).
        let p = pool();
        let rl = RlState::new(p.p(), 1);
        let rs_s = rl.resource_reward(&p, 0, 0);
        let rs_m = rl.resource_reward(&p, 3, 0);
        let rs_l = rl.resource_reward(&p, 6, 0);
        assert!(rs_s > rs_m && rs_m > rs_l, "{rs_s} {rs_m} {rs_l}");
    }
}
