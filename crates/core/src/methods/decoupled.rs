//! Decoupled: one independent FedAvg federation per level (S/M/L) with
//! no cross-level parameter sharing — the paper's weakest baseline.

use adaptivefl_models::cost::cost_of;
use adaptivefl_models::WidthPlan;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{aggregate_with_scratch, Upload};
use crate::checkpoint::{Checkpointable, MethodState};
use crate::error::CoreError;
use crate::methods::{sample_clients, trace_client_train, trace_collect, trace_dispatch, FlMethod};
use crate::metrics::{EvalRecord, RoundRecord};
use crate::sim::Env;
use crate::trace::{Phase, PhaseTimer};
use crate::trainer::evaluate;
use crate::transport::{ClientJob, JobFn, LocalOutcome, Transport};

/// Per-level global models (`S_1`, `M_1`, `L_1`), each trained only by
/// the clients that can afford that level.
pub struct Decoupled {
    /// `(level name, plan, params, global weights)`, ascending by size.
    levels: Vec<(String, WidthPlan, u64, ParamMap)>,
}

impl Decoupled {
    /// Initialises one independent global model per level.
    pub fn new(env: &Env) -> Self {
        let levels = env
            .pool
            .level_representatives()
            .into_iter()
            .map(|rep| {
                let mut rng = adaptivefl_tensor::rng::derived(env.cfg.seed, "decoupled-init");
                let net = env.cfg.model.build(&rep.plan, &mut rng);
                (rep.name(), rep.plan.clone(), rep.params, net.param_map())
            })
            .collect();
        Decoupled { levels }
    }
}

impl Checkpointable for Decoupled {
    fn capture(&self) -> MethodState {
        MethodState {
            params: self
                .levels
                .iter()
                .map(|(name, _, _, global)| (name.clone(), global.clone()))
                .collect(),
            rl: None,
            extra: Vec::new(),
        }
    }

    fn restore(&mut self, state: MethodState) -> Result<(), CoreError> {
        if state.params.len() != self.levels.len() {
            return Err(CoreError::Snapshot(format!(
                "Decoupled snapshot has {} level models, environment builds {}",
                state.params.len(),
                self.levels.len()
            )));
        }
        for ((name, global), level) in state.params.into_iter().zip(self.levels.iter_mut()) {
            if name != level.0 {
                return Err(CoreError::Snapshot(format!(
                    "Decoupled level mismatch: snapshot {name}, environment {}",
                    level.0
                )));
            }
            level.3 = global;
        }
        Ok(())
    }
}

impl FlMethod for Decoupled {
    fn name(&self) -> String {
        "Decoupled".to_string()
    }

    fn round(
        &mut self,
        env: &Env,
        round: usize,
        transport: &mut dyn Transport,
        rng: &mut ChaCha8Rng,
    ) -> RoundRecord {
        let clients = sample_clients(env, round, env.cfg.clients_per_round, rng);
        let mut sent = 0u64;
        let mut failures = 0usize;

        // A client with no affordable level is never dispatched to at
        // all — no downlink is spent, unlike the other baselines.
        let dispatch_timer = PhaseTimer::start(env.tracer(), Phase::Dispatch);
        let levels = &self.levels;
        let mut jobs: Vec<ClientJob<'_>> = Vec::with_capacity(clients.len());
        for &c in &clients {
            let capacity = env.fleet.device(c).capacity_at(round);
            // Largest level that fits the client right now.
            let Some(li) = levels
                .iter()
                .rposition(|(_, _, params, _)| *params <= capacity)
            else {
                failures += 1;
                continue;
            };
            let params = levels[li].2;
            sent += params;
            trace_dispatch(env, round, c, li, params);
            let run: JobFn<'_> = Box::new(move |rng: &mut ChaCha8Rng| {
                let train_timer = PhaseTimer::start(env.tracer(), Phase::ClientTrain);
                let (_, plan, params, global) = &levels[li];
                let mut net = env.cfg.model.build(plan, rng);
                net.load_param_map(global);
                let data = env.data.client(c);
                let loss = env
                    .cfg
                    .local
                    .train_with_scratch(&mut net, data, rng, &env.scratch);
                let macs = cost_of(&env.cfg.model.full_blueprint(plan), env.cfg.model.input).macs;
                train_timer.stop(env.tracer());
                trace_client_train(env, round, c, li, loss, data.len(), macs);
                LocalOutcome {
                    upload: Some(Upload {
                        params: net.param_map(),
                        weight: data.len() as f32,
                    }),
                    loss,
                    tag: li,
                    macs_per_sample: macs,
                    samples: data.len(),
                    up_params: *params,
                }
            });
            jobs.push(ClientJob {
                client: c,
                tag: li,
                down_params: params,
                run,
            });
        }
        dispatch_timer.stop(env.tracer());

        let exchange = transport.exchange(env, round, jobs, rng);

        let collect_timer = PhaseTimer::start(env.tracer(), Phase::Collect);
        let mut per_level_uploads: Vec<Vec<Upload>> = vec![Vec::new(); self.levels.len()];
        let mut returned = 0u64;
        let mut loss_acc = 0.0;
        let mut trained = 0usize;
        for d in exchange.deliveries {
            trace_collect(env, round, &d);
            if d.status.is_delivered() {
                returned += d.up_params;
                loss_acc += d.loss;
                trained += 1;
                per_level_uploads[d.tag].push(d.upload.expect("delivered upload present"));
            } else {
                failures += 1;
            }
        }
        collect_timer.stop(env.tracer());
        let agg_timer = PhaseTimer::start(env.tracer(), Phase::Aggregate);
        for (li, uploads) in per_level_uploads.into_iter().enumerate() {
            aggregate_with_scratch(
                &mut self.levels[li].3,
                &uploads,
                env.tracer(),
                round,
                &env.scratch,
            );
        }
        agg_timer.stop(env.tracer());

        RoundRecord {
            round,
            sent_params: sent,
            returned_params: returned,
            train_loss: if trained > 0 {
                loss_acc / trained as f32
            } else {
                0.0
            },
            sim_secs: exchange.round_secs,
            failures,
            comm: exchange.stats,
        }
    }

    fn evaluate(&mut self, env: &Env, round: usize) -> EvalRecord {
        let mut levels = Vec::new();
        for (name, plan, _, global) in &self.levels {
            let mut net = env.cfg.model.build(plan, &mut env.eval_rng());
            net.load_param_map(global);
            levels.push((
                name.clone(),
                evaluate(&mut net, env.data.test(), env.cfg.eval_batch),
            ));
        }
        let full = levels.last().map_or(0.0, |(_, a)| *a);
        EvalRecord {
            round,
            full,
            levels,
        }
    }
}
