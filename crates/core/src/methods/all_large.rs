//! All-Large: classic FedAvg on the full model with every selected
//! client (McMahan et al.), the paper's non-resource-constrained
//! reference.

use adaptivefl_models::cost::cost_of;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{aggregate_with_scratch, Upload};
use crate::checkpoint::{Checkpointable, MethodState};
use crate::error::CoreError;
use crate::methods::{sample_clients, trace_client_train, trace_collect, trace_dispatch, FlMethod};
use crate::metrics::{EvalRecord, RoundRecord};
use crate::sim::Env;
use crate::trace::{Phase, PhaseTimer};
use crate::trainer::evaluate;
use crate::transport::{ClientJob, JobFn, LocalOutcome, Transport};

/// FedAvg on `L_1` with uniformly sampled clients. Resource limits are
/// deliberately ignored (the paper trains All-Large "with all clients
/// under the classic FedAvg" as an upper reference in non-resource
/// scenarios).
pub struct AllLarge {
    global: ParamMap,
}

impl AllLarge {
    /// Initialises the global model.
    pub fn new(env: &Env) -> Self {
        AllLarge {
            global: env.fresh_global(),
        }
    }
}

impl Checkpointable for AllLarge {
    fn capture(&self) -> MethodState {
        MethodState::single(self.global.clone())
    }

    fn restore(&mut self, state: MethodState) -> Result<(), CoreError> {
        self.global = state.into_single()?;
        Ok(())
    }
}

impl FlMethod for AllLarge {
    fn name(&self) -> String {
        "All-Large".to_string()
    }

    fn round(
        &mut self,
        env: &Env,
        round: usize,
        transport: &mut dyn Transport,
        rng: &mut ChaCha8Rng,
    ) -> RoundRecord {
        let full = env.pool.largest();
        let clients = sample_clients(env, round, env.cfg.clients_per_round, rng);
        let macs = cost_of(
            &env.cfg.model.full_blueprint(&full.plan),
            env.cfg.model.input,
        )
        .macs;

        let dispatch_timer = PhaseTimer::start(env.tracer(), Phase::Dispatch);
        let global = &self.global;
        let jobs: Vec<ClientJob<'_>> = clients
            .iter()
            .map(|&c| {
                trace_dispatch(env, round, c, 0, full.params);
                let run: JobFn<'_> = Box::new(move |rng: &mut ChaCha8Rng| {
                    let train_timer = PhaseTimer::start(env.tracer(), Phase::ClientTrain);
                    let mut net = env.cfg.model.build(&full.plan, rng);
                    net.load_param_map(global);
                    let data = env.data.client(c);
                    let loss = env
                        .cfg
                        .local
                        .train_with_scratch(&mut net, data, rng, &env.scratch);
                    train_timer.stop(env.tracer());
                    trace_client_train(env, round, c, 0, loss, data.len(), macs);
                    LocalOutcome {
                        upload: Some(Upload {
                            params: net.param_map(),
                            weight: data.len() as f32,
                        }),
                        loss,
                        tag: 0,
                        macs_per_sample: macs,
                        samples: data.len(),
                        up_params: full.params,
                    }
                });
                ClientJob {
                    client: c,
                    tag: 0,
                    down_params: full.params,
                    run,
                }
            })
            .collect();
        dispatch_timer.stop(env.tracer());

        let exchange = transport.exchange(env, round, jobs, rng);

        let collect_timer = PhaseTimer::start(env.tracer(), Phase::Collect);
        let mut uploads = Vec::with_capacity(exchange.deliveries.len());
        let mut returned = 0u64;
        let mut loss_acc = 0.0;
        let mut trained = 0usize;
        let mut failures = 0usize;
        for d in exchange.deliveries {
            trace_collect(env, round, &d);
            if d.status.is_delivered() {
                returned += d.up_params;
                loss_acc += d.loss;
                trained += 1;
                uploads.push(d.upload.expect("delivered upload present"));
            } else {
                failures += 1;
            }
        }
        collect_timer.stop(env.tracer());
        let agg_timer = PhaseTimer::start(env.tracer(), Phase::Aggregate);
        aggregate_with_scratch(
            &mut self.global,
            &uploads,
            env.tracer(),
            round,
            &env.scratch,
        );
        agg_timer.stop(env.tracer());

        RoundRecord {
            round,
            sent_params: full.params * clients.len() as u64,
            returned_params: returned,
            train_loss: if trained > 0 {
                loss_acc / trained as f32
            } else {
                0.0
            },
            sim_secs: exchange.round_secs,
            failures,
            comm: exchange.stats,
        }
    }

    fn evaluate(&mut self, env: &Env, round: usize) -> EvalRecord {
        let mut net = env
            .cfg
            .model
            .build(&env.pool.largest().plan, &mut env.eval_rng());
        net.load_param_map(&self.global);
        let full = evaluate(&mut net, env.data.test(), env.cfg.eval_batch);
        EvalRecord {
            round,
            full,
            levels: Vec::new(),
        }
    }
}
