//! All-Large: classic FedAvg on the full model with every selected
//! client (McMahan et al.), the paper's non-resource-constrained
//! reference.

use adaptivefl_models::cost::cost_of;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{aggregate, Upload};
use crate::methods::{client_secs, sample_clients, FlMethod};
use crate::metrics::{EvalRecord, RoundRecord};
use crate::sim::Env;
use crate::trainer::evaluate;

/// FedAvg on `L_1` with uniformly sampled clients. Resource limits are
/// deliberately ignored (the paper trains All-Large "with all clients
/// under the classic FedAvg" as an upper reference in non-resource
/// scenarios).
pub struct AllLarge {
    global: ParamMap,
}

impl AllLarge {
    /// Initialises the global model.
    pub fn new(env: &Env) -> Self {
        AllLarge { global: env.fresh_global() }
    }
}

impl FlMethod for AllLarge {
    fn name(&self) -> String {
        "All-Large".to_string()
    }

    fn round(&mut self, env: &Env, round: usize, rng: &mut ChaCha8Rng) -> RoundRecord {
        let full = env.pool.largest();
        let clients = sample_clients(env, round, env.cfg.clients_per_round, rng);
        let mut uploads = Vec::with_capacity(clients.len());
        let mut loss_acc = 0.0;
        let mut slowest = 0.0f64;
        let macs = cost_of(&env.cfg.model.full_blueprint(&full.plan), env.cfg.model.input).macs;

        for &c in &clients {
            let mut net = env.cfg.model.build(&full.plan, rng);
            net.load_param_map(&self.global);
            let data = env.data.client(c);
            loss_acc += env.cfg.local.train(&mut net, data, rng);
            slowest = slowest.max(client_secs(env, c, macs, data.len(), full.params, full.params));
            uploads.push(Upload { params: net.param_map(), weight: data.len() as f32 });
        }
        aggregate(&mut self.global, &uploads);

        RoundRecord {
            round,
            sent_params: full.params * clients.len() as u64,
            returned_params: full.params * clients.len() as u64,
            train_loss: if clients.is_empty() { 0.0 } else { loss_acc / clients.len() as f32 },
            sim_secs: slowest,
            failures: 0,
        }
    }

    fn evaluate(&mut self, env: &Env, round: usize) -> EvalRecord {
        let mut net = env.cfg.model.build(&env.pool.largest().plan, &mut env.eval_rng());
        net.load_param_map(&self.global);
        let full = evaluate(&mut net, env.data.test(), env.cfg.eval_batch);
        EvalRecord { round, full, levels: Vec::new() }
    }
}
