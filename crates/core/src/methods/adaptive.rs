//! AdaptiveFL — Algorithm 1 of the paper.

use adaptivefl_models::cost::cost_of;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{aggregate_with_scratch, Upload};
use crate::checkpoint::{Checkpointable, MethodState};
use crate::error::CoreError;
use crate::methods::FlMethod;
use crate::metrics::{EvalRecord, RoundRecord};
use crate::rl::RlState;
use crate::select::{select_client, SelectionStrategy};
use crate::sim::Env;
use crate::trace::{status_name, Phase, PhaseTimer, TraceEvent};
use crate::trainer::evaluate;
use crate::transport::{ClientJob, JobFn, LocalOutcome, Transport};

/// AdaptiveFL server state: the full global model, the RL tables, and
/// the selection strategy (ablation variants reuse this struct).
pub struct AdaptiveFl {
    global: ParamMap,
    rl: RlState,
    strategy: SelectionStrategy,
    /// "AdaptiveFL+Greed": skip the random model pick and always
    /// dispatch `L_1`.
    greedy_dispatch: bool,
}

impl AdaptiveFl {
    /// Initialises the global model and RL tables for an environment.
    pub fn new(env: &Env, strategy: SelectionStrategy, greedy_dispatch: bool) -> Self {
        AdaptiveFl {
            global: env.fresh_global(),
            rl: RlState::new(env.pool.p(), env.data.num_clients()),
            strategy,
            greedy_dispatch,
        }
    }

    /// Overrides the resource-reward cap (paper default 0.5) — used by
    /// the design-choice ablation benches.
    pub fn with_reward_cap(mut self, cap: f64) -> Self {
        self.rl = self.rl.with_reward_cap(cap);
        self
    }

    /// Read access to the RL state (for diagnostics/tests).
    pub fn rl(&self) -> &RlState {
        &self.rl
    }

    /// Read access to the global model.
    pub fn global(&self) -> &ParamMap {
        &self.global
    }
}

impl Checkpointable for AdaptiveFl {
    fn capture(&self) -> MethodState {
        let mut state = MethodState::single(self.global.clone());
        state.rl = Some(self.rl.clone());
        state
    }

    fn restore(&mut self, state: MethodState) -> Result<(), CoreError> {
        let Some(rl) = state.rl.clone() else {
            return Err(CoreError::Snapshot(
                "AdaptiveFL snapshot lacks RL tables".into(),
            ));
        };
        if rl.num_clients() != self.rl.num_clients() {
            return Err(CoreError::Snapshot(format!(
                "RL tables track {} clients, environment has {}",
                rl.num_clients(),
                self.rl.num_clients()
            )));
        }
        self.global = state.into_single()?;
        self.rl = rl;
        Ok(())
    }
}

impl FlMethod for AdaptiveFl {
    fn name(&self) -> String {
        if self.greedy_dispatch {
            "AdaptiveFL+Greed".to_string()
        } else {
            match self.strategy {
                SelectionStrategy::CuriosityAndResource => "AdaptiveFL".to_string(),
                s => format!("AdaptiveFL+{s}"),
            }
        }
    }

    fn round(
        &mut self,
        env: &Env,
        round: usize,
        transport: &mut dyn Transport,
        rng: &mut ChaCha8Rng,
    ) -> RoundRecord {
        let pool = &env.pool;
        let k = env.cfg.clients_per_round;
        let mut eligible = env.eligible_clients(round);

        // Step 2+3: pick (model, client) pairs; clients are distinct
        // within a round.
        let mut assignments: Vec<(usize, usize)> = Vec::with_capacity(k); // (pool idx, client)
        for _ in 0..k {
            if eligible.is_empty() {
                break;
            }
            let m_idx = if self.greedy_dispatch {
                pool.len() - 1
            } else {
                // RandomSel: the paper leaves the distribution over the
                // pool unspecified; we sample a level uniformly, then a
                // member within the level, so the full model is trained
                // as often as each pruned level (pure uniform over the
                // 2p+1 entries starves L_1 at small round budgets).
                let level = crate::pool::Level::all()[rng.gen_range(0..3)];
                let members = pool.level_indices(level);
                members[rng.gen_range(0..members.len())]
            };
            let Some(c) = select_client(self.strategy, &self.rl, pool, m_idx, &eligible, rng)
            else {
                break;
            };
            eligible.retain(|&x| x != c);
            assignments.push((m_idx, c));
        }

        // Steps 4-5: dispatch one job per assignment; the closure is
        // the client side — adaptive pruning to the currently available
        // resources, then local training.
        let dispatch_timer = PhaseTimer::start(env.tracer(), Phase::Dispatch);
        let global = &self.global;
        let mut jobs: Vec<ClientJob<'_>> = Vec::with_capacity(assignments.len());
        let mut sent = 0u64;
        for &(m_idx, c) in &assignments {
            let entry = pool.entry(m_idx);
            self.rl.update_on_dispatch(entry.level, c);
            sent += entry.params;
            if env.tracer().enabled() {
                env.tracer().event(TraceEvent::Dispatch {
                    round,
                    client: c,
                    tag: m_idx,
                    params: entry.params,
                });
                env.tracer().event(TraceEvent::RlDispatch {
                    round,
                    client: c,
                    level: entry.level.type_index(),
                });
            }

            let run: JobFn<'_> = Box::new(move |rng: &mut ChaCha8Rng| {
                let train_timer = PhaseTimer::start(env.tracer(), Phase::ClientTrain);
                let capacity = env.fleet.device(c).capacity_at(round);
                let Some(fit) = pool.largest_fitting(m_idx, capacity) else {
                    // The dispatched model still travelled down the
                    // link; the transport charges the downlink.
                    train_timer.stop(env.tracer());
                    return LocalOutcome::failure();
                };
                let sub = pool.prune_plan(fit.index).extract(global);
                let mut net = env.cfg.model.build(&fit.plan, rng);
                net.load_param_map(&sub);
                let data = env.data.client(c);
                let loss = env
                    .cfg
                    .local
                    .train_with_scratch(&mut net, data, rng, &env.scratch);
                let macs = cost_of(
                    &env.cfg.model.full_blueprint(&fit.plan),
                    env.cfg.model.input,
                )
                .macs;
                train_timer.stop(env.tracer());
                if env.tracer().enabled() {
                    env.tracer().event(TraceEvent::ClientTrain {
                        round,
                        client: c,
                        tag: fit.index,
                        loss,
                        samples: data.len(),
                        macs_per_sample: macs,
                    });
                }
                LocalOutcome {
                    upload: Some(Upload {
                        params: net.param_map(),
                        weight: data.len() as f32,
                    }),
                    loss,
                    tag: fit.index,
                    macs_per_sample: macs,
                    samples: data.len(),
                    up_params: fit.params,
                }
            });
            jobs.push(ClientJob {
                client: c,
                tag: m_idx,
                down_params: entry.params,
                run,
            });
        }
        dispatch_timer.stop(env.tracer());

        let exchange = transport.exchange(env, round, jobs, rng);

        // Step 6: consume deliveries — RL return updates, then
        // heterogeneous aggregation of whatever survived the link.
        let collect_timer = PhaseTimer::start(env.tracer(), Phase::Collect);
        let mut uploads = Vec::with_capacity(exchange.deliveries.len());
        let mut returned = 0u64;
        let mut loss_acc = 0.0f32;
        let mut trained = 0usize;
        let mut failures = 0usize;
        for d in exchange.deliveries {
            if env.tracer().enabled() {
                env.tracer().event(TraceEvent::Collect {
                    round,
                    client: d.client,
                    status: status_name(d.status),
                    up_params: if d.status.is_delivered() {
                        d.up_params
                    } else {
                        0
                    },
                });
            }
            if d.status.is_delivered() {
                returned += d.up_params;
                loss_acc += d.loss;
                trained += 1;
                uploads.push(d.upload.expect("delivered upload present"));
                self.rl
                    .update_on_return(pool, d.tag, Some(d.client_tag), d.client);
                if env.tracer().enabled() {
                    env.tracer().event(TraceEvent::RlReturn {
                        round,
                        client: d.client,
                        sent: d.tag,
                        returned: Some(d.client_tag),
                    });
                }
            } else {
                // Resource failures and transport losses (drops, late
                // uploads, crashes) look the same from the server: the
                // dispatched model never came back, so `T_r` records a
                // total failure.
                self.rl.update_on_return(pool, d.tag, None, d.client);
                if env.tracer().enabled() {
                    env.tracer().event(TraceEvent::RlReturn {
                        round,
                        client: d.client,
                        sent: d.tag,
                        returned: None,
                    });
                }
                failures += 1;
            }
        }
        collect_timer.stop(env.tracer());
        let agg_timer = PhaseTimer::start(env.tracer(), Phase::Aggregate);
        aggregate_with_scratch(
            &mut self.global,
            &uploads,
            env.tracer(),
            round,
            &env.scratch,
        );
        agg_timer.stop(env.tracer());

        RoundRecord {
            round,
            sent_params: sent,
            returned_params: returned,
            train_loss: if trained > 0 {
                loss_acc / trained as f32
            } else {
                0.0
            },
            sim_secs: exchange.round_secs,
            failures,
            comm: exchange.stats,
        }
    }

    fn evaluate(&mut self, env: &Env, round: usize) -> EvalRecord {
        let mut levels = Vec::new();
        for rep in env.pool.level_representatives() {
            let sub = env.pool.prune_plan(rep.index).extract(&self.global);
            let mut net = env.cfg.model.build(&rep.plan, &mut env.eval_rng());
            net.load_param_map(&sub);
            levels.push((
                rep.name(),
                evaluate(&mut net, env.data.test(), env.cfg.eval_batch),
            ));
        }
        // Full accuracy = the L_1 (global) model, which is the last rep.
        let full = levels.last().map_or(0.0, |(_, a)| *a);
        EvalRecord {
            round,
            full,
            levels,
        }
    }
}
