//! HeteroFL (Diao et al., ICLR 2021): static *uniform* width pruning —
//! every hidden layer scaled by the same ratio, submodel level fixed by
//! the server's knowledge of each client's capability class.
//!
//! Two deliberate contrasts with AdaptiveFL, both from the papers:
//! the pruning is coarse (no per-layer start index, shallow layers are
//! pruned too), and there is no client-side adaptation — if a client's
//! currently available resources cannot hold its statically assigned
//! submodel, the round fails for that client.

use adaptivefl_device::DeviceClass;
use adaptivefl_models::cost::cost_of;
use adaptivefl_models::{PruneSpec, WidthPlan};
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{aggregate_with_scratch, Upload};
use crate::checkpoint::{Checkpointable, MethodState};
use crate::error::CoreError;
use crate::methods::{sample_clients, trace_client_train, trace_collect, trace_dispatch, FlMethod};
use crate::metrics::{EvalRecord, RoundRecord};
use crate::prune::PrunePlan;
use crate::sim::Env;
use crate::trace::{Phase, PhaseTimer};
use crate::trainer::evaluate;
use crate::transport::{ClientJob, JobFn, LocalOutcome, Transport};

/// Uniform width ratios per level: 1.0× / 0.5× / 0.25× model size,
/// i.e. width ratios 1.0 / √0.5 / 0.5 (params scale ≈ quadratically in
/// width).
const WIDTH_RATIOS: [(&str, f32); 3] = [("S_1", 0.5), ("M_1", 0.707), ("L_1", 1.0)];

/// HeteroFL server state.
pub struct HeteroFl {
    global: ParamMap,
    /// `(name, plan, params, extraction cache)` ascending by size.
    levels: Vec<(String, WidthPlan, u64, PrunePlan)>,
}

impl HeteroFl {
    /// Initialises the global model and the three static submodels.
    pub fn new(env: &Env) -> Self {
        let levels = WIDTH_RATIOS
            .iter()
            .map(|&(name, r)| {
                let plan = if r >= 1.0 {
                    env.cfg.model.full_plan()
                } else {
                    // start_unit = 0: prune every unit (uniform/coarse).
                    env.cfg.model.plan(&PruneSpec::new(r, 0))
                };
                let params = env.cfg.model.num_params(&plan);
                let prune = PrunePlan::new(&env.cfg.model, &plan);
                (name.to_string(), plan, params, prune)
            })
            .collect();
        HeteroFl {
            global: env.fresh_global(),
            levels,
        }
    }

    fn level_for_class(&self, class: DeviceClass) -> usize {
        match class {
            DeviceClass::Weak => 0,
            DeviceClass::Medium => 1,
            DeviceClass::Strong => 2,
        }
    }
}

impl Checkpointable for HeteroFl {
    fn capture(&self) -> MethodState {
        MethodState::single(self.global.clone())
    }

    fn restore(&mut self, state: MethodState) -> Result<(), CoreError> {
        self.global = state.into_single()?;
        Ok(())
    }
}

impl FlMethod for HeteroFl {
    fn name(&self) -> String {
        "HeteroFL".to_string()
    }

    fn round(
        &mut self,
        env: &Env,
        round: usize,
        transport: &mut dyn Transport,
        rng: &mut ChaCha8Rng,
    ) -> RoundRecord {
        let clients = sample_clients(env, round, env.cfg.clients_per_round, rng);
        let mut sent = 0u64;

        let dispatch_timer = PhaseTimer::start(env.tracer(), Phase::Dispatch);
        let global = &self.global;
        let levels = &self.levels;
        let mut jobs: Vec<ClientJob<'_>> = Vec::with_capacity(clients.len());
        for &c in &clients {
            let li = self.level_for_class(env.fleet.device(c).class());
            let params = levels[li].2;
            sent += params;
            trace_dispatch(env, round, c, li, params);
            let run: JobFn<'_> = Box::new(move |rng: &mut ChaCha8Rng| {
                let train_timer = PhaseTimer::start(env.tracer(), Phase::ClientTrain);
                let (_, plan, params, prune) = &levels[li];
                // No client-side adaptation: a resource dip below the
                // assigned size fails the round for this client.
                if env.fleet.device(c).capacity_at(round) < *params {
                    train_timer.stop(env.tracer());
                    return LocalOutcome::failure();
                }
                let sub = prune.extract(global);
                let mut net = env.cfg.model.build(plan, rng);
                net.load_param_map(&sub);
                let data = env.data.client(c);
                let loss = env
                    .cfg
                    .local
                    .train_with_scratch(&mut net, data, rng, &env.scratch);
                let macs = cost_of(&env.cfg.model.full_blueprint(plan), env.cfg.model.input).macs;
                train_timer.stop(env.tracer());
                trace_client_train(env, round, c, li, loss, data.len(), macs);
                LocalOutcome {
                    upload: Some(Upload {
                        params: net.param_map(),
                        weight: data.len() as f32,
                    }),
                    loss,
                    tag: li,
                    macs_per_sample: macs,
                    samples: data.len(),
                    up_params: *params,
                }
            });
            jobs.push(ClientJob {
                client: c,
                tag: li,
                down_params: params,
                run,
            });
        }
        dispatch_timer.stop(env.tracer());

        let exchange = transport.exchange(env, round, jobs, rng);

        let collect_timer = PhaseTimer::start(env.tracer(), Phase::Collect);
        let mut uploads = Vec::new();
        let mut returned = 0u64;
        let mut loss_acc = 0.0;
        let mut trained = 0usize;
        let mut failures = 0usize;
        for d in exchange.deliveries {
            trace_collect(env, round, &d);
            if d.status.is_delivered() {
                returned += d.up_params;
                loss_acc += d.loss;
                trained += 1;
                uploads.push(d.upload.expect("delivered upload present"));
            } else {
                failures += 1;
            }
        }
        collect_timer.stop(env.tracer());
        let agg_timer = PhaseTimer::start(env.tracer(), Phase::Aggregate);
        aggregate_with_scratch(
            &mut self.global,
            &uploads,
            env.tracer(),
            round,
            &env.scratch,
        );
        agg_timer.stop(env.tracer());

        RoundRecord {
            round,
            sent_params: sent,
            returned_params: returned,
            train_loss: if trained > 0 {
                loss_acc / trained as f32
            } else {
                0.0
            },
            sim_secs: exchange.round_secs,
            failures,
            comm: exchange.stats,
        }
    }

    fn evaluate(&mut self, env: &Env, round: usize) -> EvalRecord {
        let mut levels = Vec::new();
        for (name, plan, _, prune) in &self.levels {
            let sub = prune.extract(&self.global);
            let mut net = env.cfg.model.build(plan, &mut env.eval_rng());
            net.load_param_map(&sub);
            levels.push((
                name.clone(),
                evaluate(&mut net, env.data.test(), env.cfg.eval_batch),
            ));
        }
        let full = levels.last().map_or(0.0, |(_, a)| *a);
        EvalRecord {
            round,
            full,
            levels,
        }
    }
}
