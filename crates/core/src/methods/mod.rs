//! The FL methods under study: AdaptiveFL (with its selection-ablation
//! variants) and the four baselines of the paper's §4.2 — All-Large,
//! Decoupled, HeteroFL and ScaleFL.

mod adaptive;
mod all_large;
mod decoupled;
mod heterofl;
mod scalefl;

pub use adaptive::AdaptiveFl;
pub use all_large::AllLarge;
pub use decoupled::Decoupled;
pub use heterofl::HeteroFl;
pub use scalefl::ScaleFl;

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::checkpoint::Checkpointable;
use crate::metrics::{EvalRecord, RoundRecord};
use crate::select::SelectionStrategy;
use crate::sim::Env;
use crate::transport::Transport;

/// A federated-learning method: owns its global model state and plays
/// one round at a time against the shared environment.
///
/// Every method is [`Checkpointable`]: its full server-side state can
/// be frozen into a
/// [`MethodState`](crate::checkpoint::MethodState) and restored later,
/// which is what makes mid-run snapshots and bit-identical resumes
/// possible (see [`Simulation::resume_from`](crate::sim::Simulation)).
pub trait FlMethod: Send + Checkpointable {
    /// Display name used in tables and result files.
    fn name(&self) -> String;

    /// Executes one training round: dispatch client jobs through the
    /// transport, then consume whatever deliveries survived the link.
    fn round(
        &mut self,
        env: &Env,
        round: usize,
        transport: &mut dyn Transport,
        rng: &mut ChaCha8Rng,
    ) -> RoundRecord;

    /// Evaluates the current global model(s) on the environment's test
    /// set: global ("full") accuracy plus per-level submodel
    /// accuracies.
    fn evaluate(&mut self, env: &Env, round: usize) -> EvalRecord;
}

/// Method selector for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodKind {
    /// AdaptiveFL with the full RL selection (`+CS`).
    AdaptiveFl,
    /// AdaptiveFL with a selection-ablation strategy.
    AdaptiveFlVariant(SelectionStrategy),
    /// "AdaptiveFL+Greed": always dispatch the largest model.
    AdaptiveFlGreedy,
    /// FedAvg on the full model with every client (non-resource
    /// reference).
    AllLarge,
    /// Per-level FedAvg without cross-level sharing.
    Decoupled,
    /// Static uniform width pruning (Diao et al.).
    HeteroFl,
    /// Two-dimensional width+depth pruning with early exits and
    /// self-distillation (Ilhan et al.).
    ScaleFl,
}

impl MethodKind {
    /// Instantiates the method's state against an environment.
    pub fn instantiate(self, env: &Env) -> Box<dyn FlMethod> {
        match self {
            MethodKind::AdaptiveFl => Box::new(AdaptiveFl::new(
                env,
                SelectionStrategy::CuriosityAndResource,
                false,
            )),
            MethodKind::AdaptiveFlVariant(s) => Box::new(AdaptiveFl::new(env, s, false)),
            MethodKind::AdaptiveFlGreedy => {
                Box::new(AdaptiveFl::new(env, SelectionStrategy::Random, true))
            }
            MethodKind::AllLarge => Box::new(AllLarge::new(env)),
            MethodKind::Decoupled => Box::new(Decoupled::new(env)),
            MethodKind::HeteroFl => Box::new(HeteroFl::new(env)),
            MethodKind::ScaleFl => Box::new(ScaleFl::new(env)),
        }
    }

    /// All methods compared in the paper's Table 2.
    pub fn table2_lineup() -> [MethodKind; 5] {
        [
            MethodKind::AllLarge,
            MethodKind::Decoupled,
            MethodKind::HeteroFl,
            MethodKind::ScaleFl,
            MethodKind::AdaptiveFl,
        ]
    }
}

impl std::fmt::Display for MethodKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodKind::AdaptiveFl => write!(f, "AdaptiveFL"),
            MethodKind::AdaptiveFlVariant(s) => write!(f, "AdaptiveFL+{s}"),
            MethodKind::AdaptiveFlGreedy => write!(f, "AdaptiveFL+Greed"),
            MethodKind::AllLarge => write!(f, "All-Large"),
            MethodKind::Decoupled => write!(f, "Decoupled"),
            MethodKind::HeteroFl => write!(f, "HeteroFL"),
            MethodKind::ScaleFl => write!(f, "ScaleFL"),
        }
    }
}

/// Samples `k` distinct clients uniformly among those holding data and
/// currently online.
pub(crate) fn sample_clients(env: &Env, round: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    let mut eligible = env.eligible_clients(round);
    eligible.shuffle(rng);
    eligible.truncate(k);
    eligible
}

/// Emits a [`TraceEvent::Dispatch`](crate::trace::TraceEvent) when
/// tracing is enabled.
pub(crate) fn trace_dispatch(env: &Env, round: usize, client: usize, tag: usize, params: u64) {
    if env.tracer().enabled() {
        env.tracer().event(crate::trace::TraceEvent::Dispatch {
            round,
            client,
            tag,
            params,
        });
    }
}

/// Emits a [`TraceEvent::ClientTrain`](crate::trace::TraceEvent) when
/// tracing is enabled (called from inside client jobs, possibly on a
/// transport worker thread).
pub(crate) fn trace_client_train(
    env: &Env,
    round: usize,
    client: usize,
    tag: usize,
    loss: f32,
    samples: usize,
    macs_per_sample: u64,
) {
    if env.tracer().enabled() {
        env.tracer().event(crate::trace::TraceEvent::ClientTrain {
            round,
            client,
            tag,
            loss,
            samples,
            macs_per_sample,
        });
    }
}

/// Emits a [`TraceEvent::Collect`](crate::trace::TraceEvent) for one
/// delivery when tracing is enabled.
pub(crate) fn trace_collect(env: &Env, round: usize, d: &crate::transport::Delivery) {
    if env.tracer().enabled() {
        env.tracer().event(crate::trace::TraceEvent::Collect {
            round,
            client: d.client,
            status: crate::trace::status_name(d.status),
            up_params: if d.status.is_delivered() {
                d.up_params
            } else {
                0
            },
        });
    }
}
