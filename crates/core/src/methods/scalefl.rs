//! ScaleFL (Ilhan et al., CVPR 2023): two-dimensional width+depth
//! scaling with early-exit classifiers and self-distillation during
//! local training.
//!
//! The global model is the full-depth network with every exit head
//! instantiated; level submodels truncate depth (keeping the exit at
//! their last segment) and scale width uniformly. Like HeteroFL, the
//! level assignment is static per capability class and there is no
//! client-side adaptation.

use adaptivefl_device::DeviceClass;
use adaptivefl_models::cost::cost_of;
use adaptivefl_models::{Network, PruneSpec, WidthPlan};
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_nn::ParamMap;
use rand_chacha::ChaCha8Rng;

use crate::aggregate::{aggregate_with_scratch, Upload};
use crate::checkpoint::{Checkpointable, MethodState};
use crate::error::CoreError;
use crate::methods::{sample_clients, trace_client_train, trace_collect, trace_dispatch, FlMethod};
use crate::metrics::{EvalRecord, RoundRecord};
use crate::prune::PrunePlan;
use crate::sim::Env;
use crate::trace::{Phase, PhaseTimer};
use crate::trainer::evaluate;
use crate::transport::{ClientJob, JobFn, LocalOutcome, Transport};

/// Distillation weight of the early exits toward the final exit.
const KD_WEIGHT: f32 = 0.5;
/// Distillation temperature.
const KD_TEMPERATURE: f32 = 2.0;

/// One ScaleFL level: uniform width ratio + kept depth.
struct LevelCfg {
    name: String,
    plan: WidthPlan,
    depth: usize,
    params: u64,
    /// Precomputed extraction table for this level's shape list.
    prune: PrunePlan,
    macs: u64,
}

/// ScaleFL server state.
pub struct ScaleFl {
    global: ParamMap,
    levels: Vec<LevelCfg>,
    max_depth: usize,
}

impl ScaleFl {
    /// Initialises the multi-exit global model and the three level
    /// configurations (width × depth chosen to land near the paper's
    /// 0.25× / 0.5× / 1.0× model-size levels).
    pub fn new(env: &Env) -> Self {
        let cfg = &env.cfg.model;
        let d = cfg.max_depth();
        let combos: [(&str, f32, usize); 3] = [
            ("S_1", 0.60, d.div_ceil(2)),
            ("M_1", 0.80, (3 * d).div_ceil(4)),
            ("L_1", 1.0, d),
        ];
        let levels: Vec<LevelCfg> = combos
            .iter()
            .map(|&(name, r, depth)| {
                let plan = if r >= 1.0 {
                    cfg.full_plan()
                } else {
                    cfg.plan(&PruneSpec::new(r, 0))
                };
                let bp = cfg.blueprint(&plan, depth, true);
                let prune = PrunePlan::from_shapes(&bp.shapes());
                let params = bp.num_params() as u64;
                let macs = cost_of(&bp, cfg.input).macs;
                LevelCfg {
                    name: name.to_string(),
                    plan,
                    depth,
                    params,
                    prune,
                    macs,
                }
            })
            .collect();

        // Global = full width, full depth, all exits.
        let bp = cfg.blueprint(&cfg.full_plan(), d, true);
        let mut rng = adaptivefl_tensor::rng::derived(env.cfg.seed, "scalefl-init");
        let global = Network::build(&bp, &mut rng).param_map();
        ScaleFl {
            global,
            levels,
            max_depth: d,
        }
    }

    fn level_for_class(&self, class: DeviceClass) -> usize {
        match class {
            DeviceClass::Weak => 0,
            DeviceClass::Medium => 1,
            DeviceClass::Strong => 2,
        }
    }
}

impl Checkpointable for ScaleFl {
    fn capture(&self) -> MethodState {
        MethodState::single(self.global.clone())
    }

    fn restore(&mut self, state: MethodState) -> Result<(), CoreError> {
        self.global = state.into_single()?;
        Ok(())
    }
}

impl FlMethod for ScaleFl {
    fn name(&self) -> String {
        "ScaleFL".to_string()
    }

    fn round(
        &mut self,
        env: &Env,
        round: usize,
        transport: &mut dyn Transport,
        rng: &mut ChaCha8Rng,
    ) -> RoundRecord {
        let clients = sample_clients(env, round, env.cfg.clients_per_round, rng);
        let mut sent = 0u64;

        let dispatch_timer = PhaseTimer::start(env.tracer(), Phase::Dispatch);
        let global = &self.global;
        let levels = &self.levels;
        let mut jobs: Vec<ClientJob<'_>> = Vec::with_capacity(clients.len());
        for &c in &clients {
            let li = self.level_for_class(env.fleet.device(c).class());
            let params = levels[li].params;
            sent += params;
            trace_dispatch(env, round, c, li, params);
            let run: JobFn<'_> = Box::new(move |rng: &mut ChaCha8Rng| {
                let train_timer = PhaseTimer::start(env.tracer(), Phase::ClientTrain);
                let level = &levels[li];
                if env.fleet.device(c).capacity_at(round) < level.params {
                    train_timer.stop(env.tracer());
                    return LocalOutcome::failure();
                }
                let sub = level.prune.extract(global);
                let bp = env.cfg.model.blueprint(&level.plan, level.depth, true);
                let mut net = Network::build(&bp, rng);
                net.load_param_map(&sub);
                let data = env.data.client(c);
                let loss = env.cfg.local.train_multi_exit_with_scratch(
                    &mut net,
                    data,
                    KD_WEIGHT,
                    KD_TEMPERATURE,
                    rng,
                    &env.scratch,
                );
                train_timer.stop(env.tracer());
                trace_client_train(env, round, c, li, loss, data.len(), level.macs);
                LocalOutcome {
                    upload: Some(Upload {
                        params: net.param_map(),
                        weight: data.len() as f32,
                    }),
                    loss,
                    tag: li,
                    macs_per_sample: level.macs,
                    samples: data.len(),
                    up_params: level.params,
                }
            });
            jobs.push(ClientJob {
                client: c,
                tag: li,
                down_params: params,
                run,
            });
        }
        dispatch_timer.stop(env.tracer());

        let exchange = transport.exchange(env, round, jobs, rng);

        let collect_timer = PhaseTimer::start(env.tracer(), Phase::Collect);
        let mut uploads = Vec::new();
        let mut returned = 0u64;
        let mut loss_acc = 0.0;
        let mut trained = 0usize;
        let mut failures = 0usize;
        for d in exchange.deliveries {
            trace_collect(env, round, &d);
            if d.status.is_delivered() {
                returned += d.up_params;
                loss_acc += d.loss;
                trained += 1;
                uploads.push(d.upload.expect("delivered upload present"));
            } else {
                failures += 1;
            }
        }
        collect_timer.stop(env.tracer());
        let agg_timer = PhaseTimer::start(env.tracer(), Phase::Aggregate);
        aggregate_with_scratch(
            &mut self.global,
            &uploads,
            env.tracer(),
            round,
            &env.scratch,
        );
        agg_timer.stop(env.tracer());

        RoundRecord {
            round,
            sent_params: sent,
            returned_params: returned,
            train_loss: if trained > 0 {
                loss_acc / trained as f32
            } else {
                0.0
            },
            sim_secs: exchange.round_secs,
            failures,
            comm: exchange.stats,
        }
    }

    fn evaluate(&mut self, env: &Env, round: usize) -> EvalRecord {
        let mut levels = Vec::new();
        for level in &self.levels {
            // Evaluate each level submodel at its own final exit (no
            // aux heads needed for inference).
            let bp = env.cfg.model.blueprint(&level.plan, level.depth, true);
            let sub = level.prune.extract(&self.global);
            let mut net = Network::build(&bp, &mut env.eval_rng());
            net.load_param_map(&sub);
            levels.push((
                level.name.clone(),
                evaluate(&mut net, env.data.test(), env.cfg.eval_batch),
            ));
        }
        // Full accuracy: the complete multi-exit model at the deepest
        // exit.
        let bp = env
            .cfg
            .model
            .blueprint(&env.cfg.model.full_plan(), self.max_depth, true);
        let mut net = Network::build(&bp, &mut env.eval_rng());
        net.load_param_map(&self.global);
        let full = evaluate(&mut net, env.data.test(), env.cfg.eval_batch);
        EvalRecord {
            round,
            full,
            levels,
        }
    }
}
