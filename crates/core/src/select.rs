//! Client-selection strategies: the RL policy of §3.3 and the ablation
//! variants of §4.4 (+Greed, +Random, +C, +S, +CS).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::pool::ModelPool;
use crate::rl::RlState;

/// Which reward terms drive selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Uniform random client per model ("AdaptiveFL+Random").
    Random,
    /// Curiosity reward only ("AdaptiveFL+C").
    CuriosityOnly,
    /// Resource reward only ("AdaptiveFL+S").
    ResourceOnly,
    /// Full reward `min(0.5, R_s)·R_c` ("AdaptiveFL+CS", the default).
    CuriosityAndResource,
}

impl std::fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SelectionStrategy::Random => "Random",
            SelectionStrategy::CuriosityOnly => "C",
            SelectionStrategy::ResourceOnly => "S",
            SelectionStrategy::CuriosityAndResource => "CS",
        };
        f.write_str(s)
    }
}

/// Per-client selection weight under a strategy.
fn weight(
    strategy: SelectionStrategy,
    rl: &RlState,
    pool: &ModelPool,
    pool_index: usize,
    client: usize,
) -> f64 {
    let level = pool.entry(pool_index).level;
    match strategy {
        SelectionStrategy::Random => 1.0,
        SelectionStrategy::CuriosityOnly => rl.curiosity_reward(level, client),
        SelectionStrategy::ResourceOnly => rl.resource_reward(pool, pool_index, client).min(0.5),
        SelectionStrategy::CuriosityAndResource => rl.reward(pool, pool_index, client),
    }
}

/// Selects a client for the model at `pool_index` among `eligible`
/// clients, sampling proportionally to the strategy's reward
/// (`P(m_i, c) = R(m_i, c) / Σ_j R(m_i, j)`); clients with zero reward
/// are never selected unless every eligible client has zero reward, in
/// which case selection falls back to uniform.
///
/// Returns `None` when `eligible` is empty.
pub fn select_client(
    strategy: SelectionStrategy,
    rl: &RlState,
    pool: &ModelPool,
    pool_index: usize,
    eligible: &[usize],
    rng: &mut impl Rng,
) -> Option<usize> {
    if eligible.is_empty() {
        return None;
    }
    let weights: Vec<f64> = eligible
        .iter()
        .map(|&c| weight(strategy, rl, pool, pool_index, c).max(0.0))
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // All rewards zero: uniform fallback.
        return Some(eligible[rng.gen_range(0..eligible.len())]);
    }
    let mut draw = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return Some(eligible[i]);
        }
    }
    Some(*eligible.last().expect("non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::DEFAULT_RATIOS;
    use adaptivefl_models::ModelConfig;
    use adaptivefl_tensor::rng;

    fn setup() -> (ModelPool, RlState) {
        let pool = ModelPool::split(&ModelConfig::tiny(10), 3, DEFAULT_RATIOS);
        let rl = RlState::new(pool.p(), 4);
        (pool, rl)
    }

    #[test]
    fn empty_eligible_returns_none() {
        let (pool, rl) = setup();
        let mut r = rng::seeded(60);
        assert!(select_client(
            SelectionStrategy::CuriosityAndResource,
            &rl,
            &pool,
            0,
            &[],
            &mut r
        )
        .is_none());
    }

    #[test]
    fn selection_respects_eligibility() {
        let (pool, rl) = setup();
        let mut r = rng::seeded(61);
        for _ in 0..50 {
            let c = select_client(SelectionStrategy::Random, &rl, &pool, 0, &[1, 3], &mut r)
                .expect("eligible non-empty");
            assert!(c == 1 || c == 3);
        }
    }

    #[test]
    fn strong_clients_attract_large_models() {
        let (pool, mut rl) = setup();
        let l1 = pool.len() - 1;
        // Client 0 succeeds on L_1 repeatedly; client 1 always prunes
        // down to the smallest model.
        for _ in 0..10 {
            rl.update_on_return(&pool, l1, Some(l1), 0);
            rl.update_on_return(&pool, l1, Some(0), 1);
        }
        let mut r = rng::seeded(62);
        let mut count0 = 0;
        for _ in 0..200 {
            if select_client(
                SelectionStrategy::ResourceOnly,
                &rl,
                &pool,
                l1,
                &[0, 1],
                &mut r,
            ) == Some(0)
            {
                count0 += 1;
            }
        }
        assert!(count0 > 150, "strong client selected only {count0}/200");
    }

    #[test]
    fn curiosity_balances_selection_counts() {
        let (pool, mut rl) = setup();
        // Client 0 has been selected for Small models many times.
        for _ in 0..20 {
            rl.update_on_dispatch(crate::pool::Level::Small, 0);
        }
        let mut r = rng::seeded(63);
        let mut count1 = 0;
        for _ in 0..200 {
            if select_client(
                SelectionStrategy::CuriosityOnly,
                &rl,
                &pool,
                0,
                &[0, 1],
                &mut r,
            ) == Some(1)
            {
                count1 += 1;
            }
        }
        assert!(
            count1 > 140,
            "under-selected client picked only {count1}/200"
        );
    }

    #[test]
    fn zero_reward_falls_back_to_uniform() {
        let (pool, mut rl) = setup();
        // Zero out every score for both clients via total failures.
        rl.update_on_return(&pool, 0, None, 0);
        rl.update_on_return(&pool, 0, None, 1);
        let mut r = rng::seeded(64);
        let c = select_client(
            SelectionStrategy::ResourceOnly,
            &rl,
            &pool,
            3,
            &[0, 1],
            &mut r,
        );
        assert!(c.is_some());
    }
}
