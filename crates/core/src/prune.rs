//! Nested parameter extraction — the width-wise pruning
//! `W^k_{r_w} = W^k_g[:d_k·r_w][:n_k·r_w]` of paper §3.2, applied map-wide.

use adaptivefl_models::{ModelConfig, WidthPlan};
use adaptivefl_nn::{ParamKind, ParamMap};
use adaptivefl_tensor::SliceSpec;

/// A precomputed extraction table for one submodel configuration: the
/// per-parameter prefix [`SliceSpec`]s of the paper's §3.2 width-wise
/// pruning.
///
/// Building the table walks the model blueprint (expensive); extracting
/// with it is a flat loop over cached specs. The `2p+1` pool
/// configurations are fixed for a run, so [`crate::pool::ModelPool`]
/// builds one plan per entry at construction instead of rebuilding the
/// shape table per client dispatch.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PrunePlan {
    specs: Vec<(String, SliceSpec)>,
}

impl PrunePlan {
    /// Precomputes the extraction table for a width plan.
    pub fn new(cfg: &ModelConfig, plan: &WidthPlan) -> Self {
        Self::from_shapes(&cfg.shapes(plan))
    }

    /// Precomputes the table from an explicit shape list (used for
    /// ScaleFL's depth-scaled multi-exit submodels).
    pub fn from_shapes(shapes: &[(String, Vec<usize>, ParamKind)]) -> Self {
        PrunePlan {
            specs: shapes
                .iter()
                .map(|(name, shape, _)| (name.clone(), SliceSpec::new(shape.clone())))
                .collect(),
        }
    }

    /// Number of parameters in the submodel.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when the plan extracts nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Total extracted element count (the `size(·)` of the paper).
    pub fn numel(&self) -> usize {
        self.specs.iter().map(|(_, s)| s.numel()).sum()
    }

    /// Extracts the submodel from the full global map.
    ///
    /// # Panics
    ///
    /// Panics if the global map is missing a parameter or a cached
    /// shape does not nest inside the global shape.
    pub fn extract(&self, global: &ParamMap) -> ParamMap {
        let mut out = ParamMap::new();
        for (name, spec) in &self.specs {
            let full = global
                .get(name)
                .unwrap_or_else(|| panic!("global model missing parameter {name}"));
            assert!(
                spec.fits_in(full.shape()),
                "plan shape {spec} does not nest in global {:?} for {name}",
                full.shape()
            );
            out.insert(name.clone(), spec.extract(full));
        }
        out
    }
}

/// Extracts the submodel parameters for `plan` from a full global
/// parameter map by prefix-slicing every named tensor to the plan's
/// shape table.
///
/// Builds a throwaway [`PrunePlan`]; hot paths should extract through a
/// cached plan (see [`crate::pool::ModelPool::prune_plan`]).
///
/// # Panics
///
/// Panics if the global map is missing a parameter or a plan shape does
/// not fit inside the global shape (i.e. the plan is not nested).
pub fn extract_submodel(global: &ParamMap, cfg: &ModelConfig, plan: &WidthPlan) -> ParamMap {
    PrunePlan::new(cfg, plan).extract(global)
}

/// Extracts parameters by an explicit shape table (used for ScaleFL's
/// depth-scaled multi-exit submodels).
///
/// # Panics
///
/// See [`extract_submodel`].
pub fn extract_by_shapes(
    global: &ParamMap,
    shapes: &[(String, Vec<usize>, ParamKind)],
) -> ParamMap {
    PrunePlan::from_shapes(shapes).extract(global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{ModelPool, DEFAULT_RATIOS};
    use adaptivefl_models::ModelConfig;
    use adaptivefl_nn::layer::LayerExt;
    use adaptivefl_tensor::rng;

    #[test]
    fn extracted_size_matches_pool_entry() {
        let cfg = ModelConfig::tiny(10);
        let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
        let mut r = rng::seeded(50);
        let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
        for e in pool.entries() {
            let sub = extract_submodel(&global, &cfg, &e.plan);
            assert_eq!(sub.numel() as u64, e.params, "{}", e.name());
        }
    }

    #[test]
    fn extraction_is_prefix_consistent() {
        // The S model's weights must be the leading block of the L
        // model's weights.
        let cfg = ModelConfig::tiny(10);
        let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
        let mut r = rng::seeded(51);
        let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
        let small = extract_submodel(&global, &cfg, &pool.entry(0).plan);
        for (name, t) in small.iter() {
            let full = global.get(name).expect("name exists");
            let spec = SliceSpec::new(t.shape().to_vec());
            assert_eq!(&spec.extract(full), t, "{name}");
        }
    }

    #[test]
    fn extracted_submodel_loads_into_network() {
        let cfg = ModelConfig::tiny(10);
        let pool = ModelPool::split(&cfg, 2, DEFAULT_RATIOS);
        let mut r = rng::seeded(52);
        let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
        let e = pool.entry(1);
        let sub = extract_submodel(&global, &cfg, &e.plan);
        let mut net = cfg.build(&e.plan, &mut r);
        net.load_param_map(&sub); // panics on any shape mismatch
        assert_eq!(net.param_map(), sub);
    }

    #[test]
    fn every_pool_entry_extracts_for_every_family() {
        // Regression test: residual families must never produce a pool
        // entry whose boundary block introduces parameters (projection
        // shortcuts) absent from the full global model.
        for cfg in [
            ModelConfig::vgg16_fast(10),
            ModelConfig::resnet18_fast(10),
            ModelConfig::mobilenet_v2_fast(10),
            ModelConfig::tiny(10),
        ] {
            let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
            let mut r = rng::seeded(53);
            let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
            for e in pool.entries() {
                let sub = extract_submodel(&global, &cfg, &e.plan);
                assert_eq!(sub.numel() as u64, e.params, "{:?} {}", cfg.kind, e.name());
            }
        }
    }

    #[test]
    fn cached_plan_matches_fresh_extraction() {
        let cfg = ModelConfig::tiny(10);
        let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
        let mut r = rng::seeded(54);
        let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
        for e in pool.entries() {
            let cached = pool.prune_plan(e.index);
            assert_eq!(cached.numel() as u64, e.params, "{}", e.name());
            assert_eq!(
                cached.extract(&global),
                extract_submodel(&global, &cfg, &e.plan),
                "{}",
                e.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "missing parameter")]
    fn missing_param_panics() {
        let cfg = ModelConfig::tiny(10);
        let global = ParamMap::new();
        extract_submodel(&global, &cfg, &cfg.full_plan());
    }
}
