//! Uplink/downlink model compression for communication accounting.
//!
//! The paper measures communication in dispatched/returned model sizes;
//! real AIoT deployments additionally quantise the transmitted weights.
//! This module provides a linear int8 quantiser over [`ParamMap`]s with
//! exact byte accounting, so the communication-waste experiments can be
//! re-run under compressed transport (the rates scale uniformly, which
//! is why the paper's rate metric is unaffected by the choice).

use adaptivefl_nn::ParamMap;
use adaptivefl_tensor::Tensor;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// A per-tensor linearly quantised (int8) parameter map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMap {
    entries: Vec<QuantizedTensor>,
}

/// One tensor stored as int8 codes with a per-tensor scale/offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuantizedTensor {
    name: String,
    shape: Vec<usize>,
    /// Dequantised value = `offset + scale · code`.
    scale: f32,
    offset: f32,
    codes: Vec<i8>,
}

impl QuantizedMap {
    /// Quantises every tensor of `map` to int8 with a per-tensor affine
    /// range fit (min–max).
    pub fn quantize(map: &ParamMap) -> Self {
        let entries = map
            .iter()
            .map(|(name, t)| {
                let (lo, hi) = t
                    .as_slice()
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                let (lo, hi) = if lo.is_finite() && hi.is_finite() && hi > lo {
                    (lo, hi)
                } else {
                    (0.0, 1.0)
                };
                let scale = (hi - lo) / 254.0;
                let offset = (hi + lo) / 2.0;
                let codes = t
                    .as_slice()
                    .iter()
                    .map(|&v| (((v - offset) / scale).round().clamp(-127.0, 127.0)) as i8)
                    .collect();
                QuantizedTensor {
                    name: name.to_string(),
                    shape: t.shape().to_vec(),
                    scale,
                    offset,
                    codes,
                }
            })
            .collect();
        QuantizedMap { entries }
    }

    /// Reconstructs the (lossy) parameter map.
    pub fn dequantize(&self) -> ParamMap {
        self.entries
            .iter()
            .map(|e| {
                let data = e
                    .codes
                    .iter()
                    .map(|&c| e.offset + e.scale * c as f32)
                    .collect();
                (e.name.clone(), Tensor::from_vec(data, &e.shape))
            })
            .collect()
    }

    /// Transport size in bytes: one code per element plus the per-tensor
    /// header (name, shape, scale, offset).
    pub fn byte_size(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.codes.len() + e.name.len() + e.shape.len() * 8 + 8)
            .sum()
    }

    /// Serialises to a length-prefixed binary frame (the shape an
    /// uplink packet would take).
    pub fn to_frame(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u16(e.name.len() as u16);
            buf.put_slice(e.name.as_bytes());
            buf.put_u8(e.shape.len() as u8);
            for &d in &e.shape {
                buf.put_u32(d as u32);
            }
            buf.put_f32(e.scale);
            buf.put_f32(e.offset);
            buf.put_u32(e.codes.len() as u32);
            for &c in &e.codes {
                buf.put_i8(c);
            }
        }
        buf.freeze()
    }

    /// Parses a frame produced by [`QuantizedMap::to_frame`].
    ///
    /// Never panics: truncated or corrupt frames return
    /// [`CoreError::MalformedFrame`], which transports treat as a lost
    /// upload.
    pub fn from_frame(frame: &[u8]) -> Result<Self, CoreError> {
        let mut r = FrameReader::new(frame);
        let count = r.u32()? as usize;
        let mut entries = Vec::new();
        for _ in 0..count {
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.bytes(name_len)?.to_vec())
                .map_err(|_| CoreError::MalformedFrame("non-utf8 tensor name".into()))?;
            let ndim = r.u8()? as usize;
            let mut shape = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                shape.push(r.u32()? as usize);
            }
            let scale = f32::from_bits(r.u32()?);
            let offset = f32::from_bits(r.u32()?);
            let n_codes = r.u32()? as usize;
            let numel: usize = shape.iter().product();
            if numel != n_codes {
                return Err(CoreError::MalformedFrame(format!(
                    "{name}: {n_codes} codes for shape {shape:?}"
                )));
            }
            let codes = r.bytes(n_codes)?.iter().map(|&b| b as i8).collect();
            entries.push(QuantizedTensor {
                name,
                shape,
                scale,
                offset,
                codes,
            });
        }
        if !r.is_empty() {
            return Err(CoreError::MalformedFrame(
                "trailing bytes after frame".into(),
            ));
        }
        Ok(QuantizedMap { entries })
    }

    /// Worst-case absolute reconstruction error of the quantiser for a
    /// given map (half a quantisation step per tensor, maximised).
    pub fn max_error_bound(map: &ParamMap) -> f32 {
        map.iter()
            .map(|(_, t)| {
                let (lo, hi) = t
                    .as_slice()
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                if hi > lo {
                    (hi - lo) / 254.0
                } else {
                    0.0
                }
            })
            .fold(0.0, f32::max)
    }
}

/// A bounds-checked big-endian frame reader: every read returns
/// [`CoreError::MalformedFrame`] on underflow instead of panicking,
/// so decoders can safely consume frames truncated in transit.
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Wraps a byte slice for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the frame is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.remaining() < n {
            return Err(CoreError::MalformedFrame(format!(
                "frame truncated: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CoreError> {
        let b = self.bytes(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CoreError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CoreError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::{init, rng};

    fn sample_map() -> ParamMap {
        let mut r = rng::seeded(80);
        let mut m = ParamMap::new();
        m.insert("conv.weight", init::normal(&[8, 4, 3, 3], 0.2, &mut r));
        m.insert("conv.bias", Tensor::zeros(&[8]));
        m
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let m = sample_map();
        let q = QuantizedMap::quantize(&m);
        let back = q.dequantize();
        let bound = QuantizedMap::max_error_bound(&m);
        for (name, t) in m.iter() {
            let r = back.get(name).expect("name preserved");
            for (a, b) in t.as_slice().iter().zip(r.as_slice()) {
                assert!((a - b).abs() <= bound * 0.51 + 1e-6, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn compression_is_near_4x() {
        let m = sample_map();
        let q = QuantizedMap::quantize(&m);
        let dense = m.byte_size();
        let packed = q.byte_size();
        assert!(packed * 3 < dense, "only {dense}→{packed} bytes");
    }

    #[test]
    fn constant_tensor_quantizes_exactly() {
        let mut m = ParamMap::new();
        m.insert("b", Tensor::full(&[16], 0.25));
        let back = QuantizedMap::quantize(&m).dequantize();
        // A constant tensor has zero range; the fallback range must
        // still reconstruct within the error bound of the unit range.
        let v = back.get("b").unwrap().as_slice()[0];
        assert!((v - 0.25).abs() < 1.0 / 254.0 + 1e-6, "{v}");
    }

    #[test]
    fn frame_contains_all_codes() {
        let m = sample_map();
        let q = QuantizedMap::quantize(&m);
        let frame = q.to_frame();
        assert!(frame.len() >= m.numel());
        assert!(frame.len() < m.byte_size());
    }

    #[test]
    fn frame_roundtrips() {
        let q = QuantizedMap::quantize(&sample_map());
        let frame = q.to_frame();
        let back = QuantizedMap::from_frame(&frame).expect("intact frame decodes");
        assert_eq!(q, back);
    }

    #[test]
    fn truncated_frames_error_not_panic() {
        let q = QuantizedMap::quantize(&sample_map());
        let frame = q.to_frame();
        for cut in [0, 1, 3, 7, frame.len() / 2, frame.len() - 1] {
            let r = QuantizedMap::from_frame(&frame[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded");
        }
        // Trailing garbage is rejected too.
        let mut long = frame.to_vec();
        long.push(0);
        assert!(QuantizedMap::from_frame(&long).is_err());
    }

    #[test]
    fn quantized_upload_still_aggregates() {
        // End-to-end: quantise an upload, dequantise, aggregate — the
        // global model moves toward the upload within quantiser error.
        use crate::aggregate::{aggregate, Upload};
        let mut global = ParamMap::new();
        global.insert("w", Tensor::zeros(&[4]));
        let mut upload = ParamMap::new();
        upload.insert("w", Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[4]));
        let q = QuantizedMap::quantize(&upload).dequantize();
        aggregate(
            &mut global,
            &[Upload {
                params: q,
                weight: 1.0,
            }],
        );
        let g = global.get("w").unwrap();
        assert!((g.as_slice()[3] - 0.4).abs() < 0.01);
    }
}
