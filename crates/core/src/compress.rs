//! Uplink/downlink model compression for communication accounting.
//!
//! The paper measures communication in dispatched/returned model sizes;
//! real AIoT deployments additionally quantise the transmitted weights.
//! This module provides a linear int8 quantiser over [`ParamMap`]s with
//! exact byte accounting, so the communication-waste experiments can be
//! re-run under compressed transport (the rates scale uniformly, which
//! is why the paper's rate metric is unaffected by the choice).

use adaptivefl_nn::ParamMap;
use adaptivefl_tensor::Tensor;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A per-tensor linearly quantised (int8) parameter map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMap {
    entries: Vec<QuantizedTensor>,
}

/// One tensor stored as int8 codes with a per-tensor scale/offset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QuantizedTensor {
    name: String,
    shape: Vec<usize>,
    /// Dequantised value = `offset + scale · code`.
    scale: f32,
    offset: f32,
    codes: Vec<i8>,
}

impl QuantizedMap {
    /// Quantises every tensor of `map` to int8 with a per-tensor affine
    /// range fit (min–max).
    pub fn quantize(map: &ParamMap) -> Self {
        let entries = map
            .iter()
            .map(|(name, t)| {
                let (lo, hi) = t
                    .as_slice()
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                let (lo, hi) = if lo.is_finite() && hi.is_finite() && hi > lo {
                    (lo, hi)
                } else {
                    (0.0, 1.0)
                };
                let scale = (hi - lo) / 254.0;
                let offset = (hi + lo) / 2.0;
                let codes = t
                    .as_slice()
                    .iter()
                    .map(|&v| (((v - offset) / scale).round().clamp(-127.0, 127.0)) as i8)
                    .collect();
                QuantizedTensor {
                    name: name.to_string(),
                    shape: t.shape().to_vec(),
                    scale,
                    offset,
                    codes,
                }
            })
            .collect();
        QuantizedMap { entries }
    }

    /// Reconstructs the (lossy) parameter map.
    pub fn dequantize(&self) -> ParamMap {
        self.entries
            .iter()
            .map(|e| {
                let data = e
                    .codes
                    .iter()
                    .map(|&c| e.offset + e.scale * c as f32)
                    .collect();
                (e.name.clone(), Tensor::from_vec(data, &e.shape))
            })
            .collect()
    }

    /// Transport size in bytes: one code per element plus the per-tensor
    /// header (name, shape, scale, offset).
    pub fn byte_size(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.codes.len() + e.name.len() + e.shape.len() * 8 + 8)
            .sum()
    }

    /// Serialises to a length-prefixed binary frame (the shape an
    /// uplink packet would take).
    pub fn to_frame(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            buf.put_u16(e.name.len() as u16);
            buf.put_slice(e.name.as_bytes());
            buf.put_u8(e.shape.len() as u8);
            for &d in &e.shape {
                buf.put_u32(d as u32);
            }
            buf.put_f32(e.scale);
            buf.put_f32(e.offset);
            buf.put_u32(e.codes.len() as u32);
            for &c in &e.codes {
                buf.put_i8(c);
            }
        }
        buf.freeze()
    }

    /// Worst-case absolute reconstruction error of the quantiser for a
    /// given map (half a quantisation step per tensor, maximised).
    pub fn max_error_bound(map: &ParamMap) -> f32 {
        map.iter()
            .map(|(_, t)| {
                let (lo, hi) = t
                    .as_slice()
                    .iter()
                    .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                if hi > lo {
                    (hi - lo) / 254.0
                } else {
                    0.0
                }
            })
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::{init, rng};

    fn sample_map() -> ParamMap {
        let mut r = rng::seeded(80);
        let mut m = ParamMap::new();
        m.insert("conv.weight", init::normal(&[8, 4, 3, 3], 0.2, &mut r));
        m.insert("conv.bias", Tensor::zeros(&[8]));
        m
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let m = sample_map();
        let q = QuantizedMap::quantize(&m);
        let back = q.dequantize();
        let bound = QuantizedMap::max_error_bound(&m);
        for (name, t) in m.iter() {
            let r = back.get(name).expect("name preserved");
            for (a, b) in t.as_slice().iter().zip(r.as_slice()) {
                assert!((a - b).abs() <= bound * 0.51 + 1e-6, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn compression_is_near_4x() {
        let m = sample_map();
        let q = QuantizedMap::quantize(&m);
        let dense = m.byte_size();
        let packed = q.byte_size();
        assert!(packed * 3 < dense, "only {dense}→{packed} bytes");
    }

    #[test]
    fn constant_tensor_quantizes_exactly() {
        let mut m = ParamMap::new();
        m.insert("b", Tensor::full(&[16], 0.25));
        let back = QuantizedMap::quantize(&m).dequantize();
        // A constant tensor has zero range; the fallback range must
        // still reconstruct within the error bound of the unit range.
        let v = back.get("b").unwrap().as_slice()[0];
        assert!((v - 0.25).abs() < 1.0 / 254.0 + 1e-6, "{v}");
    }

    #[test]
    fn frame_contains_all_codes() {
        let m = sample_map();
        let q = QuantizedMap::quantize(&m);
        let frame = q.to_frame();
        assert!(frame.len() >= m.numel());
        assert!(frame.len() < m.byte_size());
    }

    #[test]
    fn quantized_upload_still_aggregates() {
        // End-to-end: quantise an upload, dequantise, aggregate — the
        // global model moves toward the upload within quantiser error.
        use crate::aggregate::{aggregate, Upload};
        let mut global = ParamMap::new();
        global.insert("w", Tensor::zeros(&[4]));
        let mut upload = ParamMap::new();
        upload.insert("w", Tensor::from_vec(vec![0.1, -0.2, 0.3, 0.4], &[4]));
        let q = QuantizedMap::quantize(&upload).dequantize();
        aggregate(&mut global, &[Upload { params: q, weight: 1.0 }]);
        let g = global.get("w").unwrap();
        assert!((g.as_slice()[3] - 0.4).abs() < 0.01);
    }
}
