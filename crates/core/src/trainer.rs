//! Local training (Step 4 of the paper's workflow) and model
//! evaluation.

use adaptivefl_data::InMemoryDataset;
use adaptivefl_models::Network;
use adaptivefl_nn::layer::{Layer, LayerExt};
use adaptivefl_nn::loss::{distillation_loss, softmax_cross_entropy};
use adaptivefl_nn::metrics::{accuracy, RunningMean};
use adaptivefl_nn::optim::Sgd;
use adaptivefl_tensor::Scratch;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Local SGD hyper-parameters — paper §4: lr 0.01, momentum 0.5, batch
/// size 50, 5 local epochs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalTrainer {
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Local epochs per round.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// FedProx proximal coefficient µ: adds `µ(w − w_global)` to every
    /// trainable gradient, anchoring local training to the received
    /// model (0 disables; an extension beyond the paper, useful under
    /// strong non-IID skew).
    #[serde(default)]
    pub prox_mu: f32,
}

impl LocalTrainer {
    /// The paper's hyper-parameters (lr 0.01, momentum 0.5, batch 50,
    /// 5 epochs).
    pub fn paper() -> Self {
        LocalTrainer {
            lr: 0.01,
            momentum: 0.5,
            epochs: 5,
            batch_size: 50,
            prox_mu: 0.0,
        }
    }

    /// Faster settings for reduced-scale experiments.
    pub fn fast() -> Self {
        LocalTrainer {
            lr: 0.03,
            momentum: 0.5,
            epochs: 2,
            batch_size: 16,
            prox_mu: 0.0,
        }
    }

    /// Builder-style FedProx coefficient.
    pub fn with_prox(mut self, mu: f32) -> Self {
        self.prox_mu = mu;
        self
    }

    /// Adds the proximal gradient `µ(w − anchor)` to every trainable
    /// parameter's gradient.
    fn apply_prox(&self, net: &mut Network, anchor: &adaptivefl_nn::ParamMap) {
        if self.prox_mu == 0.0 {
            return;
        }
        let mu = self.prox_mu;
        net.visit_params_mut(
            "",
            &mut |name: &str,
                  kind: adaptivefl_nn::ParamKind,
                  value: &mut adaptivefl_tensor::Tensor,
                  grad: &mut adaptivefl_tensor::Tensor| {
                if !kind.is_trainable() {
                    return;
                }
                if let Some(a) = anchor.get(name) {
                    for ((g, &w), &w0) in grad
                        .as_mut_slice()
                        .iter_mut()
                        .zip(value.as_slice())
                        .zip(a.as_slice())
                    {
                        *g += mu * (w - w0);
                    }
                }
            },
        );
    }

    /// Trains the network on a client shard with plain cross-entropy
    /// (single exit); returns the mean training loss.
    ///
    /// Optimizer buffers come from a private arena; use
    /// [`LocalTrainer::train_with_scratch`] to share one across
    /// sessions. The results are bit-identical either way.
    pub fn train(&self, net: &mut Network, data: &InMemoryDataset, rng: &mut impl Rng) -> f32 {
        self.train_with_scratch(net, data, rng, &Scratch::new())
    }

    /// [`LocalTrainer::train`] with an explicit scratch arena for the
    /// optimizer's momentum and weight-decay buffers, so repeated
    /// training sessions reuse them instead of reallocating per
    /// parameter per session.
    pub fn train_with_scratch(
        &self,
        net: &mut Network,
        data: &InMemoryDataset,
        rng: &mut impl Rng,
        scratch: &Scratch,
    ) -> f32 {
        let mut opt = Sgd::new(self.lr, self.momentum).with_scratch(scratch.clone());
        let mut loss = RunningMean::new();
        let anchor = (self.prox_mu > 0.0).then(|| net.param_map());
        for _ in 0..self.epochs {
            for batch in data.shuffled_batches(self.batch_size, rng) {
                net.zero_grads();
                let logits = net.forward(batch.x, true);
                let out = softmax_cross_entropy(&logits, &batch.y);
                let _ = net.backward(out.dlogits);
                if let Some(a) = &anchor {
                    self.apply_prox(net, a);
                }
                opt.step(net);
                loss.add(out.loss, batch.y.len() as f32);
            }
        }
        loss.mean()
    }

    /// ScaleFL-style multi-exit local training: cross-entropy at every
    /// active exit plus self-distillation (temperature-scaled KL) from
    /// the final exit into each earlier exit. Returns the mean combined
    /// loss.
    pub fn train_multi_exit(
        &self,
        net: &mut Network,
        data: &InMemoryDataset,
        kd_weight: f32,
        kd_temperature: f32,
        rng: &mut impl Rng,
    ) -> f32 {
        self.train_multi_exit_with_scratch(
            net,
            data,
            kd_weight,
            kd_temperature,
            rng,
            &Scratch::new(),
        )
    }

    /// [`LocalTrainer::train_multi_exit`] with an explicit scratch
    /// arena (see [`LocalTrainer::train_with_scratch`]).
    #[allow(clippy::too_many_arguments)]
    pub fn train_multi_exit_with_scratch(
        &self,
        net: &mut Network,
        data: &InMemoryDataset,
        kd_weight: f32,
        kd_temperature: f32,
        rng: &mut impl Rng,
        scratch: &Scratch,
    ) -> f32 {
        let mut opt = Sgd::new(self.lr, self.momentum).with_scratch(scratch.clone());
        let mut loss = RunningMean::new();
        for _ in 0..self.epochs {
            for batch in data.shuffled_batches(self.batch_size, rng) {
                net.zero_grads();
                let outs = net.forward_multi(batch.x, true);
                let (last_exit, final_logits) = outs
                    .last()
                    .map(|(e, l)| (*e, l.clone()))
                    .expect("final exit");
                let mut total = 0.0f32;
                let mut grads = Vec::with_capacity(outs.len());
                for (e, logits) in outs {
                    let ce = softmax_cross_entropy(&logits, &batch.y);
                    total += ce.loss;
                    let mut g = ce.dlogits;
                    if e != last_exit && kd_weight > 0.0 {
                        let kd = distillation_loss(&logits, &final_logits, kd_temperature);
                        total += kd_weight * kd.loss;
                        g.axpy(kd_weight, &kd.dlogits);
                    }
                    grads.push((e, g));
                }
                let _ = net.backward_multi(grads);
                opt.step(net);
                loss.add(total, batch.y.len() as f32);
            }
        }
        loss.mean()
    }
}

/// Evaluates top-1 accuracy of a network on a dataset, batched to bound
/// memory.
///
/// Evaluation runs the network in training mode so batch-norm uses
/// *batch statistics* — the static-BN (sBN) convention of HeteroFL-style
/// systems. Aggregating running statistics across submodels of
/// different widths poisons them (each width sees different activation
/// distributions), which otherwise cripples deep BN models; every
/// method is evaluated the same way.
pub fn evaluate(net: &mut Network, data: &InMemoryDataset, batch_size: usize) -> f32 {
    let mut acc = RunningMean::new();
    let n = data.len();
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let b = data.batch(&idx);
        let logits = net.forward(b.x, true);
        acc.add(accuracy(&logits, &b.y), b.y.len() as f32);
        start = end;
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_data::{FederatedDataset, Partition, SynthSpec};
    use adaptivefl_models::ModelConfig;
    use adaptivefl_tensor::rng;

    #[test]
    fn training_reduces_loss_and_lifts_accuracy() {
        let fed =
            FederatedDataset::synthesize(&SynthSpec::test_spec(4), 1, 60, 60, Partition::Iid, 70);
        let cfg = ModelConfig {
            kind: adaptivefl_models::ModelKind::TinyCnn,
            input: (3, 8, 8),
            classes: 4,
            width_mult: 1.0,
        };
        let mut r = rng::seeded(71);
        let mut net = cfg.build(&cfg.full_plan(), &mut r);
        let trainer = LocalTrainer {
            lr: 0.05,
            momentum: 0.9,
            epochs: 8,
            batch_size: 16,
            prox_mu: 0.0,
        };
        let before = evaluate(&mut net, fed.test(), 32);
        let loss1 = trainer.train(&mut net, fed.client(0), &mut r);
        let loss2 = trainer.train(&mut net, fed.client(0), &mut r);
        let after = evaluate(&mut net, fed.test(), 32);
        assert!(loss2 < loss1, "loss did not decrease: {loss1} → {loss2}");
        assert!(after > before + 0.15, "accuracy {before} → {after}");
    }

    #[test]
    fn multi_exit_training_improves_all_exits() {
        let fed =
            FederatedDataset::synthesize(&SynthSpec::test_spec(4), 1, 60, 60, Partition::Iid, 72);
        let cfg = ModelConfig {
            kind: adaptivefl_models::ModelKind::TinyCnn,
            input: (3, 8, 8),
            classes: 4,
            width_mult: 1.0,
        };
        let bp = cfg.blueprint(&cfg.full_plan(), 3, true);
        let mut r = rng::seeded(73);
        let mut net = adaptivefl_models::Network::build(&bp, &mut r);
        // Three exits triple the trunk gradient, so use a gentler lr
        // than the single-exit test.
        let trainer = LocalTrainer {
            lr: 0.02,
            momentum: 0.5,
            epochs: 12,
            batch_size: 16,
            prox_mu: 0.0,
        };
        let loss = trainer.train_multi_exit(&mut net, fed.client(0), 0.5, 2.0, &mut r);
        assert!(loss.is_finite());
        // Final-exit accuracy should be clearly above chance (0.25).
        let b = fed.test().full_batch();
        let outs = net.forward_multi(b.x, false);
        let (_, final_logits) = outs.last().expect("final exit");
        let acc = adaptivefl_nn::metrics::accuracy(final_logits, &b.y);
        assert!(acc > 0.5, "final exit accuracy {acc}");
    }

    #[test]
    fn evaluate_batches_match_full_batch() {
        let fed =
            FederatedDataset::synthesize(&SynthSpec::test_spec(3), 1, 10, 25, Partition::Iid, 74);
        let cfg = ModelConfig {
            kind: adaptivefl_models::ModelKind::TinyCnn,
            input: (3, 8, 8),
            classes: 3,
            width_mult: 1.0,
        };
        let mut r = rng::seeded(75);
        let mut net = cfg.build(&cfg.full_plan(), &mut r);
        let a = evaluate(&mut net, fed.test(), 7);
        let b = evaluate(&mut net, fed.test(), 25);
        assert!((a - b).abs() < 1e-6);
    }
}

#[cfg(test)]
mod prox_tests {
    use super::*;
    use adaptivefl_data::{FederatedDataset, Partition, SynthSpec};
    use adaptivefl_models::ModelConfig;
    use adaptivefl_nn::layer::LayerExt;
    use adaptivefl_tensor::rng;

    /// FedProx with a huge µ must keep the trained weights near the
    /// anchor; µ = 0 lets them drift further.
    #[test]
    fn prox_term_anchors_weights() {
        let fed =
            FederatedDataset::synthesize(&SynthSpec::test_spec(4), 1, 40, 20, Partition::Iid, 76);
        let cfg = ModelConfig {
            kind: adaptivefl_models::ModelKind::TinyCnn,
            input: (3, 8, 8),
            classes: 4,
            width_mult: 1.0,
        };
        let drift = |mu: f32| {
            let mut r = rng::seeded(77);
            let mut net = cfg.build(&cfg.full_plan(), &mut r);
            let start = net.param_map();
            let trainer = LocalTrainer {
                lr: 0.05,
                momentum: 0.5,
                epochs: 4,
                batch_size: 16,
                prox_mu: mu,
            };
            trainer.train(&mut net, fed.client(0), &mut r);
            net.param_map().sq_distance(&start)
        };
        let free = drift(0.0);
        let anchored = drift(5.0);
        assert!(
            anchored < free * 0.5,
            "prox drift {anchored} should be well below free drift {free}"
        );
    }

    /// µ = 0 must be bit-identical to the pre-FedProx behaviour.
    #[test]
    fn zero_mu_is_plain_sgd() {
        let fed =
            FederatedDataset::synthesize(&SynthSpec::test_spec(3), 1, 20, 10, Partition::Iid, 78);
        let cfg = ModelConfig {
            kind: adaptivefl_models::ModelKind::TinyCnn,
            input: (3, 8, 8),
            classes: 3,
            width_mult: 1.0,
        };
        let run = |mu: f32| {
            let mut r = rng::seeded(79);
            let mut net = cfg.build(&cfg.full_plan(), &mut r);
            let trainer = LocalTrainer {
                lr: 0.03,
                momentum: 0.5,
                epochs: 2,
                batch_size: 8,
                prox_mu: mu,
            };
            trainer.train(&mut net, fed.client(0), &mut r);
            net.param_map()
        };
        assert_eq!(run(0.0), run(0.0));
    }
}
