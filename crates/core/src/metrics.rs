//! Experiment metrics: per-round communication accounting, accuracy
//! history, communication-waste rate and simulated wall-clock time.

use bytes::{BufMut, BytesMut};
use serde::{Deserialize, Serialize};

use crate::compress::FrameReader;
use crate::error::CoreError;
use crate::transport::CommStats;

/// One round's bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Parameter elements dispatched to clients this round
    /// (`Σ size(ML_send)`).
    pub sent_params: u64,
    /// Parameter elements uploaded back (`Σ size(ML_back)`).
    pub returned_params: u64,
    /// Mean local training loss over participating clients.
    pub train_loss: f32,
    /// Simulated wall-clock duration of the round (slowest client),
    /// seconds.
    pub sim_secs: f64,
    /// Number of clients that failed to train anything this round
    /// (resource failures plus transport losses).
    pub failures: usize,
    /// Transport-level accounting for the round (actual bytes moved,
    /// drops, stragglers, deadline misses). Defaults to zero for
    /// records predating the transport layer.
    #[serde(default)]
    pub comm: CommStats,
}

impl RoundRecord {
    /// Appends the record to a binary frame (big-endian, floats as raw
    /// bits) — the stable snapshot encoding. Lossless, so histories
    /// decoded from snapshots reproduce
    /// [`RunResult::comm_waste_rate`] and every other derived metric
    /// exactly.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.round as u64);
        buf.put_u64(self.sent_params);
        buf.put_u64(self.returned_params);
        buf.put_u32(self.train_loss.to_bits());
        buf.put_u64(self.sim_secs.to_bits());
        buf.put_u64(self.failures as u64);
        self.comm.encode(buf);
    }

    /// Parses a record encoded by [`RoundRecord::encode`]. Truncated
    /// frames return [`CoreError::MalformedFrame`], never panic.
    pub fn decode(r: &mut FrameReader<'_>) -> Result<Self, CoreError> {
        Ok(RoundRecord {
            round: r.u64()? as usize,
            sent_params: r.u64()?,
            returned_params: r.u64()?,
            train_loss: f32::from_bits(r.u32()?),
            sim_secs: f64::from_bits(r.u64()?),
            failures: r.u64()? as usize,
            comm: CommStats::decode(r)?,
        })
    }
}

/// One evaluation snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Round index the snapshot was taken after.
    pub round: usize,
    /// Global (full) model accuracy.
    pub full: f32,
    /// Per-level submodel accuracies `(level name, accuracy)` —
    /// `S_1`, `M_1`, `L_1` for width-pruned methods.
    pub levels: Vec<(String, f32)>,
}

impl EvalRecord {
    /// Appends the record to a binary frame — the stable snapshot
    /// encoding (see [`RoundRecord::encode`]).
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64(self.round as u64);
        buf.put_u32(self.full.to_bits());
        buf.put_u32(self.levels.len() as u32);
        for (name, acc) in &self.levels {
            buf.put_u16(name.len() as u16);
            buf.put_slice(name.as_bytes());
            buf.put_u32(acc.to_bits());
        }
    }

    /// Parses a record encoded by [`EvalRecord::encode`]. Truncated or
    /// corrupt frames return [`CoreError::MalformedFrame`].
    pub fn decode(r: &mut FrameReader<'_>) -> Result<Self, CoreError> {
        let round = r.u64()? as usize;
        let full = f32::from_bits(r.u32()?);
        let n = r.u32()? as usize;
        if r.remaining() < n * 6 {
            return Err(CoreError::MalformedFrame(format!(
                "eval record: {n} levels exceed remaining frame"
            )));
        }
        let mut levels = Vec::with_capacity(n);
        for _ in 0..n {
            let name_len = r.u16()? as usize;
            let name = String::from_utf8(r.bytes(name_len)?.to_vec())
                .map_err(|_| CoreError::MalformedFrame("non-utf8 level name".into()))?;
            levels.push((name, f32::from_bits(r.u32()?)));
        }
        Ok(EvalRecord {
            round,
            full,
            levels,
        })
    }

    /// Mean of the per-level accuracies (the paper's "avg" column);
    /// falls back to the full accuracy when no submodels exist
    /// (All-Large).
    pub fn avg(&self) -> f32 {
        if self.levels.is_empty() {
            self.full
        } else {
            self.levels.iter().map(|(_, a)| a).sum::<f32>() / self.levels.len() as f32
        }
    }
}

/// Complete result of one simulated FL run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Method display name (e.g. `"AdaptiveFL"`, `"HeteroFL"`).
    pub method: String,
    /// Per-round records.
    pub rounds: Vec<RoundRecord>,
    /// Evaluation snapshots (every `eval_every` rounds and final).
    pub evals: Vec<EvalRecord>,
}

impl RunResult {
    /// Reassembles a result from a decoded history (e.g. a snapshot's
    /// round/eval records) so every derived metric —
    /// [`comm_waste_rate`](RunResult::comm_waste_rate), accuracy
    /// curves, totals — works on persisted runs exactly as on
    /// in-process ones.
    pub fn from_history(
        method: impl Into<String>,
        rounds: Vec<RoundRecord>,
        evals: Vec<EvalRecord>,
    ) -> Self {
        RunResult {
            method: method.into(),
            rounds,
            evals,
        }
    }

    /// Final global-model accuracy (0 when never evaluated).
    pub fn final_full_accuracy(&self) -> f32 {
        self.evals.last().map_or(0.0, |e| e.full)
    }

    /// Final "avg" accuracy (mean over level submodels).
    pub fn final_avg_accuracy(&self) -> f32 {
        self.evals.last().map_or(0.0, EvalRecord::avg)
    }

    /// Best (max over snapshots) full accuracy — robust to late-round
    /// noise, like the paper's reported numbers.
    pub fn best_full_accuracy(&self) -> f32 {
        self.evals.iter().map(|e| e.full).fold(0.0, f32::max)
    }

    /// Best "avg" accuracy over snapshots.
    pub fn best_avg_accuracy(&self) -> f32 {
        self.evals.iter().map(EvalRecord::avg).fold(0.0, f32::max)
    }

    /// Communication-waste rate (paper §4.4):
    /// `1 − Σ size(ML_back) / Σ size(ML_send)`; 0 when nothing was
    /// sent.
    ///
    /// Measured over actual transport bytes when the run carries
    /// [`CommStats`] (so drops, truncations and deadline misses count
    /// as waste); falls back to parameter-element accounting for
    /// records predating the transport layer.
    pub fn comm_waste_rate(&self) -> f64 {
        let bytes_down: u64 = self.rounds.iter().map(|r| r.comm.bytes_down).sum();
        if bytes_down > 0 {
            let bytes_up: u64 = self.rounds.iter().map(|r| r.comm.bytes_up).sum();
            return 1.0 - bytes_up as f64 / bytes_down as f64;
        }
        let sent: u64 = self.rounds.iter().map(|r| r.sent_params).sum();
        let back: u64 = self.rounds.iter().map(|r| r.returned_params).sum();
        if sent == 0 {
            0.0
        } else {
            1.0 - back as f64 / sent as f64
        }
    }

    /// Whole-run transport accounting (sum of per-round
    /// [`CommStats`]).
    pub fn total_comm(&self) -> CommStats {
        let mut total = CommStats::default();
        for r in &self.rounds {
            total.accumulate(&r.comm);
        }
        total
    }

    /// Total simulated wall-clock seconds.
    pub fn total_sim_secs(&self) -> f64 {
        self.rounds.iter().map(|r| r.sim_secs).sum()
    }

    /// A 9-decimal textual fingerprint of the run: one line per round
    /// (`"{method} r{round} sent=… back=… loss=… secs=… fail=…"`) and
    /// one per evaluation (`"{method} e{round} full=… level:acc…"`).
    /// Two runs print identical fingerprints iff their legacy
    /// round/eval fields match to the printed precision — the format
    /// used by `examples/fingerprint.rs`, the golden regression suite,
    /// and the trace-determinism tests.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let m = &self.method;
        for r in &self.rounds {
            writeln!(
                out,
                "{m} r{} sent={} back={} loss={:.9} secs={:.9} fail={}",
                r.round, r.sent_params, r.returned_params, r.train_loss, r.sim_secs, r.failures
            )
            .expect("writing to String cannot fail");
        }
        for e in &self.evals {
            let levels: Vec<String> = e
                .levels
                .iter()
                .map(|(n, a)| format!("{n}:{a:.9}"))
                .collect();
            writeln!(
                out,
                "{m} e{} full={:.9} {}",
                e.round,
                e.full,
                levels.join(" ")
            )
            .expect("writing to String cannot fail");
        }
        out
    }

    /// Accuracy-vs-round learning curve `(round, full, avg)`.
    pub fn curve(&self) -> Vec<(usize, f32, f32)> {
        self.evals
            .iter()
            .map(|e| (e.round, e.full, e.avg()))
            .collect()
    }

    /// Accuracy-vs-simulated-time curve `(secs, full)` for test-bed
    /// style plots (Figure 6).
    pub fn time_curve(&self) -> Vec<(f64, f32)> {
        let mut out = Vec::with_capacity(self.evals.len());
        for e in &self.evals {
            let t: f64 = self
                .rounds
                .iter()
                .take_while(|r| r.round <= e.round)
                .map(|r| r.sim_secs)
                .sum();
            out.push((t, e.full));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            method: "test".into(),
            rounds: vec![
                RoundRecord {
                    round: 0,
                    sent_params: 100,
                    returned_params: 80,
                    train_loss: 1.0,
                    sim_secs: 2.0,
                    failures: 0,
                    comm: CommStats::default(),
                },
                RoundRecord {
                    round: 1,
                    sent_params: 100,
                    returned_params: 60,
                    train_loss: 0.5,
                    sim_secs: 3.0,
                    failures: 1,
                    comm: CommStats::default(),
                },
            ],
            evals: vec![
                EvalRecord {
                    round: 0,
                    full: 0.4,
                    levels: vec![("S_1".into(), 0.3), ("L_1".into(), 0.5)],
                },
                EvalRecord {
                    round: 1,
                    full: 0.6,
                    levels: vec![("S_1".into(), 0.5), ("L_1".into(), 0.7)],
                },
            ],
        }
    }

    #[test]
    fn comm_waste_is_one_minus_ratio() {
        let r = result();
        assert!((r.comm_waste_rate() - (1.0 - 140.0 / 200.0)).abs() < 1e-9);
    }

    #[test]
    fn comm_waste_prefers_transport_bytes() {
        let mut r = result();
        // Transport saw 1000 bytes down, 250 back: 75 % waste, which
        // overrides the param-based 30 %.
        r.rounds[0].comm = CommStats {
            bytes_down: 600,
            bytes_up: 150,
            ..Default::default()
        };
        r.rounds[1].comm = CommStats {
            bytes_down: 400,
            bytes_up: 100,
            drops: 1,
            ..Default::default()
        };
        assert!((r.comm_waste_rate() - 0.75).abs() < 1e-9);
        let total = r.total_comm();
        assert_eq!(total.bytes_down, 1000);
        assert_eq!(total.bytes_up, 250);
        assert_eq!(total.drops, 1);
    }

    #[test]
    fn avg_accuracy_means_levels() {
        let r = result();
        assert!((r.final_avg_accuracy() - 0.6).abs() < 1e-6);
        assert_eq!(r.final_full_accuracy(), 0.6);
        assert_eq!(r.best_full_accuracy(), 0.6);
    }

    #[test]
    fn avg_falls_back_to_full_without_levels() {
        let e = EvalRecord {
            round: 0,
            full: 0.42,
            levels: vec![],
        };
        assert_eq!(e.avg(), 0.42);
    }

    #[test]
    fn time_curve_accumulates() {
        let r = result();
        let tc = r.time_curve();
        assert_eq!(tc.len(), 2);
        assert!((tc[0].0 - 2.0).abs() < 1e-9);
        assert!((tc[1].0 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn round_and_eval_records_roundtrip_and_preserve_waste_rate() {
        let r = result();
        let mut buf = BytesMut::new();
        for rec in &r.rounds {
            rec.encode(&mut buf);
        }
        for e in &r.evals {
            e.encode(&mut buf);
        }
        let mut reader = FrameReader::new(&buf);
        let rounds: Vec<RoundRecord> = (0..r.rounds.len())
            .map(|_| RoundRecord::decode(&mut reader).expect("intact round"))
            .collect();
        let evals: Vec<EvalRecord> = (0..r.evals.len())
            .map(|_| EvalRecord::decode(&mut reader).expect("intact eval"))
            .collect();
        assert!(reader.is_empty());
        let back = RunResult::from_history(r.method.clone(), rounds, evals);
        assert_eq!(back, r);
        assert_eq!(back.comm_waste_rate(), r.comm_waste_rate());
    }

    #[test]
    fn record_decode_rejects_truncation() {
        let r = result();
        let mut buf = BytesMut::new();
        r.rounds[0].encode(&mut buf);
        for cut in [0, 7, buf.len() / 2, buf.len() - 1] {
            assert!(
                RoundRecord::decode(&mut FrameReader::new(&buf[..cut])).is_err(),
                "prefix {cut} decoded"
            );
        }
        let mut ebuf = BytesMut::new();
        r.evals[0].encode(&mut ebuf);
        for cut in [0, 5, ebuf.len() - 1] {
            assert!(
                EvalRecord::decode(&mut FrameReader::new(&ebuf[..cut])).is_err(),
                "eval prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn empty_result_defaults() {
        let r = RunResult {
            method: "x".into(),
            rounds: vec![],
            evals: vec![],
        };
        assert_eq!(r.final_full_accuracy(), 0.0);
        assert_eq!(r.comm_waste_rate(), 0.0);
    }
}
