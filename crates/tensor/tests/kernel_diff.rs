//! Differential kernel suite: the register-blocked matmul kernels must
//! be **bit-equal** (`f32::to_bits`) to the naive reference kernels on
//! every shape — including degenerate dims (1/2/3) and sizes that are
//! not multiples of the register-tile size — and on inputs salted with
//! `+0.0` / `-0.0` (the reference kernels skip zero `A` elements, so a
//! kernel that drops the skip would diverge on signed zeros).

use adaptivefl_tensor::ops::{
    matmul_a_bt_blocked, matmul_a_bt_reference, matmul_at_b_blocked, matmul_at_b_reference,
    matmul_blocked, matmul_reference,
};
use adaptivefl_tensor::Tensor;
use proptest::prelude::*;

fn assert_bits_equal(blocked: &Tensor, reference: &Tensor, what: &str) {
    assert_eq!(blocked.shape(), reference.shape(), "{what}: shape");
    for (i, (x, y)) in blocked
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .enumerate()
    {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: element {i} differs: blocked {x:?} ({:#010x}) vs reference {y:?} ({:#010x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// Deterministic salted matrix fill: mostly smooth values, mixed with
/// exact `+0.0` / `-0.0` (exercising the zero-skip) and huge/tiny
/// magnitudes (where any re-association changes the rounding).
fn matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) as u32;
            let v = (r % 8000) as f32 / 1000.0 - 4.0;
            match r % 10 {
                0 => 0.0,
                1 => -0.0,
                2 => v * 1.0e30,
                3 => v * 1.0e-30,
                _ => v,
            }
        })
        .collect();
    Tensor::from_vec(data, &[rows, cols])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `A·B` over randomized shapes straddling the 4×8 tile size.
    #[test]
    fn matmul_blocked_is_bit_equal(
        m in 1usize..=19, k in 1usize..=19, n in 1usize..=19, seed in 0u64..1 << 60,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 0xabcd);
        assert_bits_equal(&matmul_blocked(&a, &b), &matmul_reference(&a, &b), "matmul");
    }

    /// `Aᵀ·B` over randomized shapes.
    #[test]
    fn matmul_at_b_blocked_is_bit_equal(
        m in 1usize..=19, k in 1usize..=19, n in 1usize..=19, seed in 0u64..1 << 60,
    ) {
        let a = matrix(k, m, seed);
        let b = matrix(k, n, seed ^ 0xabcd);
        assert_bits_equal(
            &matmul_at_b_blocked(&a, &b),
            &matmul_at_b_reference(&a, &b),
            "matmul_at_b",
        );
    }

    /// `A·Bᵀ` over randomized shapes (no zero-skip in this kernel).
    #[test]
    fn matmul_a_bt_blocked_is_bit_equal(
        m in 1usize..=19, k in 1usize..=19, n in 1usize..=19, seed in 0u64..1 << 60,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(n, k, seed ^ 0xabcd);
        assert_bits_equal(
            &matmul_a_bt_blocked(&a, &b),
            &matmul_a_bt_reference(&a, &b),
            "matmul_a_bt",
        );
    }

    /// Larger shapes spanning several full tiles plus ragged edges.
    #[test]
    fn big_ragged_shapes_are_bit_equal(
        m in 29usize..=41, k in 17usize..=33, n in 29usize..=41, seed in 0u64..1 << 60,
    ) {
        let a = matrix(m, k, seed);
        let b = matrix(k, n, seed ^ 0xabcd);
        assert_bits_equal(&matmul_blocked(&a, &b), &matmul_reference(&a, &b), "matmul big");
    }
}

/// Exhaustive sweep of every degenerate combination m/k/n ∈ {1, 2, 3}
/// plus the first non-multiples of the tile dims, on a fixed salted
/// input pattern.
#[test]
fn degenerate_and_off_tile_shapes_are_bit_equal() {
    let dims = [1usize, 2, 3, 4, 5, 7, 8, 9, 11, 13];
    for &m in &dims {
        for &k in &dims {
            for &n in &dims {
                let a = matrix(m, k, 5);
                let b = matrix(k, n, 9);
                assert_bits_equal(&matmul_blocked(&a, &b), &matmul_reference(&a, &b), "matmul");
                let at = matrix(k, m, 5);
                assert_bits_equal(
                    &matmul_at_b_blocked(&at, &b),
                    &matmul_at_b_reference(&at, &b),
                    "matmul_at_b",
                );
                let bt = matrix(n, k, 9);
                assert_bits_equal(
                    &matmul_a_bt_blocked(&a, &bt),
                    &matmul_a_bt_reference(&a, &bt),
                    "matmul_a_bt",
                );
            }
        }
    }
}

/// Non-finite values propagate identically (the zero-skip means `0 · ∞`
/// produces NaN in neither A-side kernel, and a dropped skip would).
#[test]
fn non_finite_values_match_bitwise() {
    let a = Tensor::from_vec(
        vec![0.0, f32::INFINITY, -0.0, f32::NEG_INFINITY, 1.0, f32::NAN],
        &[2, 3],
    );
    let b = Tensor::from_vec(vec![f32::INFINITY, 0.0, 2.0, -1.0, f32::NAN, -0.0], &[3, 2]);
    assert_bits_equal(
        &matmul_blocked(&a, &b),
        &matmul_reference(&a, &b),
        "matmul inf",
    );
    let at = Tensor::from_vec(
        vec![0.0, f32::INFINITY, -0.0, f32::NEG_INFINITY, 1.0, f32::NAN],
        &[3, 2],
    );
    assert_bits_equal(
        &matmul_at_b_blocked(&at, &b),
        &matmul_at_b_reference(&at, &b),
        "matmul_at_b inf",
    );
    let bt = Tensor::from_vec(vec![f32::INFINITY, 0.0, 2.0, -1.0, f32::NAN, -0.0], &[2, 3]);
    assert_bits_equal(
        &matmul_a_bt_blocked(&a, &bt),
        &matmul_a_bt_reference(&a, &bt),
        "matmul_a_bt inf",
    );
}
