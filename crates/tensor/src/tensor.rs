//! The dense, owned, row-major [`Tensor`] type.

use serde::{Deserialize, Serialize};

use crate::TensorError;

/// A dense, row-major tensor of `f32` values.
///
/// The element order is C order (last axis varies fastest). All
/// operations in this workspace exchange owned tensors; views are not
/// needed at the scale of the experiments and keeping ownership simple
/// makes the federated parameter bookkeeping much easier to audit.
///
/// # Example
///
/// ```
/// use adaptivefl_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// ```
    /// # use adaptivefl_tensor::Tensor;
    /// let t = Tensor::zeros(&[4]);
    /// assert!(t.as_slice().iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from raw data in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    /// Use [`Tensor::try_from_vec`] for a fallible variant.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        Self::try_from_vec(data, shape).expect("element count must match shape")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the element count does
    /// not match the shape.
    pub fn try_from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let numel: usize = shape.iter().product();
        if data.len() != numel {
            return Err(TensorError::ShapeMismatch {
                elements: data.len(),
                shape: shape.to_vec(),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data viewed under a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        assert_eq!(
            self.numel(),
            shape.iter().product::<usize>(),
            "reshape from {:?} to {:?} changes element count",
            self.shape,
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Row-major strides for the current shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.shape.len()];
        for i in (0..self.shape.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.shape[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0usize;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(i < self.shape[d], "index {i} out of bounds on axis {d}");
            off += i * s;
        }
        off
    }

    /// Element access by multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Mutable element access by multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.offset(index);
        &mut self.data[off]
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Index of the maximum element (first on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Matrix product of two 2-D tensors (see [`crate::ops::matmul`]).
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions
    /// differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        crate::ops::matmul(self, other)
    }
}

impl Default for Tensor {
    /// An empty scalar-shaped tensor (`shape = [0]`).
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}(numel={})", self.shape, self.numel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        assert_eq!(t.ndim(), 3);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_count() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::try_from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn strides_and_indexing() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        assert_eq!(t.strides(), vec![12, 4, 1]);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        assert_eq!(t.at(&[0, 1, 0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.map(|x| x * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).as_slice(), &[11.0, 22.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.sq_norm(), 14.0);
        assert_eq!(t.argmax(), Some(2));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());
        assert_eq!(i.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
    }
}
