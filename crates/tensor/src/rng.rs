//! Deterministic RNG helpers.
//!
//! Every stochastic component of the workspace (weight init, data
//! synthesis, client sampling, RL selection) derives its randomness from
//! a [`ChaCha8Rng`] seeded here, so whole experiments replay bit-for-bit
//! from a single `u64` seed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the workspace-standard deterministic RNG from a seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = adaptivefl_tensor::rng::seeded(9);
/// let mut b = adaptivefl_tensor::rng::seeded(9);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derives a child RNG from a parent seed and a stream label, so
/// independent components (e.g. "data", "init", "selection") never share
/// a random stream even when built from the same experiment seed.
pub fn derived(seed: u64, stream: &str) -> ChaCha8Rng {
    // FNV-1a over the label, folded into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derived_streams_differ() {
        let mut a = derived(1, "data");
        let mut b = derived(1, "init");
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_is_deterministic() {
        let mut a = derived(5, "selection");
        let mut b = derived(5, "selection");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
