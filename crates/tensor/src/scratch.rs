//! A reusable buffer arena for hot-path temporaries.
//!
//! Aggregation, the optimizer, and local training all need short-lived
//! `f32` buffers (accumulators, momentum tensors, decayed gradients)
//! whose sizes repeat every round. Allocating them per parameter per
//! round dominates small-model rounds; a [`Scratch`] arena recycles
//! them so each distinct size is allocated roughly once per run.
//!
//! # Determinism contract
//!
//! Buffers leave the arena in a content-defined state: [`Scratch::take`]
//! returns an all-zero buffer and [`Scratch::take_copy`] a full copy of
//! the source, regardless of what a recycled buffer previously held.
//! Parallel client jobs may therefore take and recycle in any
//! interleaving — results never depend on which buffer was handed out,
//! so a run sharing one arena is bit-identical to a run allocating
//! fresh (asserted by `tests/scratch_determinism.rs`).

use std::sync::{Arc, Mutex};

use crate::Tensor;

/// A shared, thread-safe pool of reusable `f32` buffers.
///
/// `Scratch` is a cheap-to-clone handle; clones share the same pool, so
/// one arena can be threaded through an entire simulation (server
/// aggregation and parallel client jobs alike).
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    pool: Arc<Mutex<Pool>>,
}

#[derive(Debug, Default)]
struct Pool {
    free: Vec<Vec<f32>>,
    takes: u64,
    fresh: u64,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zeroed buffer of exactly `len` elements.
    pub fn take(&self, len: usize) -> Vec<f32> {
        let mut buf = self.pop(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Takes a buffer initialised to a copy of `src`.
    pub fn take_copy(&self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.pop(src.len());
        buf.clear();
        buf.extend_from_slice(src);
        buf
    }

    /// Takes a zeroed tensor of the given shape.
    pub fn take_tensor(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.take(shape.iter().product()), shape)
    }

    /// Takes a tensor initialised to a copy of `src`.
    pub fn take_tensor_copy(&self, src: &Tensor) -> Tensor {
        Tensor::from_vec(self.take_copy(src.as_slice()), src.shape())
    }

    /// Returns a buffer to the arena for reuse.
    pub fn recycle(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        self.lock().free.push(buf);
    }

    /// Returns a tensor's backing buffer to the arena.
    pub fn recycle_tensor(&self, t: Tensor) {
        self.recycle(t.into_vec());
    }

    /// Total number of `take*` calls served so far.
    pub fn takes(&self) -> u64 {
        self.lock().takes
    }

    /// Number of takes that could not be served from a recycled buffer.
    pub fn fresh_allocs(&self) -> u64 {
        self.lock().fresh
    }

    /// Number of takes served from a recycled buffer.
    pub fn reuses(&self) -> u64 {
        let p = self.lock();
        p.takes - p.fresh
    }

    /// Number of buffers currently parked in the arena.
    pub fn free_buffers(&self) -> usize {
        self.lock().free.len()
    }

    fn pop(&self, len: usize) -> Vec<f32> {
        let mut p = self.lock();
        p.takes += 1;
        // Prefer a buffer that already has the capacity; otherwise grow
        // the most recently recycled one (it keeps its larger capacity
        // on the next round trip).
        if let Some(i) = p.free.iter().rposition(|b| b.capacity() >= len) {
            return p.free.swap_remove(i);
        }
        if let Some(b) = p.free.pop() {
            return b;
        }
        p.fresh += 1;
        Vec::new()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Pool> {
        self.pool.lock().expect("scratch pool poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_always_zeroed() {
        let s = Scratch::new();
        let mut b = s.take(4);
        b.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        s.recycle(b);
        assert_eq!(s.take(4), vec![0.0; 4]);
        // A shorter take from the same dirty buffer is zeroed too.
        let mut b = s.take(4);
        b.fill(9.0);
        s.recycle(b);
        assert_eq!(s.take(2), vec![0.0; 2]);
    }

    #[test]
    fn take_copy_fully_overwrites() {
        let s = Scratch::new();
        let mut b = s.take(3);
        b.fill(7.0);
        s.recycle(b);
        assert_eq!(s.take_copy(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn reuse_is_counted() {
        let s = Scratch::new();
        let b = s.take(8);
        s.recycle(b);
        let _ = s.take(8);
        assert_eq!(s.takes(), 2);
        assert_eq!(s.fresh_allocs(), 1);
        assert_eq!(s.reuses(), 1);
    }

    #[test]
    fn clones_share_the_pool() {
        let a = Scratch::new();
        let b = a.clone();
        b.recycle(vec![0.0; 16]);
        assert_eq!(a.free_buffers(), 1);
        let _ = a.take(16);
        assert_eq!(b.reuses(), 1);
    }

    #[test]
    fn tensor_round_trip() {
        let s = Scratch::new();
        let t = s.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
        s.recycle_tensor(t);
        let u = s.take_tensor_copy(&Tensor::ones(&[6]));
        assert_eq!(u.as_slice(), &[1.0; 6]);
        assert_eq!(s.reuses(), 1);
    }
}
