//! Weight initialisers (Kaiming / Xavier / normal / uniform).
//!
//! All initialisers take an explicit RNG so every experiment in the
//! workspace is exactly reproducible from its seed.

use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

use crate::Tensor;

/// Kaiming (He) uniform initialisation for ReLU networks:
/// `U(−√(6/fan_in), √(6/fan_in))`.
///
/// `fan_in` for a conv weight `[out, in, kh, kw]` is `in·kh·kw`.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialisation:
/// `U(−√(6/(fan_in+fan_out)), +…)`.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// I.i.d. normal initialisation with the given standard deviation.
pub fn normal(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
    let dist = Normal::new(0.0f32, std.max(f32::MIN_POSITIVE)).expect("std must be positive");
    let numel = shape.iter().product();
    Tensor::from_vec((0..numel).map(|_| dist.sample(rng)).collect(), shape)
}

/// I.i.d. uniform initialisation on `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo <= hi, "uniform bounds inverted");
    let dist = Uniform::new_inclusive(lo, hi);
    let numel = shape.iter().product();
    Tensor::from_vec((0..numel).map(|_| dist.sample(rng)).collect(), shape)
}

/// Conv/linear fan-in for a weight shape: product of all axes except the
/// first (output) axis; 1 for vectors.
pub fn fan_in_of(shape: &[usize]) -> usize {
    if shape.len() <= 1 {
        1
    } else {
        shape[1..].iter().product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn kaiming_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let t = kaiming_uniform(&[64, 32, 3, 3], 32 * 9, &mut rng);
        let bound = (6.0f32 / (32.0 * 9.0)).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound + 1e-6));
        // Not degenerate.
        assert!(t.as_slice().iter().any(|&x| x.abs() > bound * 0.1));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = ChaCha8Rng::seed_from_u64(42);
        let mut r2 = ChaCha8Rng::seed_from_u64(42);
        assert_eq!(normal(&[10], 0.1, &mut r1), normal(&[10], 0.1, &mut r2));
    }

    #[test]
    fn fan_in_shapes() {
        assert_eq!(fan_in_of(&[64, 32, 3, 3]), 32 * 9);
        assert_eq!(fan_in_of(&[10, 100]), 100);
        assert_eq!(fan_in_of(&[10]), 1);
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = normal(&[10_000], 0.5, &mut rng);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }
}
