//! Dense f32 tensor substrate for the AdaptiveFL reproduction.
//!
//! This crate provides the minimal numerical kernel the rest of the
//! workspace is built on: an owned, row-major, dense [`Tensor`] of `f32`
//! values plus the operations a small convolutional network needs
//! (mat-mul, im2col convolution, pooling, elementwise maps, reductions)
//! and the weight initialisers used by the model zoo.
//!
//! Nothing here is specific to federated learning; the crate plays the
//! role PyTorch's tensor library plays for the original paper.
//!
//! # Example
//!
//! ```
//! use adaptivefl_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

mod tensor;

pub mod init;
pub mod ops;
pub mod rng;
pub mod scratch;
pub mod slice;

pub use scratch::Scratch;
pub use slice::SliceSpec;
pub use tensor::Tensor;

/// Errors produced by tensor construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of supplied elements does not match the product of the
    /// requested shape dimensions.
    ShapeMismatch {
        /// Number of elements provided.
        elements: usize,
        /// Shape that was requested.
        shape: Vec<usize>,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    IncompatibleShapes {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { elements, shape } => write!(
                f,
                "cannot view {elements} elements as shape {shape:?} ({} elements)",
                shape.iter().product::<usize>()
            ),
            TensorError::IncompatibleShapes { left, right, op } => {
                write!(f, "incompatible shapes {left:?} and {right:?} for {op}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
