//! Numerical kernels: matrix multiplication, im2col convolution,
//! pooling, and the softmax used by the loss layer.
//!
//! These free functions operate on plain [`Tensor`](crate::Tensor)s; the
//! `adaptivefl-nn` crate wraps them into layers with parameter and
//! gradient bookkeeping.

mod conv;
mod matmul;
mod pool;
mod softmax;

pub use conv::{col2im, conv2d_backward, conv2d_forward, im2col, Conv2dGrads, ConvGeometry};
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_blocked, matmul_a_bt_reference, matmul_at_b,
    matmul_at_b_blocked, matmul_at_b_reference, matmul_blocked, matmul_reference,
    naive_kernels_forced,
};
pub use pool::{
    avg_pool2d_backward, avg_pool2d_forward, global_avg_pool_backward, global_avg_pool_forward,
    max_pool2d_backward, max_pool2d_forward,
};
pub use softmax::{log_softmax_rows, softmax_rows};
