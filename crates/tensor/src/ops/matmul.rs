//! Dense matrix multiplication kernels.
//!
//! A cache-friendly `i-k-j` loop order is used; at the matrix sizes of
//! the reduced-scale experiments this is within a small factor of a
//! tuned BLAS and keeps the workspace dependency-free.

use crate::Tensor;

/// `C = A · B` for row-major 2-D tensors.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use adaptivefl_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aik * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ · B` without materialising the transpose.
///
/// # Panics
///
/// Panics if the operands are not 2-D or `A.rows != B.rows`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at_b lhs");
    let (k2, n) = dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b shared dim {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for kk in 0..k {
        let arow = &av[kk * m..(kk + 1) * m];
        let brow = &bv[kk * n..(kk + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aki * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` without materialising the transpose.
///
/// # Panics
///
/// Panics if the operands are not 2-D or `A.cols != B.cols`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_a_bt lhs");
    let (n, k2) = dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt shared dim {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.ndim(), 2, "{what} must be 2-D, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    out[i * n + j] += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|x| (x as f32).sin()).collect(), &[4, 5]);
        let c = matmul(&a, &b);
        let n = naive(&a, &b);
        for (x, y) in c.as_slice().iter().zip(n.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_variants_agree() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 + 1.0).collect(), &[3, 4]);
        // Aᵀ·B : [4,3]·[3,4] -> [4,4]
        let c1 = matmul_at_b(&a, &b);
        // Compare against explicit transpose.
        let mut at = Tensor::zeros(&[4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                *at.at_mut(&[j, i]) = a.at(&[i, j]);
            }
        }
        let c2 = matmul(&at, &b);
        assert_eq!(c1, c2);

        // A·Bᵀ : [3,4]·[4,3] -> [3,3]
        let d1 = matmul_a_bt(&a, &b);
        let mut bt = Tensor::zeros(&[4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                *bt.at_mut(&[j, i]) = b.at(&[i, j]);
            }
        }
        let d2 = matmul(&a, &bt);
        for (x, y) in d1.as_slice().iter().zip(d2.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        matmul(&a, &b);
    }
}
