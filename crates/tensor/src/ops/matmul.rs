//! Dense matrix multiplication kernels.
//!
//! Each product ships in two implementations that are **bit-identical**
//! by construction (see DESIGN.md §10):
//!
//! * a *reference* kernel — the original scalar loops, kept verbatim as
//!   the semantic ground truth;
//! * a *blocked* kernel — the default, which processes `MR`-row panels
//!   of the output with the accumulators held in registers for the
//!   whole k-loop, runtime-dispatched to an AVX-512 / AVX2 microkernel
//!   on x86-64 (explicit mul-then-add — **never** FMA, whose single
//!   rounding would change results) with a portable register-tiled
//!   fallback elsewhere.
//!
//! Blocking only reorders work **across independent output elements**;
//! for every single output element the k-accumulation order (and the
//! skip-on-zero rule of the reference kernels) is preserved exactly, so
//! no floating-point sum is ever re-associated and the results match
//! the reference bit for bit. The skip rule is honoured by prescanning
//! each A panel: panels without zeros take the branchless fast path (a
//! skip could never fire), panels containing a zero fall back to the
//! reference row loop. `crates/tensor/tests/kernel_diff.rs` asserts the
//! equivalence differentially with `f32::to_bits`.
//!
//! Setting `TENSOR_NAIVE=1` in the environment forces the reference
//! kernels at run time (read once per process).

use std::sync::OnceLock;

use crate::Tensor;

/// Rows per register panel.
const MR: usize = 4;
/// Columns per portable register tile (`MR·NR` accumulators fit the
/// baseline x86-64 / aarch64 vector register files).
const NR: usize = 8;

/// `true` when `TENSOR_NAIVE` is set (to anything but `0`/empty) and the
/// public entry points dispatch to the reference kernels.
///
/// The variable is read once per process; changing it later has no
/// effect.
pub fn naive_kernels_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("TENSOR_NAIVE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    })
}

/// The widest SIMD microkernel the running CPU supports, detected once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Portable,
}

fn isa() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Isa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        Isa::Portable
    })
}

/// `C = A · B` for row-major 2-D tensors.
///
/// Dispatches to [`matmul_blocked`] unless `TENSOR_NAIVE=1` selects
/// [`matmul_reference`]; the two are bit-identical.
///
/// # Panics
///
/// Panics if the operands are not 2-D or the inner dimensions differ.
///
/// # Example
///
/// ```
/// use adaptivefl_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
/// assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    if naive_kernels_forced() {
        matmul_reference(a, b)
    } else {
        matmul_blocked(a, b)
    }
}

/// `C = Aᵀ · B` without materialising the transpose.
///
/// Dispatches like [`matmul`].
///
/// # Panics
///
/// Panics if the operands are not 2-D or `A.rows != B.rows`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    if naive_kernels_forced() {
        matmul_at_b_reference(a, b)
    } else {
        matmul_at_b_blocked(a, b)
    }
}

/// `C = A · Bᵀ` without materialising the transpose.
///
/// Dispatches like [`matmul`].
///
/// # Panics
///
/// Panics if the operands are not 2-D or `A.cols != B.cols`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    if naive_kernels_forced() {
        matmul_a_bt_reference(a, b)
    } else {
        matmul_a_bt_blocked(a, b)
    }
}

/// Reference `C = A · B`: the original cache-friendly `i-k-j` scalar
/// loops, kept as the bit-exact ground truth for the blocked kernel.
///
/// # Panics
///
/// See [`matmul`].
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for i in 0..m {
        matmul_row_reference(&av[i * k..(i + 1) * k], bv, &mut out[i * n..(i + 1) * n]);
    }
    Tensor::from_vec(out, &[m, n])
}

/// One output row of [`matmul_reference`]: `orow += Σ_k a[k]·B[k,:]`
/// with the skip-on-zero rule. Shared with the blocked kernel's
/// zero-panel fallback so both paths are the same code.
#[inline]
fn matmul_row_reference(arow: &[f32], bv: &[f32], orow: &mut [f32]) {
    let n = orow.len();
    for (kk, &aik) in arow.iter().enumerate() {
        if aik == 0.0 {
            continue;
        }
        let brow = &bv[kk * n..(kk + 1) * n];
        for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
            *o += aik * bkj;
        }
    }
}

/// Reference `C = Aᵀ · B`: the original `k`-outer scalar loops.
///
/// # Panics
///
/// See [`matmul_at_b`].
pub fn matmul_at_b_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at_b lhs");
    let (k2, n) = dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b shared dim {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for kk in 0..k {
        let arow = &av[kk * m..(kk + 1) * m];
        let brow = &bv[kk * n..(kk + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow.iter()) {
                *o += aki * bkj;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Reference `C = A · Bᵀ`: the original `i-j-k` dot-product loops. Note
/// this kernel has **no** skip-on-zero — the blocked variant must not
/// introduce one.
///
/// # Panics
///
/// See [`matmul_a_bt`].
pub fn matmul_a_bt_reference(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_a_bt lhs");
    let (n, k2) = dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt shared dim {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Blocked `C = A · B`, bit-identical to [`matmul_reference`].
///
/// Works in `MR`-row panels. A panel whose `A` rows contain no zero is
/// handed to a branchless microkernel (SIMD on x86-64, register-tiled
/// scalar elsewhere) — the reference skip-on-zero could never fire on
/// such a panel, so dropping the check reorders nothing. Panels
/// containing a zero (and the ragged bottom rows) run the reference
/// row loop itself. Within every output element the additions happen in
/// strictly increasing k either way, so no sum is re-associated.
///
/// # Panics
///
/// See [`matmul`].
pub fn matmul_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    let isa = isa();
    let mut i0 = 0;
    while i0 < m {
        let mh = MR.min(m - i0);
        let apanel = &av[i0 * k..(i0 + mh) * k];
        if mh == MR && !apanel.contains(&0.0) {
            match isa {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `isa()` verified the feature at run time.
                Isa::Avx512 => unsafe { x86::matmul_panel_avx512(apanel, bv, &mut out, i0, k, n) },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above.
                Isa::Avx2 => unsafe { x86::matmul_panel_avx2(apanel, bv, &mut out, i0, k, n) },
                Isa::Portable => matmul_panel_portable(apanel, bv, &mut out, i0, k, n),
            }
        } else {
            for ii in 0..mh {
                let i = i0 + ii;
                matmul_row_reference(&av[i * k..(i + 1) * k], bv, &mut out[i * n..(i + 1) * n]);
            }
        }
        i0 += MR;
    }
    Tensor::from_vec(out, &[m, n])
}

/// Portable microkernel for one zero-free `MR`-row panel of
/// [`matmul_blocked`]: `MR × NR` output tiles accumulate in registers
/// across the whole k-loop with no branches, which the compiler
/// auto-vectorises at whatever width the target offers.
fn matmul_panel_portable(
    apanel: &[f32],
    bv: &[f32],
    out: &mut [f32],
    i0: usize,
    k: usize,
    n: usize,
) {
    let mut j0 = 0;
    while j0 < n {
        let nw = NR.min(n - j0);
        let mut acc = [[0.0f32; NR]; MR];
        if nw == NR {
            for kk in 0..k {
                let brow = &bv[kk * n + j0..kk * n + j0 + NR];
                for (ii, arow) in acc.iter_mut().enumerate() {
                    let aik = apanel[ii * k + kk];
                    for (o, &bkj) in arow.iter_mut().zip(brow.iter()) {
                        *o += aik * bkj;
                    }
                }
            }
        } else {
            for kk in 0..k {
                let brow = &bv[kk * n + j0..kk * n + j0 + nw];
                for (ii, arow) in acc.iter_mut().enumerate() {
                    let aik = apanel[ii * k + kk];
                    for (o, &bkj) in arow.iter_mut().zip(brow.iter()) {
                        *o += aik * bkj;
                    }
                }
            }
        }
        for (ii, arow) in acc.iter().enumerate() {
            let off = (i0 + ii) * n + j0;
            out[off..off + nw].copy_from_slice(&arow[..nw]);
        }
        j0 += NR;
    }
}

/// Blocked `C = Aᵀ · B`, bit-identical to [`matmul_at_b_reference`].
///
/// Same panel strategy as [`matmul_blocked`]; the panel here is an
/// `MR`-column block of `A` (contiguous per k-row), prescanned for
/// zeros the same way.
///
/// # Panics
///
/// See [`matmul_at_b`].
pub fn matmul_at_b_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_at_b lhs");
    let (k2, n) = dims2(b, "matmul_at_b rhs");
    assert_eq!(k, k2, "matmul_at_b shared dim {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    let isa = isa();
    // The panel's A values (columns i0..i0+MR) are strided; stage them
    // contiguously once per panel so the microkernels are shared with
    // `matmul_blocked` (pure copy — no arithmetic, no reordering).
    let mut staged = vec![0.0f32; MR.max(1) * k];
    let mut i0 = 0;
    while i0 < m {
        let mh = MR.min(m - i0);
        let mut has_zero = false;
        for kk in 0..k {
            for ii in 0..mh {
                let v = av[kk * m + i0 + ii];
                has_zero |= v == 0.0;
                staged[ii * k + kk] = v;
            }
        }
        if mh == MR && !has_zero {
            let apanel = &staged[..MR * k];
            match isa {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `isa()` verified the feature at run time.
                Isa::Avx512 => unsafe { x86::matmul_panel_avx512(apanel, bv, &mut out, i0, k, n) },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above.
                Isa::Avx2 => unsafe { x86::matmul_panel_avx2(apanel, bv, &mut out, i0, k, n) },
                Isa::Portable => matmul_panel_portable(apanel, bv, &mut out, i0, k, n),
            }
        } else {
            for ii in 0..mh {
                let i = i0 + ii;
                matmul_row_reference(
                    &staged[ii * k..(ii + 1) * k],
                    bv,
                    &mut out[i * n..(i + 1) * n],
                );
            }
        }
        i0 += MR;
    }
    Tensor::from_vec(out, &[m, n])
}

/// Blocked `C = A · Bᵀ`, bit-identical to [`matmul_a_bt_reference`].
///
/// The reference computes each output element as one serial dot
/// product. Here a `Bᵀ` column panel is transposed into a contiguous
/// staging buffer once (a pure copy), after which each `MR`-row tile
/// advances `MR × panel-width` independent accumulator chains per
/// k-step — each chain is still one element's dot product fed in
/// increasing k, so every sum keeps the reference association. The
/// reference has no skip-on-zero, so no prescan is needed.
///
/// # Panics
///
/// See [`matmul_a_bt`].
pub fn matmul_a_bt_blocked(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_a_bt lhs");
    let (n, k2) = dims2(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt shared dim {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    let isa = isa();
    // B rows j0..j0+NR transposed to k-major so the microkernel loads
    // the panel's B values for one k contiguously.
    let mut tbuf = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 < n {
        let nw = NR.min(n - j0);
        if nw == NR {
            for kk in 0..k {
                for jj in 0..NR {
                    tbuf[kk * NR + jj] = bv[(j0 + jj) * k + kk];
                }
            }
            let mut i0 = 0;
            while i0 < m {
                let mh = MR.min(m - i0);
                if mh == MR {
                    let apanel = &av[i0 * k..(i0 + MR) * k];
                    match isa {
                        #[cfg(target_arch = "x86_64")]
                        // SAFETY: `isa()` verified the feature at run time.
                        Isa::Avx512 => unsafe {
                            x86::a_bt_tile_avx2(apanel, &tbuf, &mut out, i0, j0, k, n)
                        },
                        #[cfg(target_arch = "x86_64")]
                        // SAFETY: as above.
                        Isa::Avx2 => unsafe {
                            x86::a_bt_tile_avx2(apanel, &tbuf, &mut out, i0, j0, k, n)
                        },
                        Isa::Portable => a_bt_tile_portable(apanel, &tbuf, &mut out, i0, j0, k, n),
                    }
                } else {
                    a_bt_rows_reference(av, bv, &mut out, i0, mh, j0, nw, k, n);
                }
                i0 += MR;
            }
        } else {
            a_bt_rows_reference(av, bv, &mut out, 0, m, j0, nw, k, n);
        }
        j0 += NR;
    }
    Tensor::from_vec(out, &[m, n])
}

/// Reference-order serial dot products for an `A·Bᵀ` edge block.
#[inline]
#[allow(clippy::too_many_arguments)]
fn a_bt_rows_reference(
    av: &[f32],
    bv: &[f32],
    out: &mut [f32],
    i0: usize,
    mh: usize,
    j0: usize,
    nw: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i0 + mh {
        let arow = &av[i * k..(i + 1) * k];
        for j in j0..j0 + nw {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
}

/// Portable `MR × NR` tile of [`matmul_a_bt_blocked`] over the
/// transposed panel: branchless, auto-vectorisable.
fn a_bt_tile_portable(
    apanel: &[f32],
    tbuf: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let brow = &tbuf[kk * NR..(kk + 1) * NR];
        for (ii, arow) in acc.iter_mut().enumerate() {
            let aik = apanel[ii * k + kk];
            for (o, &bkj) in arow.iter_mut().zip(brow.iter()) {
                *o += aik * bkj;
            }
        }
    }
    for (ii, arow) in acc.iter().enumerate() {
        let off = (i0 + ii) * n + j0;
        out[off..off + NR].copy_from_slice(arow);
    }
}

/// x86-64 SIMD microkernels. All of them compute `acc = acc + a·b`
/// with separate multiply and add instructions — never FMA — so each
/// lane performs exactly the scalar reference's two correctly-rounded
/// operations and the results are bit-identical.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// AVX-512 panel kernel: `MR` rows × 32 columns per tile (8 zmm
    /// accumulators live across the whole k-loop), narrowing to 16-wide
    /// AVX-512, then the scalar tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx512f` (and `avx2` for the narrow tile) is
    /// available, `apanel.len() == MR*k`, `bv.len() >= k*n`,
    /// `out.len() >= (i0+MR)*n`, and the panel contains no zeros.
    #[target_feature(enable = "avx512f,avx2")]
    pub unsafe fn matmul_panel_avx512(
        apanel: &[f32],
        bv: &[f32],
        out: &mut [f32],
        i0: usize,
        k: usize,
        n: usize,
    ) {
        let ap = apanel.as_ptr();
        let bp = bv.as_ptr();
        let op = out.as_mut_ptr();
        let mut j0 = 0;
        while j0 + 32 <= n {
            let mut acc = [_mm512_setzero_ps(); 2 * MR];
            for kk in 0..k {
                let base = bp.add(kk * n + j0);
                let b0 = _mm512_loadu_ps(base);
                let b1 = _mm512_loadu_ps(base.add(16));
                for ii in 0..MR {
                    let a = _mm512_set1_ps(*ap.add(ii * k + kk));
                    acc[2 * ii] = _mm512_add_ps(acc[2 * ii], _mm512_mul_ps(a, b0));
                    acc[2 * ii + 1] = _mm512_add_ps(acc[2 * ii + 1], _mm512_mul_ps(a, b1));
                }
            }
            for ii in 0..MR {
                let dst = op.add((i0 + ii) * n + j0);
                _mm512_storeu_ps(dst, acc[2 * ii]);
                _mm512_storeu_ps(dst.add(16), acc[2 * ii + 1]);
            }
            j0 += 32;
        }
        while j0 + 16 <= n {
            let mut acc = [_mm512_setzero_ps(); MR];
            for kk in 0..k {
                let b0 = _mm512_loadu_ps(bp.add(kk * n + j0));
                for (ii, c) in acc.iter_mut().enumerate() {
                    let a = _mm512_set1_ps(*ap.add(ii * k + kk));
                    *c = _mm512_add_ps(*c, _mm512_mul_ps(a, b0));
                }
            }
            for (ii, c) in acc.iter().enumerate() {
                _mm512_storeu_ps(op.add((i0 + ii) * n + j0), *c);
            }
            j0 += 16;
        }
        matmul_panel_tail(apanel, bv, out, i0, j0, k, n);
    }

    /// AVX2 panel kernel: `MR` rows × 16 columns per tile (8 ymm
    /// accumulators), then 8-wide, then the scalar tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx2` is available plus the slice bounds of
    /// [`matmul_panel_avx512`], and the panel contains no zeros.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_panel_avx2(
        apanel: &[f32],
        bv: &[f32],
        out: &mut [f32],
        i0: usize,
        k: usize,
        n: usize,
    ) {
        let ap = apanel.as_ptr();
        let bp = bv.as_ptr();
        let op = out.as_mut_ptr();
        let mut j0 = 0;
        while j0 + 16 <= n {
            let mut acc = [_mm256_setzero_ps(); 2 * MR];
            for kk in 0..k {
                let base = bp.add(kk * n + j0);
                let b0 = _mm256_loadu_ps(base);
                let b1 = _mm256_loadu_ps(base.add(8));
                for ii in 0..MR {
                    let a = _mm256_set1_ps(*ap.add(ii * k + kk));
                    acc[2 * ii] = _mm256_add_ps(acc[2 * ii], _mm256_mul_ps(a, b0));
                    acc[2 * ii + 1] = _mm256_add_ps(acc[2 * ii + 1], _mm256_mul_ps(a, b1));
                }
            }
            for ii in 0..MR {
                let dst = op.add((i0 + ii) * n + j0);
                _mm256_storeu_ps(dst, acc[2 * ii]);
                _mm256_storeu_ps(dst.add(8), acc[2 * ii + 1]);
            }
            j0 += 16;
        }
        while j0 + 8 <= n {
            let mut acc = [_mm256_setzero_ps(); MR];
            for kk in 0..k {
                let b0 = _mm256_loadu_ps(bp.add(kk * n + j0));
                for (ii, c) in acc.iter_mut().enumerate() {
                    let a = _mm256_set1_ps(*ap.add(ii * k + kk));
                    *c = _mm256_add_ps(*c, _mm256_mul_ps(a, b0));
                }
            }
            for (ii, c) in acc.iter().enumerate() {
                _mm256_storeu_ps(op.add((i0 + ii) * n + j0), *c);
            }
            j0 += 8;
        }
        matmul_panel_tail(apanel, bv, out, i0, j0, k, n);
    }

    /// Scalar tail columns of a zero-free panel: per element one serial
    /// k-chain (no skip can fire — the panel was prescanned).
    #[inline]
    fn matmul_panel_tail(
        apanel: &[f32],
        bv: &[f32],
        out: &mut [f32],
        i0: usize,
        j0: usize,
        k: usize,
        n: usize,
    ) {
        for ii in 0..MR {
            for j in j0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += apanel[ii * k + kk] * bv[kk * n + j];
                }
                out[(i0 + ii) * n + j] = acc;
            }
        }
    }

    /// AVX2 `MR × NR` tile of the `A·Bᵀ` kernel over a transposed B
    /// panel (also used by the AVX-512 path — `NR == 8` fits one ymm).
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx2` is available, `apanel.len() == MR*k`,
    /// `tbuf.len() >= k*NR`, and `out.len() >= (i0+MR)*n` with
    /// `j0 + NR <= n`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn a_bt_tile_avx2(
        apanel: &[f32],
        tbuf: &[f32],
        out: &mut [f32],
        i0: usize,
        j0: usize,
        k: usize,
        n: usize,
    ) {
        let ap = apanel.as_ptr();
        let tp = tbuf.as_ptr();
        let mut acc = [_mm256_setzero_ps(); MR];
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(tp.add(kk * NR));
            for (ii, c) in acc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(*ap.add(ii * k + kk));
                *c = _mm256_add_ps(*c, _mm256_mul_ps(a, b0));
            }
        }
        for (ii, c) in acc.iter().enumerate() {
            _mm256_storeu_ps(out.as_mut_ptr().add((i0 + ii) * n + j0), *c);
        }
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.ndim(), 2, "{what} must be 2-D, got {:?}", t.shape());
    (t.shape()[0], t.shape()[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Vec<f32> {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    out[i * n + j] += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn matches_naive() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32 * 0.5).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|x| (x as f32).sin()).collect(), &[4, 5]);
        let c = matmul(&a, &b);
        let n = naive(&a, &b);
        for (x, y) in c.as_slice().iter().zip(n.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_variants_agree() {
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..12).map(|x| x as f32 + 1.0).collect(), &[3, 4]);
        // Aᵀ·B : [4,3]·[3,4] -> [4,4]
        let c1 = matmul_at_b(&a, &b);
        // Compare against explicit transpose.
        let mut at = Tensor::zeros(&[4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                *at.at_mut(&[j, i]) = a.at(&[i, j]);
            }
        }
        let c2 = matmul(&at, &b);
        assert_eq!(c1, c2);

        // A·Bᵀ : [3,4]·[4,3] -> [3,3]
        let d1 = matmul_a_bt(&a, &b);
        let mut bt = Tensor::zeros(&[4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                *bt.at_mut(&[j, i]) = b.at(&[i, j]);
            }
        }
        let d2 = matmul(&a, &bt);
        for (x, y) in d1.as_slice().iter().zip(d2.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        matmul(&a, &b);
    }

    #[test]
    fn blocked_kernels_handle_empty_dims() {
        for (ashape, bshape) in [([0, 3], [3, 2]), ([2, 0], [0, 3]), ([2, 3], [3, 0])] {
            let a = Tensor::zeros(&ashape);
            let b = Tensor::zeros(&bshape);
            let c = matmul_blocked(&a, &b);
            assert_eq!(c.shape(), &[ashape[0], bshape[1]]);
            assert_eq!(c, matmul_reference(&a, &b));
        }
        // Aᵀ·B and A·Bᵀ with an empty shared dim produce all-zero output.
        let a = Tensor::zeros(&[0, 2]);
        let b = Tensor::zeros(&[0, 3]);
        assert_eq!(matmul_at_b_blocked(&a, &b), matmul_at_b_reference(&a, &b));
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[3, 0]);
        assert_eq!(matmul_a_bt_blocked(&a, &b), matmul_a_bt_reference(&a, &b));
    }

    #[test]
    fn portable_paths_match_reference_bitwise() {
        // The portable microkernels are exercised regardless of the
        // machine's SIMD support: drive them directly on shapes that
        // hit full tiles, ragged edges, and the staging paths.
        let fill = |rows: usize, cols: usize, seed: u64| {
            let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
            let data: Vec<f32> = (0..rows * cols)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                })
                .collect();
            Tensor::from_vec(data, &[rows, cols])
        };
        for (m, k, n) in [(4, 5, 8), (4, 3, 11), (9, 4, 8), (12, 7, 19)] {
            let a = fill(m, k, 1);
            let b = fill(k, n, 2);
            let mut out = vec![0.0f32; m * n];
            let mut i0 = 0;
            while i0 + MR <= m {
                matmul_panel_portable(
                    &a.as_slice()[i0 * k..(i0 + MR) * k],
                    b.as_slice(),
                    &mut out,
                    i0,
                    k,
                    n,
                );
                i0 += MR;
            }
            for i in i0..m {
                matmul_row_reference(
                    &a.as_slice()[i * k..(i + 1) * k],
                    b.as_slice(),
                    &mut out[i * n..(i + 1) * n],
                );
            }
            let want = matmul_reference(&a, &b);
            for (x, y) in out.iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n}");
            }
        }
    }
}
