//! Pooling kernels: max, average and global-average, with backward
//! passes. All inputs are NCHW.

use crate::Tensor;

/// Max pooling with a square window and equal stride.
///
/// Returns the pooled output `[n, c, oh, ow]` and the flat argmax
/// indices (into the input buffer) needed by
/// [`max_pool2d_backward`].
///
/// # Panics
///
/// Panics if the input is not 4-D or not divisible by the window.
pub fn max_pool2d_forward(x: &Tensor, window: usize) -> (Tensor, Vec<usize>) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "max_pool expects NCHW");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert!(
        h % window == 0 && w % window == 0,
        "pool window {window} must divide {h}x{w}"
    );
    let (oh, ow) = (h / window, w / window);
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    let xv = x.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for di in 0..window {
                        for dj in 0..window {
                            let idx = base + (oi * window + di) * w + oj * window + dj;
                            if xv[idx] > best {
                                best = xv[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[obase + oi * ow + oj] = best;
                    arg[obase + oi * ow + oj] = best_idx;
                }
            }
        }
    }
    (Tensor::from_vec(out, &[n, c, oh, ow]), arg)
}

/// Backward of [`max_pool2d_forward`]: routes each output gradient to
/// the argmax position.
pub fn max_pool2d_backward(dy: &Tensor, argmax: &[usize], in_shape: &[usize]) -> Tensor {
    let mut dx = vec![0.0f32; in_shape.iter().product()];
    for (g, &idx) in dy.as_slice().iter().zip(argmax.iter()) {
        dx[idx] += g;
    }
    Tensor::from_vec(dx, in_shape)
}

/// Average pooling with a square window and equal stride.
///
/// # Panics
///
/// Panics if the input is not 4-D or not divisible by the window.
pub fn avg_pool2d_forward(x: &Tensor, window: usize) -> Tensor {
    let s = x.shape();
    assert_eq!(s.len(), 4, "avg_pool expects NCHW");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert!(h % window == 0 && w % window == 0);
    let (oh, ow) = (h / window, w / window);
    let inv = 1.0 / (window * window) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let xv = x.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0;
                    for di in 0..window {
                        for dj in 0..window {
                            acc += xv[base + (oi * window + di) * w + oj * window + dj];
                        }
                    }
                    out[obase + oi * ow + oj] = acc * inv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward of [`avg_pool2d_forward`].
pub fn avg_pool2d_backward(dy: &Tensor, window: usize, in_shape: &[usize]) -> Tensor {
    let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
    let (oh, ow) = (h / window, w / window);
    let inv = 1.0 / (window * window) as f32;
    let mut dx = vec![0.0f32; n * c * h * w];
    let dyv = dy.as_slice();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = dyv[obase + oi * ow + oj] * inv;
                    for di in 0..window {
                        for dj in 0..window {
                            dx[base + (oi * window + di) * w + oj * window + dj] += g;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(dx, in_shape)
}

/// Global average pooling `[n, c, h, w] → [n, c]`.
pub fn global_avg_pool_forward(x: &Tensor) -> Tensor {
    let s = x.shape();
    assert_eq!(s.len(), 4, "global_avg_pool expects NCHW");
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    let inv = 1.0 / (h * w) as f32;
    let mut out = vec![0.0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            out[ni * c + ci] = x.as_slice()[base..base + h * w].iter().sum::<f32>() * inv;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward of [`global_avg_pool_forward`]; `dy` has shape `[n, c]`.
pub fn global_avg_pool_backward(dy: &Tensor, in_shape: &[usize]) -> Tensor {
    let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
    let inv = 1.0 / (h * w) as f32;
    let mut dx = vec![0.0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let g = dy.as_slice()[ni * c + ci] * inv;
            let base = (ni * c + ci) * h * w;
            for v in &mut dx[base..base + h * w] {
                *v = g;
            }
        }
    }
    Tensor::from_vec(dx, in_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maxima() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, arg) = max_pool2d_forward(&x, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (y, arg) = max_pool2d_forward(&x, 2);
        let dy = Tensor::ones(y.shape());
        let dx = max_pool2d_backward(&dy, &arg, x.shape());
        assert_eq!(dx.sum(), 4.0);
        assert_eq!(dx.at(&[0, 0, 1, 1]), 1.0); // position of 6
        assert_eq!(dx.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn avg_pool_averages() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d_forward(&x, 2);
        assert_eq!(y.as_slice(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_backward_distributes_evenly() {
        let in_shape = [1, 1, 4, 4];
        let dy = Tensor::from_vec(vec![4.0, 8.0, 12.0, 16.0], &[1, 1, 2, 2]);
        let dx = avg_pool2d_backward(&dy, 2, &in_shape);
        assert_eq!(dx.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(dx.at(&[0, 0, 3, 3]), 4.0);
        assert_eq!(dx.sum(), dy.sum());
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = global_avg_pool_forward(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
        let dy = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let dx = global_avg_pool_backward(&dy, x.shape());
        assert_eq!(dx.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(dx.at(&[0, 1, 1, 1]), 2.0);
    }
}
