//! im2col-based 2-D convolution, forward and backward.
//!
//! Input layout is NCHW. The convolution is lowered to a matrix product
//! per sample: `out[n] = W₂d · cols(x[n]) + b`, where `cols` unfolds
//! every receptive field into a column.

use crate::ops::matmul::{matmul, matmul_a_bt, matmul_at_b};
use crate::Tensor;

/// Static geometry of a convolution: kernel, stride, padding and the
/// derived output size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same on both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeometry {
    /// Output spatial size for an input of `h × w`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.pad;
        let pw = w + 2 * self.pad;
        assert!(
            ph >= self.kh && pw >= self.kw,
            "kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            ph,
            pw
        );
        (
            (ph - self.kh) / self.stride + 1,
            (pw - self.kw) / self.stride + 1,
        )
    }
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, shape `[n, c_in, h, w]`.
    pub dx: Tensor,
    /// Gradient w.r.t. the weight, shape `[c_out, c_in, kh, kw]`.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias, shape `[c_out]`.
    pub db: Tensor,
}

/// Unfolds one sample `[c, h, w]` into a column matrix
/// `[c·kh·kw, oh·ow]`.
pub fn im2col(x: &[f32], c: usize, h: usize, w: usize, geo: ConvGeometry) -> Tensor {
    let (oh, ow) = geo.out_hw(h, w);
    let rows = c * geo.kh * geo.kw;
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    for ci in 0..c {
        for ki in 0..geo.kh {
            for kj in 0..geo.kw {
                let row = (ci * geo.kh + ki) * geo.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * geo.stride + ki) as isize - geo.pad as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    let src_row = ci * h * w + ii as usize * w;
                    let dst_row = row * cols + oi * ow;
                    for oj in 0..ow {
                        let jj = (oj * geo.stride + kj) as isize - geo.pad as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        out[dst_row + oj] = x[src_row + jj as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Folds a column matrix `[c·kh·kw, oh·ow]` back into a sample
/// `[c, h, w]`, summing overlapping contributions (adjoint of
/// [`im2col`]).
pub fn col2im(cols_t: &Tensor, c: usize, h: usize, w: usize, geo: ConvGeometry) -> Vec<f32> {
    let (oh, ow) = geo.out_hw(h, w);
    let cols = oh * ow;
    let src = cols_t.as_slice();
    let mut out = vec![0.0f32; c * h * w];
    for ci in 0..c {
        for ki in 0..geo.kh {
            for kj in 0..geo.kw {
                let row = (ci * geo.kh + ki) * geo.kw + kj;
                for oi in 0..oh {
                    let ii = (oi * geo.stride + ki) as isize - geo.pad as isize;
                    if ii < 0 || ii as usize >= h {
                        continue;
                    }
                    let dst_row = ci * h * w + ii as usize * w;
                    let src_row = row * cols + oi * ow;
                    for oj in 0..ow {
                        let jj = (oj * geo.stride + kj) as isize - geo.pad as isize;
                        if jj < 0 || jj as usize >= w {
                            continue;
                        }
                        out[dst_row + jj as usize] += src[src_row + oj];
                    }
                }
            }
        }
    }
    out
}

/// Forward 2-D convolution.
///
/// * `x` — input `[n, c_in, h, w]`
/// * `weight` — `[c_out, c_in, kh, kw]`
/// * `bias` — `[c_out]`
///
/// Returns the output `[n, c_out, oh, ow]` and the cached column
/// matrices (one per sample) needed by [`conv2d_backward`].
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_forward(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    geo: ConvGeometry,
) -> (Tensor, Vec<Tensor>) {
    let (n, c_in, h, w) = nchw(x);
    let ws = weight.shape();
    assert_eq!(ws.len(), 4, "conv weight must be 4-D");
    let (c_out, wc_in, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
    assert_eq!(c_in, wc_in, "conv in-channel mismatch");
    assert_eq!((kh, kw), (geo.kh, geo.kw), "kernel/geometry mismatch");
    assert_eq!(bias.numel(), c_out, "bias size mismatch");
    let (oh, ow) = geo.out_hw(h, w);
    let w2d = weight.reshape(&[c_out, c_in * kh * kw]);
    let mut out = vec![0.0f32; n * c_out * oh * ow];
    let mut caches = Vec::with_capacity(n);
    let bslice = bias.as_slice();
    for ni in 0..n {
        let sample = &x.as_slice()[ni * c_in * h * w..(ni + 1) * c_in * h * w];
        let cols = im2col(sample, c_in, h, w, geo);
        let y = matmul(&w2d, &cols); // [c_out, oh*ow]
        let dst = &mut out[ni * c_out * oh * ow..(ni + 1) * c_out * oh * ow];
        for co in 0..c_out {
            let b = bslice[co];
            let src = &y.as_slice()[co * oh * ow..(co + 1) * oh * ow];
            let d = &mut dst[co * oh * ow..(co + 1) * oh * ow];
            for (o, &v) in d.iter_mut().zip(src) {
                *o = v + b;
            }
        }
        caches.push(cols);
    }
    (Tensor::from_vec(out, &[n, c_out, oh, ow]), caches)
}

/// Backward 2-D convolution given the forward column caches.
///
/// `dy` has shape `[n, c_out, oh, ow]`.
///
/// # Panics
///
/// Panics on shape inconsistency with the forward pass.
pub fn conv2d_backward(
    dy: &Tensor,
    weight: &Tensor,
    caches: &[Tensor],
    in_shape: &[usize],
    geo: ConvGeometry,
) -> Conv2dGrads {
    let (n, c_out, oh, ow) = nchw(dy);
    let (_, c_in, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
    assert_eq!(caches.len(), n, "cache count mismatch");
    let ws = weight.shape().to_vec();
    let w2d = weight.reshape(&[c_out, ws[1] * ws[2] * ws[3]]);
    let mut dw2d = Tensor::zeros(&[c_out, ws[1] * ws[2] * ws[3]]);
    let mut db = Tensor::zeros(&[c_out]);
    let mut dx = vec![0.0f32; n * c_in * h * w];
    for ni in 0..n {
        let dyn_ = Tensor::from_vec(
            dy.as_slice()[ni * c_out * oh * ow..(ni + 1) * c_out * oh * ow].to_vec(),
            &[c_out, oh * ow],
        );
        // dW += dY · colsᵀ
        let contrib = matmul_a_bt(&dyn_, &caches[ni]);
        dw2d.add_assign(&contrib);
        // db += row sums of dY
        for co in 0..c_out {
            let s: f32 = dyn_.as_slice()[co * oh * ow..(co + 1) * oh * ow]
                .iter()
                .sum();
            db.as_mut_slice()[co] += s;
        }
        // dcols = Wᵀ · dY, then fold back.
        let dcols = matmul_at_b(&w2d, &dyn_);
        let dxi = col2im(&dcols, c_in, h, w, geo);
        dx[ni * c_in * h * w..(ni + 1) * c_in * h * w].copy_from_slice(&dxi);
    }
    Conv2dGrads {
        dx: Tensor::from_vec(dx, &[n, c_in, h, w]),
        dw: dw2d.reshape(&ws),
        db,
    }
}

fn nchw(t: &Tensor) -> (usize, usize, usize, usize) {
    let s = t.shape();
    assert_eq!(s.len(), 4, "expected NCHW tensor, got {:?}", s);
    (s[0], s[1], s[2], s[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo3() -> ConvGeometry {
        ConvGeometry {
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn out_size_same_padding() {
        assert_eq!(geo3().out_hw(8, 8), (8, 8));
        let g2 = ConvGeometry {
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
        };
        assert_eq!(g2.out_hw(8, 8), (4, 4));
        let g1 = ConvGeometry {
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        assert_eq!(g1.out_hw(5, 7), (5, 7));
    }

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1 reproduces the input channel.
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let b = Tensor::zeros(&[1]);
        let g = ConvGeometry {
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let (y, _) = conv2d_forward(&x, &w, &b, g);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn averaging_kernel_matches_hand_computation() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::full(&[1, 1, 3, 3], 1.0 / 9.0);
        let b = Tensor::zeros(&[1]);
        let (y, _) = conv2d_forward(&x, &w, &b, geo3());
        // Centre pixel sees all nine ones.
        assert!((y.at(&[0, 0, 1, 1]) - 1.0).abs() < 1e-6);
        // Corner sees four ones (rest padding).
        assert!((y.at(&[0, 0, 0, 0]) - 4.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let x = Tensor::zeros(&[2, 1, 2, 2]);
        let w = Tensor::zeros(&[3, 1, 1, 1]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let g = ConvGeometry {
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let (y, _) = conv2d_forward(&x, &w, &b, g);
        assert_eq!(y.at(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.at(&[1, 2, 1, 1]), 3.0);
    }

    /// Finite-difference check of the full backward pass.
    #[test]
    fn gradients_match_finite_differences() {
        let geo = ConvGeometry {
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let n = 2;
        let (c_in, h, w_) = (2, 4, 4);
        let c_out = 3;
        let mk = |len: usize, seed: f32| -> Vec<f32> {
            (0..len)
                .map(|i| (i as f32 * 12.9898 + seed).sin() * 0.5)
                .collect()
        };
        let x = Tensor::from_vec(mk(n * c_in * h * w_, 1.0), &[n, c_in, h, w_]);
        let wt = Tensor::from_vec(mk(c_out * c_in * 9, 2.0), &[c_out, c_in, 3, 3]);
        let b = Tensor::from_vec(mk(c_out, 3.0), &[c_out]);

        // Loss = sum(conv(x)) so dy = ones.
        let loss =
            |x: &Tensor, wt: &Tensor, b: &Tensor| -> f32 { conv2d_forward(x, wt, b, geo).0.sum() };
        let (y, caches) = conv2d_forward(&x, &wt, &b, geo);
        let dy = Tensor::ones(y.shape());
        let grads = conv2d_backward(&dy, &wt, &caches, x.shape(), geo);

        let eps = 1e-2f32;
        // Check a scattering of weight gradient entries.
        for &idx in &[0usize, 5, 17, 30, c_out * c_in * 9 - 1] {
            let mut wp = wt.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = wt.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            let ana = grads.dw.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "dW[{idx}] numeric {num} vs analytic {ana}"
            );
        }
        // Bias gradient entries.
        for idx in 0..c_out {
            let mut bp = b.clone();
            bp.as_mut_slice()[idx] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[idx] -= eps;
            let num = (loss(&x, &wt, &bp) - loss(&x, &wt, &bm)) / (2.0 * eps);
            let ana = grads.db.as_slice()[idx];
            assert!((num - ana).abs() < 0.05 * (1.0 + ana.abs()));
        }
        // Input gradient entries.
        for &idx in &[0usize, 7, 20, n * c_in * h * w_ - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(&xp, &wt, &b) - loss(&xm, &wt, &b)) / (2.0 * eps);
            let ana = grads.dx.as_slice()[idx];
            assert!((num - ana).abs() < 0.05 * (1.0 + ana.abs()));
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let geo = ConvGeometry {
            kh: 3,
            kw: 3,
            stride: 2,
            pad: 1,
        };
        let (c, h, w) = (2, 5, 5);
        let x: Vec<f32> = (0..c * h * w).map(|i| (i as f32 * 0.37).cos()).collect();
        let cols = im2col(&x, c, h, w, geo);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| (i as f32 * 0.11).sin()).collect(),
            cols.shape(),
        );
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let folded = col2im(&y, c, h, w, geo);
        let rhs: f32 = x.iter().zip(folded.iter()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
