//! Row-wise softmax / log-softmax used by the classification losses.

use crate::Tensor;

/// Numerically stable row-wise softmax of a `[rows, cols]` tensor.
///
/// # Panics
///
/// Panics if the input is not 2-D.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let ls = log_softmax_rows(logits);
    ls.map(f32::exp)
}

/// Numerically stable row-wise log-softmax of a `[rows, cols]` tensor.
///
/// # Panics
///
/// Panics if the input is not 2-D.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "log_softmax expects [rows, cols]");
    let (rows, cols) = (s[0], s[1]);
    let mut out = vec![0.0f32; rows * cols];
    let xv = logits.as_slice();
    for r in 0..rows {
        let row = &xv[r * cols..(r + 1) * cols];
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *o = x - lse;
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax_rows(&t);
        for r in 0..2 {
            let s: f32 = p.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        let pa = softmax_rows(&a);
        let pb = softmax_rows(&b);
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn handles_extreme_logits() {
        let t = Tensor::from_vec(vec![1000.0, 0.0, -1000.0], &[1, 3]);
        let p = softmax_rows(&t);
        assert!((p.as_slice()[0] - 1.0).abs() < 1e-5);
        assert!(p.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.3, 2.0, 1.0], &[1, 4]);
        let ls = log_softmax_rows(&t);
        let p = softmax_rows(&t);
        for (l, q) in ls.as_slice().iter().zip(p.as_slice()) {
            assert!((l.exp() - q).abs() < 1e-6);
        }
    }
}
