//! Prefix-block slicing used for nested submodel extraction.
//!
//! AdaptiveFL (like HeteroFL) builds heterogeneous submodels by taking a
//! *prefix* of the channels of every pruned layer: the pruned weight of a
//! layer is `W[:d·r_w][:n·r_w]`. A [`SliceSpec`] describes the prefix
//! block (one length per axis) and supports the three primitives the
//! federated engine needs:
//!
//! * [`SliceSpec::extract`] — copy the prefix block out of a full tensor,
//! * [`SliceSpec::embed`] — write a block back into a full tensor,
//! * [`SliceSpec::scatter_add`] — accumulate a weighted block and bump a
//!   per-element coverage count (Algorithm 2 of the paper).

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// A prefix block of a tensor: on every axis `d`, the range `0..dims[d]`.
///
/// # Example
///
/// ```
/// use adaptivefl_tensor::{SliceSpec, Tensor};
///
/// let full = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
/// let spec = SliceSpec::new(vec![2, 2]);
/// let block = spec.extract(&full);
/// assert_eq!(block.as_slice(), &[0.0, 1.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SliceSpec {
    dims: Vec<usize>,
}

impl SliceSpec {
    /// Creates a prefix block with the given per-axis lengths.
    pub fn new(dims: Vec<usize>) -> Self {
        SliceSpec { dims }
    }

    /// A spec selecting the whole of `shape`.
    pub fn full(shape: &[usize]) -> Self {
        SliceSpec {
            dims: shape.to_vec(),
        }
    }

    /// The per-axis lengths of the block.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements in the block.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` if this block covers all of `shape`.
    pub fn covers(&self, shape: &[usize]) -> bool {
        self.dims == shape
    }

    /// Returns `true` if the block fits inside `shape`.
    pub fn fits_in(&self, shape: &[usize]) -> bool {
        self.dims.len() == shape.len() && self.dims.iter().zip(shape).all(|(&d, &s)| d <= s)
    }

    /// Returns `true` if this block is elementwise contained in `other`
    /// (nesting property of width-pruned submodels).
    pub fn nested_in(&self, other: &SliceSpec) -> bool {
        self.dims.len() == other.dims.len()
            && self.dims.iter().zip(&other.dims).all(|(&a, &b)| a <= b)
    }

    /// Iterates over the linear offsets of the block inside a tensor of
    /// shape `shape`, in the block's own row-major order.
    fn for_each_offset(&self, shape: &[usize], mut f: impl FnMut(usize)) {
        assert!(
            self.fits_in(shape),
            "slice {:?} does not fit in shape {:?}",
            self.dims,
            shape
        );
        let rank = shape.len();
        if rank == 0 || self.numel() == 0 {
            return;
        }
        let mut strides = vec![1usize; rank];
        for i in (0..rank - 1).rev() {
            strides[i] = strides[i + 1] * shape[i + 1];
        }
        let mut idx = vec![0usize; rank];
        loop {
            let off: usize = idx.iter().zip(&strides).map(|(&i, &s)| i * s).sum();
            f(off);
            // Advance the multi-index within the block bounds.
            let mut d = rank;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.dims[d] {
                    break;
                }
                idx[d] = 0;
                if d == 0 {
                    return;
                }
            }
        }
    }

    /// Copies the prefix block out of `full` into a new tensor with the
    /// block's shape.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit inside `full`'s shape.
    pub fn extract(&self, full: &Tensor) -> Tensor {
        let mut out = Vec::with_capacity(self.numel());
        let src = full.as_slice();
        self.for_each_offset(full.shape(), |off| out.push(src[off]));
        Tensor::from_vec(out, &self.dims)
    }

    /// Writes `block` into the prefix region of `full`, overwriting it.
    ///
    /// # Panics
    ///
    /// Panics if `block`'s shape differs from the spec or the spec does
    /// not fit inside `full`.
    pub fn embed(&self, block: &Tensor, full: &mut Tensor) {
        assert_eq!(block.shape(), self.dims.as_slice(), "block shape mismatch");
        let shape = full.shape().to_vec();
        let dst = full.as_mut_slice();
        let src = block.as_slice();
        let mut i = 0usize;
        self.for_each_offset(&shape, |off| {
            dst[off] = src[i];
            i += 1;
        });
    }

    /// Accumulates `weight * block` into `acc` and adds `weight` to the
    /// per-element coverage `count` — the inner loop of the paper's
    /// Algorithm 2 (heterogeneous aggregation).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn scatter_add(&self, block: &Tensor, weight: f32, acc: &mut Tensor, count: &mut Tensor) {
        assert_eq!(block.shape(), self.dims.as_slice(), "block shape mismatch");
        assert_eq!(acc.shape(), count.shape(), "acc/count shape mismatch");
        let shape = acc.shape().to_vec();
        let accs = acc.as_mut_slice();
        let counts = count.as_mut_slice();
        let src = block.as_slice();
        let mut i = 0usize;
        self.for_each_offset(&shape, |off| {
            accs[off] += weight * src[i];
            counts[off] += weight;
            i += 1;
        });
    }
}

impl std::fmt::Display for SliceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SliceSpec{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_prefix_block_2d() {
        let full = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let spec = SliceSpec::new(vec![2, 3]);
        let block = spec.extract(&full);
        assert_eq!(block.shape(), &[2, 3]);
        assert_eq!(block.as_slice(), &[0.0, 1.0, 2.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn extract_full_is_identity() {
        let full = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]);
        let spec = SliceSpec::full(full.shape());
        assert_eq!(spec.extract(&full), full);
    }

    #[test]
    fn embed_roundtrips() {
        let mut full = Tensor::zeros(&[3, 4]);
        let block = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let spec = SliceSpec::new(vec![2, 2]);
        spec.embed(&block, &mut full);
        assert_eq!(spec.extract(&full), block);
        // Outside the block untouched.
        assert_eq!(full.at(&[2, 0]), 0.0);
        assert_eq!(full.at(&[0, 3]), 0.0);
    }

    #[test]
    fn scatter_add_counts_coverage() {
        let mut acc = Tensor::zeros(&[2, 2]);
        let mut cnt = Tensor::zeros(&[2, 2]);
        let b1 = Tensor::ones(&[1, 2]);
        let b2 = Tensor::ones(&[2, 1]);
        SliceSpec::new(vec![1, 2]).scatter_add(&b1, 3.0, &mut acc, &mut cnt);
        SliceSpec::new(vec![2, 1]).scatter_add(&b2, 1.0, &mut acc, &mut cnt);
        // Overlap at (0,0): acc 4, cnt 4. (0,1): 3/3. (1,0): 1/1. (1,1): 0/0.
        assert_eq!(acc.as_slice(), &[4.0, 3.0, 1.0, 0.0]);
        assert_eq!(cnt.as_slice(), &[4.0, 3.0, 1.0, 0.0]);
    }

    #[test]
    fn nested_in_is_partial_order() {
        let a = SliceSpec::new(vec![2, 2]);
        let b = SliceSpec::new(vec![3, 4]);
        let c = SliceSpec::new(vec![2, 5]);
        assert!(a.nested_in(&b));
        assert!(!b.nested_in(&a));
        assert!(!c.nested_in(&b));
        assert!(a.nested_in(&a));
    }

    #[test]
    fn empty_block_is_noop() {
        let full = Tensor::ones(&[2, 2]);
        let spec = SliceSpec::new(vec![0, 2]);
        let block = spec.extract(&full);
        assert_eq!(block.numel(), 0);
    }

    #[test]
    fn four_dim_conv_weight_slice() {
        // Conv weight [out=4, in=3, kh=2, kw=2], take out=2, in=2.
        let full = Tensor::from_vec((0..48).map(|x| x as f32).collect(), &[4, 3, 2, 2]);
        let spec = SliceSpec::new(vec![2, 2, 2, 2]);
        let block = spec.extract(&full);
        assert_eq!(block.shape(), &[2, 2, 2, 2]);
        // First element of out-channel 1, in-channel 1 is at offset 12+4=16.
        assert_eq!(block.at(&[1, 1, 0, 0]), 16.0);
    }
}
