//! Device classes and per-device simulation state.

use serde::{Deserialize, Serialize};

use crate::dynamics::ResourceDynamics;
use crate::latency::LatencyModel;

/// The paper's three device classes (Table 5): weak devices can only
/// train small models, medium devices small or medium models, strong
/// devices any model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// e.g. Raspberry Pi 4B — fits only S-level models.
    Weak,
    /// e.g. Jetson Nano — fits S and M.
    Medium,
    /// e.g. Jetson Xavier AGX — fits everything.
    Strong,
}

impl DeviceClass {
    /// Baseline capacity as a fraction of the full model's parameter
    /// count. Chosen so that, with the paper's level ratios
    /// (L=1.0, M≈0.5, S≈0.25), weak fits only S, medium fits S/M, and
    /// strong fits all levels.
    pub fn capacity_fraction(self) -> f64 {
        match self {
            DeviceClass::Weak => 0.30,
            DeviceClass::Medium => 0.55,
            DeviceClass::Strong => 1.05,
        }
    }

    /// Default latency profile for the class (see
    /// [`testbed`](crate::testbed) for calibrated presets).
    pub fn default_latency(self) -> LatencyModel {
        match self {
            DeviceClass::Weak => LatencyModel::new(5.0e9, 6.0e6),
            DeviceClass::Medium => LatencyModel::new(4.0e10, 12.0e6),
            DeviceClass::Strong => LatencyModel::new(3.0e11, 25.0e6),
        }
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceClass::Weak => "weak",
            DeviceClass::Medium => "medium",
            DeviceClass::Strong => "strong",
        };
        f.write_str(s)
    }
}

/// One simulated AIoT device.
///
/// The capacity at round `t` is `base · fluctuation(t)`, where the
/// fluctuation is produced deterministically by the device's
/// [`ResourceDynamics`] — the FL server never reads it directly (the
/// paper's privacy constraint); only the client-side pruning does.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSim {
    id: usize,
    class: DeviceClass,
    base_capacity: u64,
    dynamics: ResourceDynamics,
    latency: LatencyModel,
    seed: u64,
    /// Per-round probability that the device is reachable (1.0 =
    /// always online).
    #[serde(default = "default_availability")]
    availability: f64,
}

fn default_availability() -> f64 {
    1.0
}

impl DeviceSim {
    /// Creates a device with an explicit base capacity (in parameter
    /// elements).
    pub fn new(
        id: usize,
        class: DeviceClass,
        base_capacity: u64,
        dynamics: ResourceDynamics,
        seed: u64,
    ) -> Self {
        DeviceSim {
            id,
            class,
            base_capacity,
            dynamics,
            latency: class.default_latency(),
            seed,
            availability: 1.0,
        }
    }

    /// Creates a device whose capacity is the class fraction of
    /// `full_model_params`.
    pub fn from_class(
        id: usize,
        class: DeviceClass,
        full_model_params: u64,
        dynamics: ResourceDynamics,
        seed: u64,
    ) -> Self {
        let cap = (full_model_params as f64 * class.capacity_fraction()).round() as u64;
        Self::new(id, class, cap, dynamics, seed)
    }

    /// Overrides the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the per-round online probability.
    ///
    /// # Panics
    ///
    /// Panics unless `availability` is in `(0, 1]`.
    pub fn with_availability(mut self, availability: f64) -> Self {
        assert!(
            availability > 0.0 && availability <= 1.0,
            "availability must be in (0, 1]"
        );
        self.availability = availability;
        self
    }

    /// Whether the device is reachable in `round` (deterministic per
    /// seed/id/round; independent of the capacity stream).
    pub fn available_at(&self, round: usize) -> bool {
        if self.availability >= 1.0 {
            return true;
        }
        use rand::{Rng, SeedableRng};
        let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(
            self.seed.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (self.id as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ (round as u64).rotate_left(17),
        );
        r.gen::<f64>() < self.availability
    }

    /// Device identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Device class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Baseline capacity in parameter elements.
    pub fn base_capacity(&self) -> u64 {
        self.base_capacity
    }

    /// The latency model.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Available capacity (parameter elements) at round `t` — the `Γ`
    /// of the paper's available-resource-aware pruning.
    pub fn capacity_at(&self, round: usize) -> u64 {
        let f = self
            .dynamics
            .factor(self.seed ^ (self.id as u64).wrapping_mul(0x9E37), round);
        (self.base_capacity as f64 * f).round() as u64
    }

    /// Wall-clock seconds to train locally (`macs` MACs total over all
    /// samples/epochs) and exchange `bytes_down + bytes_up` bytes.
    pub fn round_time(&self, macs: u64, bytes_down: u64, bytes_up: u64) -> f64 {
        self.latency.compute_secs(macs) + self.latency.comm_secs(bytes_down + bytes_up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_fractions_are_ordered() {
        assert!(DeviceClass::Weak.capacity_fraction() < DeviceClass::Medium.capacity_fraction());
        assert!(DeviceClass::Medium.capacity_fraction() < DeviceClass::Strong.capacity_fraction());
    }

    #[test]
    fn static_capacity_is_constant() {
        let d = DeviceSim::from_class(
            3,
            DeviceClass::Medium,
            1_000_000,
            ResourceDynamics::Static,
            5,
        );
        assert_eq!(d.capacity_at(0), d.capacity_at(17));
        assert_eq!(d.capacity_at(0), 550_000);
    }

    #[test]
    fn strong_fits_full_model() {
        let d = DeviceSim::from_class(
            0,
            DeviceClass::Strong,
            1_000_000,
            ResourceDynamics::Static,
            5,
        );
        assert!(d.capacity_at(0) >= 1_000_000);
    }

    #[test]
    fn round_time_monotone_in_work() {
        let d = DeviceSim::from_class(0, DeviceClass::Weak, 1000, ResourceDynamics::Static, 1);
        assert!(d.round_time(2_000_000, 1000, 1000) > d.round_time(1_000_000, 1000, 1000));
        assert!(d.round_time(1_000_000, 2000, 2000) > d.round_time(1_000_000, 1000, 1000));
    }
}

#[cfg(test)]
mod availability_tests {
    use super::*;

    #[test]
    fn full_availability_is_always_online() {
        let d = DeviceSim::from_class(0, DeviceClass::Weak, 1000, ResourceDynamics::Static, 1);
        assert!((0..100).all(|t| d.available_at(t)));
    }

    #[test]
    fn partial_availability_drops_roughly_proportionally() {
        let d = DeviceSim::from_class(1, DeviceClass::Medium, 1000, ResourceDynamics::Static, 2)
            .with_availability(0.7);
        let online = (0..1000).filter(|&t| d.available_at(t)).count();
        assert!((600..800).contains(&online), "online {online}/1000");
    }

    #[test]
    fn availability_is_deterministic_and_device_specific() {
        let mk = |id| {
            DeviceSim::from_class(id, DeviceClass::Weak, 1000, ResourceDynamics::Static, 3)
                .with_availability(0.5)
        };
        let a = mk(0);
        let b = mk(1);
        let pat_a: Vec<bool> = (0..64).map(|t| a.available_at(t)).collect();
        let pat_a2: Vec<bool> = (0..64).map(|t| a.available_at(t)).collect();
        let pat_b: Vec<bool> = (0..64).map(|t| b.available_at(t)).collect();
        assert_eq!(pat_a, pat_a2);
        assert_ne!(pat_a, pat_b);
    }

    #[test]
    #[should_panic(expected = "availability must be in")]
    fn rejects_zero_availability() {
        let _ = DeviceSim::from_class(0, DeviceClass::Weak, 1000, ResourceDynamics::Static, 4)
            .with_availability(0.0);
    }
}
