//! The paper's real test-bed (Table 5), reproduced as calibrated
//! device presets: 4× Raspberry Pi 4B, 10× Jetson Nano, 3× Jetson
//! Xavier AGX.
//!
//! Throughput numbers are order-of-magnitude sustained training rates
//! for small CNNs on these boards (Pi: CPU-only; Nano: 128-core
//! Maxwell; Xavier: 512-core Volta), and bandwidths reflect a shared
//! Wi-Fi uplink. Only ratios matter for reproducing the *shape* of the
//! wall-clock learning curves in Figure 6.

use crate::dynamics::ResourceDynamics;
use crate::fleet::DeviceFleet;
use crate::latency::LatencyModel;
use crate::profile::{DeviceClass, DeviceSim};

/// Raspberry Pi 4B: ARM Cortex-A72, 2 GB — weak client.
pub fn raspberry_pi_4b(id: usize, full_model_params: u64, seed: u64) -> DeviceSim {
    DeviceSim::from_class(
        id,
        DeviceClass::Weak,
        full_model_params,
        ResourceDynamics::uncertain(),
        seed,
    )
    .with_latency(LatencyModel::new(2.0e9, 4.0e6))
}

/// Jetson Nano: 128-core Maxwell GPU, 8 GB — medium client.
pub fn jetson_nano(id: usize, full_model_params: u64, seed: u64) -> DeviceSim {
    DeviceSim::from_class(
        id,
        DeviceClass::Medium,
        full_model_params,
        ResourceDynamics::uncertain(),
        seed,
    )
    .with_latency(LatencyModel::new(2.5e10, 8.0e6))
}

/// Jetson Xavier AGX: 512-core NVIDIA GPU, 32 GB — strong client.
pub fn jetson_xavier_agx(id: usize, full_model_params: u64, seed: u64) -> DeviceSim {
    DeviceSim::from_class(
        id,
        DeviceClass::Strong,
        full_model_params,
        ResourceDynamics::uncertain(),
        seed,
    )
    .with_latency(LatencyModel::new(4.0e11, 15.0e6))
}

/// The full 17-client test-bed of the paper's Table 5:
/// 4 Pi 4B + 10 Jetson Nano + 3 Xavier AGX.
pub fn paper_testbed(full_model_params: u64, seed: u64) -> DeviceFleet {
    let mut devices = Vec::with_capacity(17);
    for i in 0..4 {
        devices.push(raspberry_pi_4b(i, full_model_params, seed));
    }
    for i in 4..14 {
        devices.push(jetson_nano(i, full_model_params, seed));
    }
    for i in 14..17 {
        devices.push(jetson_xavier_agx(i, full_model_params, seed));
    }
    DeviceFleet::new(devices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_table5_counts() {
        let fleet = paper_testbed(1_000_000, 1);
        assert_eq!(fleet.len(), 17);
        assert_eq!(fleet.class_counts(), (4, 10, 3));
    }

    #[test]
    fn xavier_is_much_faster_than_pi() {
        let pi = raspberry_pi_4b(0, 1_000_000, 1);
        let agx = jetson_xavier_agx(1, 1_000_000, 1);
        let work = 10_000_000_000u64;
        assert!(pi.round_time(work, 0, 0) > 50.0 * agx.round_time(work, 0, 0));
    }

    #[test]
    fn uncertain_dynamics_fluctuate() {
        let nano = jetson_nano(2, 1_000_000, 3);
        let caps: Vec<u64> = (0..30).map(|t| nano.capacity_at(t)).collect();
        let min = *caps.iter().min().expect("non-empty");
        let max = *caps.iter().max().expect("non-empty");
        assert!(max > min, "capacity never changed");
    }
}
