//! Resource fluctuation models — the "uncertain operating environment"
//! of the paper.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How a device's available resources change over rounds. All variants
/// are deterministic functions of `(seed, round)`, so replays are
/// exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResourceDynamics {
    /// Resources never change.
    Static,
    /// Capacity jitters uniformly in `[1-jitter, 1+jitter]` each round.
    Jitter {
        /// Relative jitter amplitude, e.g. `0.1` for ±10 %.
        jitter: f64,
    },
    /// Like `Jitter`, but with probability `drop_prob` the device is
    /// heavily loaded this round and only `drop_to` of its capacity is
    /// available (e.g. a co-located workload spike).
    Spiky {
        /// Baseline relative jitter.
        jitter: f64,
        /// Per-round probability of a load spike.
        drop_prob: f64,
        /// Remaining capacity fraction during a spike.
        drop_to: f64,
    },
}

impl ResourceDynamics {
    /// The paper-style uncertain environment: ±10 % jitter with
    /// occasional 40 %-capacity spikes.
    pub fn uncertain() -> Self {
        ResourceDynamics::Spiky {
            jitter: 0.10,
            drop_prob: 0.15,
            drop_to: 0.4,
        }
    }

    /// Multiplicative capacity factor for a round.
    pub fn factor(&self, seed: u64, round: usize) -> f64 {
        match *self {
            ResourceDynamics::Static => 1.0,
            ResourceDynamics::Jitter { jitter } => {
                let mut r = round_rng(seed, round);
                1.0 + jitter * (r.gen::<f64>() * 2.0 - 1.0)
            }
            ResourceDynamics::Spiky {
                jitter,
                drop_prob,
                drop_to,
            } => {
                let mut r = round_rng(seed, round);
                let base = 1.0 + jitter * (r.gen::<f64>() * 2.0 - 1.0);
                if r.gen::<f64>() < drop_prob {
                    base * drop_to
                } else {
                    base
                }
            }
        }
    }
}

fn round_rng(seed: u64, round: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ round as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_factor_is_one() {
        assert_eq!(ResourceDynamics::Static.factor(1, 0), 1.0);
        assert_eq!(ResourceDynamics::Static.factor(1, 99), 1.0);
    }

    #[test]
    fn jitter_stays_in_bounds_and_varies() {
        let d = ResourceDynamics::Jitter { jitter: 0.2 };
        let fs: Vec<f64> = (0..50).map(|t| d.factor(7, t)).collect();
        assert!(fs.iter().all(|&f| (0.8..=1.2).contains(&f)));
        let min = fs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.05, "no variation: {min}..{max}");
    }

    #[test]
    fn factor_is_deterministic() {
        let d = ResourceDynamics::uncertain();
        assert_eq!(d.factor(42, 3), d.factor(42, 3));
        assert_ne!(d.factor(42, 3), d.factor(43, 3));
    }

    #[test]
    fn spiky_sometimes_drops() {
        let d = ResourceDynamics::Spiky {
            jitter: 0.0,
            drop_prob: 0.5,
            drop_to: 0.3,
        };
        let drops = (0..100).filter(|&t| d.factor(9, t) < 0.5).count();
        assert!(drops > 20 && drops < 80, "drops {drops}");
    }
}
