//! AIoT device simulation: heterogeneous resource classes, dynamic
//! resource fluctuation, and a latency model calibrated to the paper's
//! real test-bed (Raspberry Pi 4B / Jetson Nano / Jetson Xavier AGX).
//!
//! The paper's devices differ in (a) how large a model they can hold
//! and train (memory capacity `Γ`, expressed here as a fraction of the
//! full global model's parameter count) and (b) how fast they compute
//! and communicate. The FL engine only queries
//! [`DeviceSim::capacity_at`] and the latency functions, so swapping in
//! a real device fleet later only requires re-implementing this crate.
//!
//! # Example
//!
//! ```
//! use adaptivefl_device::{DeviceClass, DeviceFleet, ResourceDynamics};
//!
//! let fleet = DeviceFleet::with_proportions(10, (4, 3, 3), 1_000_000,
//!     ResourceDynamics::Static, 7);
//! assert_eq!(fleet.len(), 10);
//! assert_eq!(fleet.class_counts(), (4, 3, 3));
//! let _ = DeviceClass::Weak.capacity_fraction();
//! ```

mod dynamics;
mod fleet;
mod latency;
mod profile;
pub mod testbed;

pub use dynamics::ResourceDynamics;
pub use fleet::DeviceFleet;
pub use latency::LatencyModel;
pub use profile::{DeviceClass, DeviceSim};
