//! [`DeviceFleet`]: the set of simulated devices in one experiment.

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::dynamics::ResourceDynamics;
use crate::profile::{DeviceClass, DeviceSim};

/// A fleet of simulated AIoT devices, built from a weak:medium:strong
/// proportion (the paper's default is 4:3:3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceFleet {
    devices: Vec<DeviceSim>,
}

impl DeviceFleet {
    /// Builds a fleet from explicit devices.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn new(devices: Vec<DeviceSim>) -> Self {
        assert!(!devices.is_empty(), "fleet needs devices");
        DeviceFleet { devices }
    }

    /// Builds `n` devices in the given weak:medium:strong proportion,
    /// each sized against `full_model_params`, shuffled
    /// deterministically by `seed` so class is uncorrelated with id.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the proportion sums to zero.
    pub fn with_proportions(
        n: usize,
        proportion: (usize, usize, usize),
        full_model_params: u64,
        dynamics: ResourceDynamics,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "fleet needs devices");
        let (pw, pm, ps) = proportion;
        let total = pw + pm + ps;
        assert!(total > 0, "proportion must be non-zero");
        let n_weak = n * pw / total;
        let n_med = n * pm / total;
        let mut classes = Vec::with_capacity(n);
        classes.extend(std::iter::repeat_n(DeviceClass::Weak, n_weak));
        classes.extend(std::iter::repeat_n(DeviceClass::Medium, n_med));
        classes.extend(std::iter::repeat_n(DeviceClass::Strong, n - n_weak - n_med));
        let mut rng = adaptivefl_tensor_seed(seed);
        classes.shuffle(&mut rng);
        let devices = classes
            .into_iter()
            .enumerate()
            .map(|(id, class)| DeviceSim::from_class(id, class, full_model_params, dynamics, seed))
            .collect();
        DeviceFleet { devices }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if the fleet is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn device(&self, id: usize) -> &DeviceSim {
        &self.devices[id]
    }

    /// Iterates over all devices.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceSim> {
        self.devices.iter()
    }

    /// Applies an online probability to every device.
    ///
    /// # Panics
    ///
    /// Panics unless `availability` is in `(0, 1]`.
    pub fn with_availability(mut self, availability: f64) -> Self {
        self.devices = self
            .devices
            .into_iter()
            .map(|d| d.with_availability(availability))
            .collect();
        self
    }

    /// Count of devices per class `(weak, medium, strong)`.
    pub fn class_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.devices {
            match d.class() {
                DeviceClass::Weak => c.0 += 1,
                DeviceClass::Medium => c.1 += 1,
                DeviceClass::Strong => c.2 += 1,
            }
        }
        c
    }
}

fn adaptivefl_tensor_seed(seed: u64) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x1D3A_F00D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_are_respected() {
        let fleet =
            DeviceFleet::with_proportions(100, (4, 3, 3), 1_000_000, ResourceDynamics::Static, 1);
        assert_eq!(fleet.class_counts(), (40, 30, 30));
    }

    #[test]
    fn extreme_proportions() {
        let fleet =
            DeviceFleet::with_proportions(10, (8, 1, 1), 1_000_000, ResourceDynamics::Static, 2);
        let (w, m, s) = fleet.class_counts();
        assert_eq!(w, 8);
        assert_eq!(m + s, 2);
    }

    #[test]
    fn ids_are_sequential() {
        let fleet = DeviceFleet::with_proportions(5, (1, 1, 1), 100, ResourceDynamics::Static, 3);
        for (i, d) in fleet.iter().enumerate() {
            assert_eq!(d.id(), i);
        }
    }

    #[test]
    fn classes_are_shuffled_by_seed() {
        let order = |seed: u64| -> Vec<DeviceClass> {
            DeviceFleet::with_proportions(30, (1, 1, 1), 100, ResourceDynamics::Static, seed)
                .iter()
                .map(|d| d.class())
                .collect()
        };
        assert_eq!(order(5), order(5));
        assert_ne!(order(5), order(6));
    }
}
