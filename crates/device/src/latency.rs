//! Compute/communication latency model for simulated wall-clock time.

use serde::{Deserialize, Serialize};

/// A two-parameter latency model: sustained training throughput
/// (MAC/s, counting forward+backward as 3× forward internally) and
/// link bandwidth (bytes/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Sustained forward-pass throughput in MAC/s.
    pub macs_per_sec: f64,
    /// Link bandwidth in bytes/s (up = down).
    pub bytes_per_sec: f64,
}

/// Backward pass costs roughly twice the forward pass.
const TRAIN_FACTOR: f64 = 3.0;

impl LatencyModel {
    /// Creates a latency model.
    ///
    /// # Panics
    ///
    /// Panics unless both rates are positive.
    pub fn new(macs_per_sec: f64, bytes_per_sec: f64) -> Self {
        assert!(
            macs_per_sec > 0.0 && bytes_per_sec > 0.0,
            "rates must be positive"
        );
        LatencyModel {
            macs_per_sec,
            bytes_per_sec,
        }
    }

    /// Seconds to *train* over `macs` forward-pass MACs (the 3×
    /// forward/backward factor is applied here).
    pub fn compute_secs(&self, macs: u64) -> f64 {
        macs as f64 * TRAIN_FACTOR / self.macs_per_sec
    }

    /// Seconds to move `bytes` over the link.
    pub fn comm_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_includes_backward_factor() {
        let m = LatencyModel::new(3.0e9, 1.0e6);
        assert!((m.compute_secs(1_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn comm_is_linear() {
        let m = LatencyModel::new(1.0e9, 2.0e6);
        assert!((m.comm_secs(4_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        LatencyModel::new(0.0, 1.0);
    }
}
