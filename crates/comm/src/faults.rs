//! Seeded fault injection for the simulated transport.
//!
//! Fault decisions are drawn from an RNG derived per `(round, client)`
//! — never from a shared stream — so the same [`FaultPlan`] produces
//! the same faults regardless of executor thread count or the order
//! clients finish in.

use serde::{Deserialize, Serialize};

/// Probabilities and magnitudes of the injected link faults. All
/// probabilities are per-client-per-round and independent; the default
/// plan is fault-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a completed upload is lost in transit.
    #[serde(default)]
    pub upload_drop: f64,
    /// Probability a client straggles (its round time is multiplied by
    /// [`FaultPlan::straggler_factor`]).
    #[serde(default)]
    pub straggler_prob: f64,
    /// Round-time multiplier for straggling clients.
    #[serde(default = "default_straggler_factor")]
    pub straggler_factor: f64,
    /// Probability a client crashes mid-round (downlink spent, nothing
    /// returns).
    #[serde(default)]
    pub crash_prob: f64,
    /// Probability the upload frame is truncated in transit (the
    /// server's decode fails and the upload is counted as dropped).
    #[serde(default)]
    pub truncate_prob: f64,
    /// Extra salt folded into the per-client fault streams, so two
    /// plans with identical probabilities can still draw different
    /// faults.
    #[serde(default)]
    pub seed: u64,
}

fn default_straggler_factor() -> f64 {
    4.0
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            upload_drop: 0.0,
            straggler_prob: 0.0,
            straggler_factor: default_straggler_factor(),
            crash_prob: 0.0,
            truncate_prob: 0.0,
            seed: 0,
        }
    }
}

/// The faults drawn for one `(round, client)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDraw {
    /// Client crashes mid-round.
    pub crash: bool,
    /// Client's round time is multiplied by the straggler factor.
    pub straggle: bool,
    /// Upload lost in transit.
    pub drop: bool,
    /// Fraction (in `[0, 1)`) of the upload frame that survives, when
    /// a truncation fault fires.
    pub truncate_at: Option<f64>,
}

impl FaultPlan {
    /// A fault-free plan (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when no fault can ever fire.
    pub fn is_clean(&self) -> bool {
        self.upload_drop == 0.0
            && self.straggler_prob == 0.0
            && self.crash_prob == 0.0
            && self.truncate_prob == 0.0
    }

    /// Panics unless every probability is in `[0, 1]` and the
    /// straggler factor is at least 1.
    pub fn validate(&self) {
        for (name, p) in [
            ("upload_drop", self.upload_drop),
            ("straggler_prob", self.straggler_prob),
            ("crash_prob", self.crash_prob),
            ("truncate_prob", self.truncate_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability, got {p}"
            );
        }
        assert!(
            self.straggler_factor >= 1.0,
            "straggler_factor must be >= 1, got {}",
            self.straggler_factor
        );
    }

    /// Draws this plan's faults for one `(round, client)` pair. The
    /// stream is derived from `(master_seed, self.seed, round, client)`
    /// with a fixed draw order, so results do not depend on execution
    /// order or thread count.
    pub fn draw(&self, master_seed: u64, round: usize, client: usize) -> FaultDraw {
        use rand::Rng;
        let mut rng = adaptivefl_tensor::rng::derived(
            master_seed ^ self.seed,
            &format!("fault-r{round}-c{client}"),
        );
        // Fixed draw order keeps the stream stable as probabilities
        // change.
        let crash = rng.gen_bool(self.crash_prob);
        let straggle = rng.gen_bool(self.straggler_prob);
        let drop = rng.gen_bool(self.upload_drop);
        let truncate = rng.gen_bool(self.truncate_prob);
        let frac: f64 = rng.gen();
        FaultDraw {
            crash,
            straggle,
            drop,
            truncate_at: truncate.then_some(frac),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_clean());
        for c in 0..50 {
            let d = plan.draw(1, 0, c);
            assert!(!d.crash && !d.straggle && !d.drop && d.truncate_at.is_none());
        }
    }

    #[test]
    fn draws_are_deterministic_per_round_client() {
        let plan = FaultPlan {
            upload_drop: 0.5,
            crash_prob: 0.2,
            ..Default::default()
        };
        for c in 0..20 {
            assert_eq!(plan.draw(9, 3, c), plan.draw(9, 3, c));
        }
    }

    #[test]
    fn certain_drop_always_fires() {
        let plan = FaultPlan {
            upload_drop: 1.0,
            ..Default::default()
        };
        for c in 0..20 {
            assert!(plan.draw(4, 1, c).drop);
        }
    }

    #[test]
    fn seed_salt_changes_the_stream() {
        let a = FaultPlan {
            upload_drop: 0.5,
            ..Default::default()
        };
        let b = FaultPlan {
            upload_drop: 0.5,
            seed: 1,
            ..Default::default()
        };
        let differs = (0..64).any(|c| a.draw(2, 0, c).drop != b.draw(2, 0, c).drop);
        assert!(differs, "salting the seed should change some draws");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn validate_rejects_bad_probability() {
        FaultPlan {
            upload_drop: 1.5,
            ..Default::default()
        }
        .validate();
    }
}
