//! adaptivefl-comm: simulated federated transport for AdaptiveFL.
//!
//! The core crate's [`Transport`](adaptivefl_core::Transport) trait
//! abstracts the client↔server exchange; this crate supplies the
//! realistic implementation:
//!
//! - [`wire`] — typed binary messages ([`ModelDown`], [`UpdateUp`])
//!   with dense and quantized payload codecs and panic-free decoding.
//! - [`faults`] — a seeded [`FaultPlan`] injecting upload drops,
//!   stragglers, client crashes and payload truncation per link.
//! - [`executor`] — parallel client execution on crossbeam scoped
//!   threads with per-client derived RNG streams; deterministic at any
//!   thread count.
//! - [`transport`] — [`SimTransport`], tying the above together with
//!   round-deadline semantics (late uploads are wasted communication
//!   and count as training failures toward AdaptiveFL's `T_r` table).
//!
//! The default transport everywhere remains
//! [`PerfectTransport`](adaptivefl_core::PerfectTransport), which
//! reproduces the pre-transport simulation bit for bit; `SimTransport`
//! is opt-in via
//! [`Simulation::run_with_transport`](adaptivefl_core::sim::Simulation::run_with_transport).

pub mod executor;
pub mod faults;
pub mod transport;
pub mod wire;

pub use faults::{FaultDraw, FaultPlan};
pub use transport::SimTransport;
pub use wire::{DownConfig, ModelDown, UpdateUp, WireCodec};
