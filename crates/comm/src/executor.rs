//! Parallel client execution on scoped threads.
//!
//! Jobs run on up to `threads` crossbeam-scoped workers. Each client
//! trains against an RNG derived from `(seed, round, client)` — not a
//! shared stream — and results are sorted by client id before they are
//! returned, so both the RNG draws and the f32 summation order of the
//! subsequent aggregation are identical at any thread count.

use adaptivefl_core::sim::Env;
use adaptivefl_core::transport::{ClientJob, LocalOutcome};

/// One executed job: the dispatch metadata plus what the client
/// produced.
pub struct JobResult {
    /// Client id.
    pub client: usize,
    /// Dispatch tag from the [`ClientJob`].
    pub tag: usize,
    /// Parameter elements dispatched down the link.
    pub down_params: u64,
    /// What the client's local computation produced.
    pub outcome: LocalOutcome,
}

fn exec_one(env: &Env, round: usize, job: ClientJob<'_>) -> JobResult {
    let ClientJob {
        client,
        tag,
        down_params,
        run,
    } = job;
    let mut rng =
        adaptivefl_tensor::rng::derived(env.cfg.seed, &format!("sim-client-r{round}-c{client}"));
    JobResult {
        client,
        tag,
        down_params,
        outcome: run(&mut rng),
    }
}

/// Runs every job and returns the results sorted by client id.
///
/// `threads == 1` runs inline on the calling thread; higher counts
/// fan the jobs out round-robin over scoped worker threads.
///
/// # Panics
///
/// Panics if a client job panics.
pub fn run_jobs(
    env: &Env,
    round: usize,
    jobs: Vec<ClientJob<'_>>,
    threads: usize,
) -> Vec<JobResult> {
    let threads = threads.max(1).min(jobs.len().max(1));
    let mut results: Vec<JobResult> = if threads == 1 {
        jobs.into_iter().map(|j| exec_one(env, round, j)).collect()
    } else {
        let mut buckets: Vec<Vec<ClientJob<'_>>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % threads].push(job);
        }
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    s.spawn(move |_| {
                        bucket
                            .into_iter()
                            .map(|j| exec_one(env, round, j))
                            .collect::<Vec<JobResult>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client job panicked"))
                .collect()
        })
        .expect("executor scope panicked")
    };
    results.sort_by_key(|r| r.client);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_core::sim::{SimConfig, Simulation};
    use adaptivefl_core::transport::JobFn;
    use adaptivefl_data::{Partition, SynthSpec};
    use rand::Rng;

    fn env() -> Simulation {
        let cfg = SimConfig::quick_test(5);
        let mut spec = SynthSpec::test_spec(4);
        spec.input = (3, 8, 8);
        Simulation::prepare(&cfg, &spec, Partition::Iid)
    }

    fn probe_jobs<'a>(clients: &[usize]) -> Vec<ClientJob<'a>> {
        clients
            .iter()
            .map(|&c| {
                let run: JobFn<'a> = Box::new(move |rng| {
                    // Report the first RNG draw through `up_params` so
                    // the test can fingerprint the per-client stream.
                    let draw = rng.gen_range(0..1_000_000u64);
                    LocalOutcome {
                        up_params: draw,
                        tag: c,
                        ..LocalOutcome::failure()
                    }
                });
                ClientJob {
                    client: c,
                    tag: c,
                    down_params: 10,
                    run,
                }
            })
            .collect()
    }

    #[test]
    fn results_sorted_and_streams_thread_invariant() {
        let sim = env();
        let clients = [7, 2, 9, 0, 4, 1, 8, 3];
        let base: Vec<(usize, u64)> = run_jobs(sim.env(), 2, probe_jobs(&clients), 1)
            .into_iter()
            .map(|r| (r.client, r.outcome.up_params))
            .collect();
        let sorted: Vec<usize> = base.iter().map(|&(c, _)| c).collect();
        let mut expect = clients.to_vec();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        for threads in [2, 3, 8, 32] {
            let got: Vec<(usize, u64)> = run_jobs(sim.env(), 2, probe_jobs(&clients), threads)
                .into_iter()
                .map(|r| (r.client, r.outcome.up_params))
                .collect();
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn per_round_streams_differ() {
        let sim = env();
        let a = run_jobs(sim.env(), 0, probe_jobs(&[1, 2, 3]), 1);
        let b = run_jobs(sim.env(), 1, probe_jobs(&[1, 2, 3]), 1);
        let differs = a
            .iter()
            .zip(&b)
            .any(|(x, y)| x.outcome.up_params != y.outcome.up_params);
        assert!(differs, "round index must salt the client streams");
    }

    #[test]
    fn empty_job_list_is_fine() {
        let sim = env();
        assert!(run_jobs(sim.env(), 0, Vec::new(), 4).is_empty());
    }
}
