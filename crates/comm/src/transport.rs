//! [`SimTransport`] — the faulty, deadline-enforcing, parallel
//! implementation of [`Transport`].
//!
//! Per round it (1) runs every [`ClientJob`] on the parallel executor
//! with per-client derived RNGs, (2) wire-encodes each completed
//! upload as an [`UpdateUp`](crate::wire::UpdateUp) frame, (3) applies
//! the [`FaultPlan`]'s seeded faults (crash, straggler delay, drop,
//! truncation) per link, (4) enforces the round deadline, and (5)
//! hands the surviving, decoded uploads back to the method sorted by
//! client id.
//!
//! Timing rides on the per-device link model of `adaptivefl-device`
//! via [`client_secs`]: compute time from the submodel's MACs plus
//! down/up transfer time from the device's bandwidth, all multiplied
//! by any straggler delay.

use adaptivefl_core::aggregate::Upload;
use adaptivefl_core::sim::Env;
use adaptivefl_core::trace::{status_name, TraceEvent};
use adaptivefl_core::transport::{
    client_secs, ClientJob, CommStats, Delivery, DeliveryStatus, Exchange, Transport,
};
use rand_chacha::ChaCha8Rng;

use crate::executor::run_jobs;
use crate::faults::FaultPlan;
use crate::wire::{self, UpdateUp, WireCodec};

/// Simulated transport with fault injection, round deadlines and a
/// parallel client executor. Construct with [`SimTransport::new`] and
/// chain `with_*` builders.
#[derive(Debug, Clone)]
pub struct SimTransport {
    threads: usize,
    faults: FaultPlan,
    deadline_secs: Option<f64>,
    codec: WireCodec,
}

impl Default for SimTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl SimTransport {
    /// A fault-free, deadline-free, single-threaded transport with the
    /// lossless dense codec.
    pub fn new() -> Self {
        SimTransport {
            threads: 1,
            faults: FaultPlan::none(),
            deadline_secs: None,
            codec: WireCodec::Dense,
        }
    }

    /// Sets the executor width (clamped to at least 1). Results are
    /// identical at any width.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Installs a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan's probabilities are invalid.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        faults.validate();
        self.faults = faults;
        self
    }

    /// Enforces a round deadline: uploads from clients slower than
    /// `secs` are discarded as [`DeliveryStatus::Late`], and the server
    /// stops waiting at the deadline.
    pub fn with_deadline(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "deadline must be positive");
        self.deadline_secs = Some(secs);
        self
    }

    /// Selects the uplink payload codec (dense by default; the
    /// quantized codec is lossy but ~4× smaller).
    pub fn with_codec(mut self, codec: WireCodec) -> Self {
        self.codec = codec;
        self
    }

    /// The configured fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
}

impl Transport for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn exchange(
        &mut self,
        env: &Env,
        round: usize,
        jobs: Vec<ClientJob<'_>>,
        _rng: &mut ChaCha8Rng,
    ) -> Exchange {
        let results = run_jobs(env, round, jobs, self.threads);

        let mut deliveries = Vec::with_capacity(results.len());
        let mut stats = CommStats::default();
        let mut slowest = 0.0f64;
        for r in results {
            let bytes_down = wire::dense_payload_bytes(r.down_params);
            stats.bytes_down += bytes_down;
            let draw = self.faults.draw(env.cfg.seed, round, r.client);

            // A crashed client spends the downlink and then vanishes.
            if draw.crash {
                stats.crashes += 1;
                let secs = client_secs(env, r.client, 0, 0, r.down_params, 0);
                slowest = slowest.max(secs);
                if env.tracer().enabled() {
                    env.tracer().event(TraceEvent::Comm {
                        round,
                        client: r.client,
                        bytes_down,
                        bytes_up: 0,
                        status: status_name(DeliveryStatus::Crashed),
                        straggled: false,
                    });
                }
                deliveries.push(Delivery {
                    client: r.client,
                    tag: r.tag,
                    client_tag: r.outcome.tag,
                    status: DeliveryStatus::Crashed,
                    loss: 0.0,
                    upload: None,
                    down_params: r.down_params,
                    up_params: 0,
                    secs,
                });
                continue;
            }

            // A resource failure: the client could not train anything.
            let Some(upload) = r.outcome.upload else {
                let secs = client_secs(env, r.client, 0, 0, r.down_params, 0);
                slowest = slowest.max(secs);
                if env.tracer().enabled() {
                    env.tracer().event(TraceEvent::Comm {
                        round,
                        client: r.client,
                        bytes_down,
                        bytes_up: 0,
                        status: status_name(DeliveryStatus::TrainingFailed),
                        straggled: false,
                    });
                }
                deliveries.push(Delivery {
                    client: r.client,
                    tag: r.tag,
                    client_tag: r.outcome.tag,
                    status: DeliveryStatus::TrainingFailed,
                    loss: 0.0,
                    upload: None,
                    down_params: r.down_params,
                    up_params: r.outcome.up_params,
                    secs,
                });
                continue;
            };

            let mut secs = client_secs(
                env,
                r.client,
                r.outcome.macs_per_sample,
                r.outcome.samples,
                r.down_params,
                r.outcome.up_params,
            );
            if draw.straggle {
                stats.stragglers += 1;
                secs *= self.faults.straggler_factor;
            }
            slowest = slowest.max(secs);

            // The uplink is a real wire frame; faults act on it.
            let weight = upload.weight;
            let msg = UpdateUp {
                round: round as u32,
                client: r.client as u32,
                data_size: r.outcome.samples as u32,
                params: upload.params,
            };
            let frame = wire::encode_update_up(&msg, self.codec);

            let (status, delivered_params) = if draw.drop {
                stats.drops += 1;
                (DeliveryStatus::Dropped, None)
            } else if let Some(frac) = draw.truncate_at {
                // Truncation strictly shortens the frame, so the
                // server-side decode must fail; count it as a drop.
                let cut = ((frame.len() as f64) * frac) as usize;
                match wire::decode_update_up(&frame[..cut.min(frame.len() - 1)]) {
                    Ok(m) => (DeliveryStatus::Delivered, Some(m.params)),
                    Err(_) => {
                        stats.drops += 1;
                        (DeliveryStatus::Dropped, None)
                    }
                }
            } else if self.deadline_secs.is_some_and(|d| secs > d) {
                stats.deadline_misses += 1;
                (DeliveryStatus::Late, None)
            } else {
                match wire::decode_update_up(&frame) {
                    Ok(m) => (DeliveryStatus::Delivered, Some(m.params)),
                    Err(_) => {
                        stats.drops += 1;
                        (DeliveryStatus::Dropped, None)
                    }
                }
            };

            if status.is_delivered() {
                stats.bytes_up += frame.len() as u64;
            }
            if env.tracer().enabled() {
                env.tracer().event(TraceEvent::Comm {
                    round,
                    client: r.client,
                    bytes_down,
                    bytes_up: if status.is_delivered() {
                        frame.len() as u64
                    } else {
                        0
                    },
                    status: status_name(status),
                    straggled: draw.straggle,
                });
            }
            deliveries.push(Delivery {
                client: r.client,
                tag: r.tag,
                client_tag: r.outcome.tag,
                status,
                loss: r.outcome.loss,
                upload: delivered_params.map(|params| Upload { params, weight }),
                down_params: r.down_params,
                up_params: r.outcome.up_params,
                secs,
            });
        }

        // The server stops waiting at the deadline: the round cannot
        // take longer than it even when clients do.
        let round_secs = match self.deadline_secs {
            Some(d) => slowest.min(d),
            None => slowest,
        };
        Exchange {
            deliveries,
            stats,
            round_secs,
        }
    }
}
