//! Binary wire encoding for the federated exchange.
//!
//! Two typed messages travel the simulated link: [`ModelDown`]
//! (server → client: the dispatched submodel plus its dispatch
//! configuration) and [`UpdateUp`] (client → server: the trained
//! submodel with the client's data size). Frames are big-endian,
//! magic-prefixed, and versioned; dense payloads carry raw `f32` bit
//! patterns (lossless, NaN-preserving), while the
//! [`WireCodec::Quantized`] variant rides on the int8 frame format of
//! [`adaptivefl_core::compress`] for ~4× smaller uplinks at bounded
//! error.
//!
//! Decoding never panics: truncated or corrupt frames return
//! [`CoreError::MalformedFrame`], which the transport treats as a lost
//! upload.

use adaptivefl_core::compress::{FrameReader, QuantizedMap};
use adaptivefl_core::CoreError;
use adaptivefl_nn::ParamMap;
use adaptivefl_tensor::Tensor;
use bytes::{BufMut, Bytes, BytesMut};

/// Frame magic: `AFL1` in ASCII.
pub const MAGIC: u32 = 0x4146_4C31;
/// Wire format version.
pub const VERSION: u8 = 1;

const MSG_MODEL_DOWN: u8 = 1;
const MSG_UPDATE_UP: u8 = 2;
const CODEC_DENSE: u8 = 0;
const CODEC_QUANTIZED: u8 = 1;

/// Parameter payload encoding for the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCodec {
    /// Raw `f32` bit patterns — lossless, 4 bytes per element.
    Dense,
    /// Int8 affine quantisation via
    /// [`QuantizedMap`] — ~4× smaller, lossy within
    /// [`QuantizedMap::max_error_bound`].
    Quantized,
}

/// Dispatch configuration riding on the downlink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DownConfig {
    /// Pool index (or method-specific tag) of the dispatched model.
    pub pool_index: u32,
    /// Round deadline in milliseconds (0 = no deadline).
    pub deadline_ms: u64,
}

/// Server → client: the dispatched submodel for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDown {
    /// Round index.
    pub round: u32,
    /// Dispatch configuration.
    pub config: DownConfig,
    /// The dispatched parameters.
    pub params: ParamMap,
}

/// Client → server: the trained submodel.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateUp {
    /// Round index.
    pub round: u32,
    /// Uploading client id.
    pub client: u32,
    /// Local data size `|d_c|` (the aggregation weight).
    pub data_size: u32,
    /// The trained parameters.
    pub params: ParamMap,
}

/// Payload bytes of `params` elements sent as dense `f32`.
pub fn dense_payload_bytes(params: u64) -> u64 {
    params * 4
}

fn put_header(buf: &mut BytesMut, msg: u8) {
    buf.put_u32(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(msg);
}

/// Encodes a [`ParamMap`] into `buf` in the dense wire layout: entry
/// count, then per entry `name_len u16 | name | ndim u8 | dims u32… |
/// f32 bit patterns`. Exposed so other crates (e.g. the snapshot
/// store) can reuse the exact lossless layout.
pub fn encode_param_map(buf: &mut BytesMut, map: &ParamMap) {
    buf.put_u32(map.len() as u32);
    for (name, t) in map.iter() {
        buf.put_u16(name.len() as u16);
        buf.put_slice(name.as_bytes());
        buf.put_u8(t.shape().len() as u8);
        for &d in t.shape() {
            buf.put_u32(d as u32);
        }
        for &v in t.as_slice() {
            buf.put_u32(v.to_bits());
        }
    }
}

fn read_header(r: &mut FrameReader<'_>, want_msg: u8) -> Result<(), CoreError> {
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(CoreError::MalformedFrame(format!(
            "bad magic {magic:#010x}"
        )));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CoreError::MalformedFrame(format!(
            "unsupported version {version}"
        )));
    }
    let msg = r.u8()?;
    if msg != want_msg {
        return Err(CoreError::MalformedFrame(format!(
            "unexpected message type {msg}, want {want_msg}"
        )));
    }
    Ok(())
}

/// Decodes a [`ParamMap`] written by [`encode_param_map`], with
/// bounded allocation and duplicate-name rejection.
pub fn decode_param_map(r: &mut FrameReader<'_>) -> Result<ParamMap, CoreError> {
    let count = r.u32()? as usize;
    let mut map = ParamMap::new();
    for _ in 0..count {
        let name_len = r.u16()? as usize;
        let name = String::from_utf8(r.bytes(name_len)?.to_vec())
            .map_err(|_| CoreError::MalformedFrame("non-utf8 parameter name".into()))?;
        let ndim = r.u8()? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(r.u32()? as usize);
        }
        let numel: usize = shape.iter().product();
        // Bound the allocation by what the frame can actually hold so a
        // corrupt shape cannot become an allocation bomb.
        if r.remaining() < numel * 4 {
            return Err(CoreError::MalformedFrame(format!(
                "{name}: {numel} elements exceed remaining frame"
            )));
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(f32::from_bits(r.u32()?));
        }
        if map
            .insert(name.clone(), Tensor::from_vec(data, &shape))
            .is_some()
        {
            return Err(CoreError::MalformedFrame(format!(
                "duplicate parameter {name}"
            )));
        }
    }
    Ok(map)
}

/// Encodes a [`ModelDown`] frame (dense payload).
pub fn encode_model_down(msg: &ModelDown) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + msg.params.byte_size());
    put_header(&mut buf, MSG_MODEL_DOWN);
    buf.put_u32(msg.round);
    buf.put_u32(msg.config.pool_index);
    buf.put_u64(msg.config.deadline_ms);
    encode_param_map(&mut buf, &msg.params);
    buf.freeze()
}

/// Decodes a [`ModelDown`] frame.
pub fn decode_model_down(frame: &[u8]) -> Result<ModelDown, CoreError> {
    let mut r = FrameReader::new(frame);
    read_header(&mut r, MSG_MODEL_DOWN)?;
    let round = r.u32()?;
    let pool_index = r.u32()?;
    let deadline_ms = r.u64()?;
    let params = decode_param_map(&mut r)?;
    if !r.is_empty() {
        return Err(CoreError::MalformedFrame(
            "trailing bytes after frame".into(),
        ));
    }
    Ok(ModelDown {
        round,
        config: DownConfig {
            pool_index,
            deadline_ms,
        },
        params,
    })
}

/// Encodes an [`UpdateUp`] frame with the chosen payload codec.
pub fn encode_update_up(msg: &UpdateUp, codec: WireCodec) -> Bytes {
    let mut buf = BytesMut::with_capacity(20 + msg.params.byte_size());
    put_header(&mut buf, MSG_UPDATE_UP);
    buf.put_u32(msg.round);
    buf.put_u32(msg.client);
    buf.put_u32(msg.data_size);
    match codec {
        WireCodec::Dense => {
            buf.put_u8(CODEC_DENSE);
            encode_param_map(&mut buf, &msg.params);
        }
        WireCodec::Quantized => {
            buf.put_u8(CODEC_QUANTIZED);
            let inner = QuantizedMap::quantize(&msg.params).to_frame();
            buf.put_u32(inner.len() as u32);
            buf.put_slice(&inner);
        }
    }
    buf.freeze()
}

/// Decodes an [`UpdateUp`] frame (either codec). Quantized payloads
/// are dequantised back to a dense [`ParamMap`].
pub fn decode_update_up(frame: &[u8]) -> Result<UpdateUp, CoreError> {
    let mut r = FrameReader::new(frame);
    read_header(&mut r, MSG_UPDATE_UP)?;
    let round = r.u32()?;
    let client = r.u32()?;
    let data_size = r.u32()?;
    let codec = r.u8()?;
    let params = match codec {
        CODEC_DENSE => decode_param_map(&mut r)?,
        CODEC_QUANTIZED => {
            let len = r.u32()? as usize;
            let inner = r.bytes(len)?;
            QuantizedMap::from_frame(inner)?.dequantize()
        }
        other => {
            return Err(CoreError::MalformedFrame(format!("unknown codec {other}")));
        }
    };
    if !r.is_empty() {
        return Err(CoreError::MalformedFrame(
            "trailing bytes after frame".into(),
        ));
    }
    Ok(UpdateUp {
        round,
        client,
        data_size,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::{init, rng};

    fn sample_map() -> ParamMap {
        let mut r = rng::seeded(7);
        let mut m = ParamMap::new();
        m.insert("conv.weight", init::normal(&[4, 3, 3, 3], 0.1, &mut r));
        m.insert("conv.bias", Tensor::zeros(&[4]));
        m.insert("fc.weight", init::normal(&[2, 36], 0.1, &mut r));
        m
    }

    #[test]
    fn update_up_dense_roundtrips_exactly() {
        let msg = UpdateUp {
            round: 3,
            client: 17,
            data_size: 12,
            params: sample_map(),
        };
        let frame = encode_update_up(&msg, WireCodec::Dense);
        let back = decode_update_up(&frame).expect("intact frame");
        assert_eq!(msg, back);
    }

    #[test]
    fn model_down_roundtrips_exactly() {
        let msg = ModelDown {
            round: 9,
            config: DownConfig {
                pool_index: 4,
                deadline_ms: 30_000,
            },
            params: sample_map(),
        };
        let frame = encode_model_down(&msg);
        let back = decode_model_down(&frame).expect("intact frame");
        assert_eq!(msg, back);
    }

    #[test]
    fn non_finite_values_survive_dense() {
        let mut params = ParamMap::new();
        params.insert(
            "w",
            Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0], &[4]),
        );
        let msg = UpdateUp {
            round: 0,
            client: 0,
            data_size: 1,
            params,
        };
        let back = decode_update_up(&encode_update_up(&msg, WireCodec::Dense)).unwrap();
        let w = back.params.get("w").unwrap().as_slice().to_vec();
        assert!(w[0].is_nan());
        assert_eq!(w[1], f32::INFINITY);
        assert_eq!(w[2], f32::NEG_INFINITY);
        assert_eq!(w[3].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn quantized_codec_is_smaller_and_bounded() {
        let msg = UpdateUp {
            round: 1,
            client: 2,
            data_size: 8,
            params: sample_map(),
        };
        let dense = encode_update_up(&msg, WireCodec::Dense);
        let packed = encode_update_up(&msg, WireCodec::Quantized);
        assert!(
            packed.len() * 2 < dense.len(),
            "{} vs {}",
            packed.len(),
            dense.len()
        );
        let back = decode_update_up(&packed).expect("quantized frame decodes");
        let bound = QuantizedMap::max_error_bound(&msg.params);
        for (name, t) in msg.params.iter() {
            let r = back.params.get(name).expect("name preserved");
            for (a, b) in t.as_slice().iter().zip(r.as_slice()) {
                assert!((a - b).abs() <= bound * 0.51 + 1e-6, "{name}");
            }
        }
    }

    #[test]
    fn every_strict_prefix_errors() {
        let msg = UpdateUp {
            round: 3,
            client: 17,
            data_size: 12,
            params: sample_map(),
        };
        let frame = encode_update_up(&msg, WireCodec::Dense);
        for cut in 0..frame.len() {
            assert!(
                decode_update_up(&frame[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn wrong_message_type_is_rejected() {
        let msg = ModelDown {
            round: 0,
            config: DownConfig {
                pool_index: 0,
                deadline_ms: 0,
            },
            params: ParamMap::new(),
        };
        let frame = encode_model_down(&msg);
        assert!(decode_update_up(&frame).is_err());
    }
}
