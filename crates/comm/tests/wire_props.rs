//! Property tests for the wire codec: dense frames round-trip
//! arbitrary parameter maps bit-for-bit, and any truncation of a valid
//! frame is a decode error — never a panic.

use adaptivefl_comm::wire::{self, UpdateUp, WireCodec};
use adaptivefl_nn::ParamMap;
use adaptivefl_tensor::Tensor;
use proptest::prelude::*;

/// SplitMix64 step — a cheap deterministic value stream per drawn seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds a map from drawn raw parts: one tensor per `(d0, d1, seed)`
/// triple, filled with arbitrary `f32` bit patterns (NaNs and
/// infinities included — the dense codec must carry them unchanged).
fn build_map(tensors: &[(usize, usize, u64)]) -> ParamMap {
    let mut map = ParamMap::new();
    for (i, &(d0, d1, seed)) in tensors.iter().enumerate() {
        let mut state = seed;
        let data: Vec<f32> = (0..d0 * d1)
            .map(|_| f32::from_bits(splitmix(&mut state) as u32))
            .collect();
        map.insert(format!("layer{i}.w"), Tensor::from_vec(data, &[d0, d1]));
    }
    map
}

/// Bitwise map equality — `==` on `f32` would reject NaN payloads that
/// the codec in fact preserved exactly.
fn bits_equal(a: &ParamMap, b: &ParamMap) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|((an, at), (bn, bt))| {
            an == bn
                && at.shape() == bt.shape()
                && at
                    .as_slice()
                    .iter()
                    .zip(bt.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_update_roundtrips_bit_exactly(
        tensors in prop::collection::vec((1usize..6, 1usize..8, 0u64..u64::MAX), 1..5),
        round in 0u32..10_000,
        client in 0u32..10_000,
        data_size in 0u32..100_000,
    ) {
        let msg = UpdateUp { round, client, data_size, params: build_map(&tensors) };
        let frame = wire::encode_update_up(&msg, WireCodec::Dense);
        let back = wire::decode_update_up(&frame).expect("intact frame decodes");
        prop_assert_eq!(back.round, round);
        prop_assert_eq!(back.client, client);
        prop_assert_eq!(back.data_size, data_size);
        prop_assert!(bits_equal(&msg.params, &back.params), "payload bits changed");
    }

    #[test]
    fn truncated_frames_error_not_panic(
        tensors in prop::collection::vec((1usize..5, 1usize..6, 0u64..u64::MAX), 1..4),
        frac in 0.0f64..1.0,
    ) {
        let msg = UpdateUp { round: 1, client: 2, data_size: 3, params: build_map(&tensors) };
        let frame = wire::encode_update_up(&msg, WireCodec::Dense);
        // A strict prefix anywhere in the frame must fail cleanly.
        let cut = ((frame.len() as f64) * frac) as usize;
        let cut = cut.min(frame.len() - 1);
        prop_assert!(
            wire::decode_update_up(&frame[..cut]).is_err(),
            "prefix of {} / {} bytes decoded", cut, frame.len()
        );
    }

    #[test]
    fn quantized_frames_also_fail_truncation_cleanly(
        tensors in prop::collection::vec((1usize..5, 1usize..6, 0u64..u64::MAX), 1..3),
        frac in 0.0f64..1.0,
    ) {
        // Quantisation of arbitrary bit patterns (incl. NaN) must not
        // panic, and truncating the quantized frame must error.
        let msg = UpdateUp { round: 0, client: 0, data_size: 1, params: build_map(&tensors) };
        let frame = wire::encode_update_up(&msg, WireCodec::Quantized);
        let cut = (((frame.len() as f64) * frac) as usize).min(frame.len() - 1);
        prop_assert!(wire::decode_update_up(&frame[..cut]).is_err());
        prop_assert!(wire::decode_update_up(&frame).is_ok());
    }
}
