//! End-to-end runs over `SimTransport`: fault injection degrades but
//! does not derail training, faults are visible in the per-round
//! [`CommStats`], dropped uploads feed AdaptiveFL's `T_r` table as
//! failures, and the parallel executor is deterministic at any thread
//! count.

use adaptivefl_comm::{FaultPlan, SimTransport};
use adaptivefl_core::methods::{AdaptiveFl, FlMethod, MethodKind};
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_core::PerfectTransport;
use adaptivefl_data::{Partition, SynthSpec};

fn spec() -> SynthSpec {
    let mut s = SynthSpec::test_spec(4);
    s.input = (3, 8, 8);
    s
}

fn prepare(seed: u64) -> Simulation {
    let mut cfg = SimConfig::quick_test(seed);
    cfg.rounds = 6;
    Simulation::prepare(&cfg, &spec(), Partition::Iid)
}

#[test]
fn upload_drops_degrade_gracefully() {
    let clean = prepare(300).run(MethodKind::AdaptiveFl);
    let mut faulty_transport = SimTransport::new().with_faults(FaultPlan {
        upload_drop: 0.3,
        ..Default::default()
    });
    let faulty = prepare(300).run_with_transport(MethodKind::AdaptiveFl, &mut faulty_transport);

    // The run completes every round and the faults are observable.
    assert_eq!(faulty.rounds.len(), 6);
    let comm = faulty.total_comm();
    assert!(
        comm.drops > 0,
        "a 30% drop rate over 6 rounds must drop something"
    );
    assert_eq!(clean.total_comm().drops, 0);

    // Dropped uploads are wasted communication: the byte-level waste
    // rate must exceed the fault-free run's.
    assert!(
        faulty.comm_waste_rate() > clean.comm_waste_rate(),
        "faulty waste {} vs clean {}",
        faulty.comm_waste_rate(),
        clean.comm_waste_rate()
    );

    // Graceful degradation: still clearly above chance (0.25 for 4
    // classes), and no better than the fault-free run plus noise.
    let (fa, ca) = (faulty.final_full_accuracy(), clean.final_full_accuracy());
    assert!(fa > 0.25, "faulty run should still learn, got {fa}");
    assert!(
        fa <= ca + 0.15,
        "faulty {fa} should not beat clean {ca} by a wide margin"
    );
}

#[test]
fn dropped_clients_t_r_decreases() {
    let sim = prepare(301);
    let env = sim.env();
    let mut method = AdaptiveFl::new(env, SelectionStrategy::CuriosityAndResource, false);
    // Every upload is lost: every dispatched client must be punished
    // across all pool sizes (t_r decreases, clamped at zero).
    let mut transport = SimTransport::new().with_faults(FaultPlan {
        upload_drop: 1.0,
        ..Default::default()
    });
    let mut rng = adaptivefl_tensor::rng::derived(env.cfg.seed, "run-AdaptiveFL");

    let before: Vec<Vec<f64>> = (0..env.pool.len())
        .map(|m| {
            (0..env.cfg.num_clients)
                .map(|c| method.rl().score(m, c))
                .collect()
        })
        .collect();
    let rec = method.round(env, 0, &mut transport, &mut rng);
    // Every dispatch fails: trained-then-dropped uploads count in the
    // comm stats, and all of them surface as failures.
    assert!(
        rec.comm.drops > 0,
        "at drop rate 1.0 some trained upload must be dropped"
    );
    assert!(rec.failures >= rec.comm.drops);
    assert_eq!(rec.returned_params, 0, "nothing can survive a total drop");

    let mut decreased = 0;
    for (m, row) in before.iter().enumerate() {
        for (c, &b) in row.iter().enumerate() {
            let a = method.rl().score(m, c);
            assert!(
                a <= b,
                "T_r[{m}][{c}] rose from {b} to {a} despite total drop"
            );
            if a < b {
                decreased += 1;
            }
        }
    }
    assert!(decreased > 0, "dropped clients must lose T_r score");
}

#[test]
fn runs_are_deterministic_across_thread_counts() {
    let plan = FaultPlan {
        upload_drop: 0.2,
        straggler_prob: 0.2,
        ..Default::default()
    };
    let run = |threads: usize| {
        let mut transport = SimTransport::new().with_threads(threads).with_faults(plan);
        prepare(302).run_with_transport(MethodKind::AdaptiveFl, &mut transport)
    };
    let one = run(1);
    for threads in [2, 8] {
        assert_eq!(run(threads), one, "thread count {threads} changed the run");
    }
}

#[test]
fn deadline_misses_count_and_cap_round_time() {
    // An absurdly tight deadline: every upload is late, the round time
    // is capped at the deadline, and nothing is aggregated.
    let mut transport = SimTransport::new().with_deadline(1e-9);
    let res = prepare(303).run_with_transport(MethodKind::AdaptiveFl, &mut transport);
    let comm = res.total_comm();
    assert!(
        comm.deadline_misses > 0,
        "everything should miss a 1ns deadline"
    );
    assert_eq!(comm.bytes_up, 0, "late uploads are pure waste");
    for r in &res.rounds {
        assert!(
            r.sim_secs <= 1e-9,
            "round time {} exceeds the deadline",
            r.sim_secs
        );
    }
}

#[test]
fn clean_sim_transport_matches_perfect_bytes() {
    // Without faults or deadline, SimTransport must account the same
    // communication volume as PerfectTransport (its uplink frames add
    // only a fixed header per upload). The comparison is on the first
    // round: from round two on the two transports legitimately diverge,
    // because SimTransport trains clients on derived per-client RNG
    // streams while PerfectTransport preserves the legacy shared one.
    let perfect = prepare(304).run_with_transport(MethodKind::AdaptiveFl, &mut PerfectTransport);
    let sim = prepare(304).run_with_transport(MethodKind::AdaptiveFl, &mut SimTransport::new());
    let (p, s) = (perfect.rounds[0].comm, sim.rounds[0].comm);
    assert_eq!(p.bytes_down, s.bytes_down);
    assert!(
        s.bytes_up >= p.bytes_up,
        "wire framing cannot shrink dense uploads"
    );
    let overhead = s.bytes_up - p.bytes_up;
    assert!(
        overhead < p.bytes_up / 10,
        "framing overhead {overhead} should be small next to {} payload bytes",
        p.bytes_up
    );
    assert_eq!(s.drops + s.crashes + s.stragglers + s.deadline_misses, 0);
}
