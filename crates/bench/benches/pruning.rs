//! Benchmarks of the width-wise pruning path: pool splitting and
//! nested submodel extraction (the per-round server cost of Step 1).

use adaptivefl_core::pool::{ModelPool, DEFAULT_RATIOS};
use adaptivefl_core::prune::extract_submodel;
use adaptivefl_models::ModelConfig;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_tensor::rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_split(c: &mut Criterion) {
    let cfg = ModelConfig::vgg16_cifar();
    c.bench_function("pool_split_vgg16_p3", |b| {
        b.iter(|| ModelPool::split(black_box(&cfg), 3, DEFAULT_RATIOS))
    });
}

fn bench_extract(c: &mut Criterion) {
    for cfg in [ModelConfig::tiny(10), ModelConfig::resnet18_fast(10)] {
        let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
        let mut r = rng::seeded(3);
        let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
        let small = pool.entry(0).plan.clone();
        let name = format!("extract_smallest_{:?}", cfg.kind);
        c.bench_function(&name, |b| {
            b.iter(|| extract_submodel(black_box(&global), &cfg, black_box(&small)))
        });
    }
}

fn bench_client_side_prune(c: &mut Criterion) {
    let cfg = ModelConfig::vgg16_cifar();
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let capacity = pool.entry(3).params + 1;
    c.bench_function("largest_fitting_vgg16", |b| {
        b.iter(|| pool.largest_fitting(black_box(6), black_box(capacity)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_split, bench_extract, bench_client_side_prune
}
criterion_main!(benches);
