//! Micro-benchmarks of the tensor kernels that dominate training time.

use adaptivefl_tensor::ops::{conv2d_backward, conv2d_forward, matmul, ConvGeometry};
use adaptivefl_tensor::{init, rng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut r = rng::seeded(1);
    let a = init::normal(&[64, 64], 1.0, &mut r);
    let b = init::normal(&[64, 64], 1.0, &mut r);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| matmul(black_box(&a), black_box(&b)))
    });
    let a2 = init::normal(&[128, 256], 1.0, &mut r);
    let b2 = init::normal(&[256, 128], 1.0, &mut r);
    c.bench_function("matmul_128x256x128", |bench| {
        bench.iter(|| matmul(black_box(&a2), black_box(&b2)))
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut r = rng::seeded(2);
    let geo = ConvGeometry {
        kh: 3,
        kw: 3,
        stride: 1,
        pad: 1,
    };
    let x = init::normal(&[8, 16, 8, 8], 1.0, &mut r);
    let w = init::normal(&[32, 16, 3, 3], 0.1, &mut r);
    let b = Tensor::zeros(&[32]);
    c.bench_function("conv3x3_16to32_8x8_b8_fwd", |bench| {
        bench.iter(|| conv2d_forward(black_box(&x), black_box(&w), black_box(&b), geo))
    });
    let (y, caches) = conv2d_forward(&x, &w, &b, geo);
    let dy = Tensor::ones(y.shape());
    c.bench_function("conv3x3_16to32_8x8_b8_bwd", |bench| {
        bench.iter(|| {
            conv2d_backward(
                black_box(&dy),
                black_box(&w),
                black_box(&caches),
                x.shape(),
                geo,
            )
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_matmul, bench_conv
}
criterion_main!(benches);
