//! Benchmarks of heterogeneous aggregation (Algorithm 2) with nested
//! uploads of mixed sizes — the per-round server cost of Step 6.

use adaptivefl_core::aggregate::{aggregate, Upload};
use adaptivefl_core::pool::{ModelPool, DEFAULT_RATIOS};
use adaptivefl_core::prune::extract_submodel;
use adaptivefl_models::ModelConfig;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_tensor::rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mixed_uploads(cfg: &ModelConfig, pool: &ModelPool, k: usize) -> Vec<Upload> {
    let mut r = rng::seeded(4);
    let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
    (0..k)
        .map(|i| Upload {
            params: extract_submodel(&global, cfg, &pool.entry(i % pool.len()).plan),
            weight: 10.0 + i as f32,
        })
        .collect()
}

fn bench_aggregate(c: &mut Criterion) {
    for (label, cfg) in [
        ("tiny", ModelConfig::tiny(10)),
        ("resnet18_fast", ModelConfig::resnet18_fast(10)),
    ] {
        let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
        let uploads = mixed_uploads(&cfg, &pool, 10);
        let mut r = rng::seeded(5);
        let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
        c.bench_function(&format!("aggregate_10_mixed_{label}"), |b| {
            b.iter(|| {
                let mut g = global.clone();
                aggregate(&mut g, black_box(&uploads));
                g
            })
        });
    }
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_aggregate
}
criterion_main!(benches);
