//! End-to-end benchmark: one full AdaptiveFL round (pool split already
//! done) and one full-model evaluation, at the quick-test scale.

use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_data::{Partition, SynthSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_round(c: &mut Criterion) {
    let mut cfg = SimConfig::quick_test(7);
    cfg.rounds = 1;
    cfg.eval_every = 1;
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);

    c.bench_function("adaptivefl_one_round_10_clients", |b| {
        b.iter(|| {
            let mut sim = Simulation::prepare(black_box(&cfg), &spec, Partition::Iid);
            sim.run(MethodKind::AdaptiveFl)
        })
    });

    c.bench_function("heterofl_one_round_10_clients", |b| {
        b.iter(|| {
            let mut sim = Simulation::prepare(black_box(&cfg), &spec, Partition::Iid);
            sim.run(MethodKind::HeteroFl)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_round
}
criterion_main!(benches);
