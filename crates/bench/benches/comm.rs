//! Benchmarks of the simulated transport: wire encode/decode of
//! realistic uplink frames (both codecs) and a full faulty exchange —
//! the per-round link cost added by `adaptivefl-comm`.

use adaptivefl_comm::wire::{decode_update_up, encode_update_up, UpdateUp, WireCodec};
use adaptivefl_comm::{FaultPlan, SimTransport};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_data::{Partition, SynthSpec};
use adaptivefl_models::ModelConfig;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_tensor::rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn sample_update(cfg: &ModelConfig) -> UpdateUp {
    let mut r = rng::seeded(11);
    let params = cfg.build(&cfg.full_plan(), &mut r).param_map();
    UpdateUp {
        round: 5,
        client: 42,
        data_size: 30,
        params,
    }
}

fn bench_wire(c: &mut Criterion) {
    for (label, cfg) in [
        ("tiny", ModelConfig::tiny(10)),
        ("resnet18_fast", ModelConfig::resnet18_fast(10)),
    ] {
        let msg = sample_update(&cfg);
        for (codec_label, codec) in [("dense", WireCodec::Dense), ("quant", WireCodec::Quantized)] {
            c.bench_function(&format!("wire_encode_{codec_label}_{label}"), |b| {
                b.iter(|| encode_update_up(black_box(&msg), codec))
            });
            let frame = encode_update_up(&msg, codec);
            c.bench_function(&format!("wire_decode_{codec_label}_{label}"), |b| {
                b.iter(|| decode_update_up(black_box(&frame)).expect("intact frame"))
            });
        }
    }
}

fn bench_faulty_round(c: &mut Criterion) {
    let mut cfg = SimConfig::quick_test(900);
    cfg.rounds = 1;
    cfg.eval_every = usize::MAX;
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    c.bench_function("sim_transport_faulty_round", |b| {
        b.iter(|| {
            let mut transport = SimTransport::new().with_threads(2).with_faults(FaultPlan {
                upload_drop: 0.2,
                straggler_prob: 0.2,
                ..Default::default()
            });
            let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
            sim.run_with_transport(MethodKind::AdaptiveFl, &mut transport)
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_wire, bench_faulty_round
}
criterion_main!(benches);
