//! Benchmarks of the RL selection machinery: reward computation,
//! sampling, and table updates, at the paper's 100-client scale.

use adaptivefl_core::pool::{ModelPool, DEFAULT_RATIOS};
use adaptivefl_core::rl::RlState;
use adaptivefl_core::select::{select_client, SelectionStrategy};
use adaptivefl_models::ModelConfig;
use adaptivefl_tensor::rng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_selection(c: &mut Criterion) {
    let cfg = ModelConfig::vgg16_cifar();
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let mut rl = RlState::new(pool.p(), 100);
    // Warm the tables with some history.
    for client in 0..100 {
        rl.update_on_return(&pool, 6, Some(client % pool.len()), client);
    }
    let eligible: Vec<usize> = (0..100).collect();

    c.bench_function("select_client_100_rl", |b| {
        let mut r = rng::seeded(6);
        b.iter(|| {
            select_client(
                SelectionStrategy::CuriosityAndResource,
                black_box(&rl),
                &pool,
                3,
                &eligible,
                &mut r,
            )
        })
    });

    c.bench_function("rl_update_on_return", |b| {
        b.iter(|| rl.update_on_return(black_box(&pool), 6, Some(2), 7))
    });

    c.bench_function("resource_reward", |b| {
        b.iter(|| rl.resource_reward(black_box(&pool), 4, 42))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_selection
}
criterion_main!(benches);
