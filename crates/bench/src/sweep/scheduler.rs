//! Work-stealing job scheduler for the sweep.
//!
//! The same executor shape as `adaptivefl-comm`'s round executor:
//! crossbeam-scoped workers self-schedule by atomically claiming the
//! next unclaimed job index, so a slow job never stalls the queue
//! behind it. Results are re-sorted into submission order before
//! returning — the caller sees the same `Vec` at any thread count,
//! which is what makes sweep output thread-count-independent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job(i, &jobs[i])` for every job across up to `threads`
/// workers and returns the results in job order.
///
/// Each invocation must be self-contained (jobs share only `&J`), so
/// scheduling order cannot influence any result — the returned `Vec`
/// is identical for any `threads ≥ 1`. With `threads == 1` the jobs
/// run inline on the caller's thread, which doubles as the serial
/// reference for the determinism tests.
///
/// # Panics
///
/// Propagates a panic from any job after all workers have stopped.
pub fn run_parallel<J, R, F>(jobs: &[J], threads: usize, job: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    assert!(threads > 0, "run_parallel needs at least one thread");
    if threads == 1 || jobs.len() <= 1 {
        return jobs.iter().enumerate().map(|(i, j)| job(i, j)).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let workers = threads.min(jobs.len());
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = job(i, &jobs[i]);
                done.lock().expect("collector lock").push((i, r));
            });
        }
    })
    .expect("sweep worker panicked");
    let mut out = done.into_inner().expect("collector lock");
    out.sort_by_key(|(i, _)| *i);
    assert_eq!(out.len(), jobs.len(), "every job must report a result");
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order_at_any_thread_count() {
        let jobs: Vec<usize> = (0..37).collect();
        let serial = run_parallel(&jobs, 1, |i, j| i * 1000 + j * j);
        for threads in [2, 4, 8] {
            let parallel = run_parallel(&jobs, threads, |i, j| i * 1000 + j * j);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_job() {
        let none: Vec<u8> = run_parallel(&[], 4, |_, j: &u8| *j);
        assert!(none.is_empty());
        assert_eq!(run_parallel(&[9u8], 4, |_, j| *j + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs = [1u64, 2, 3];
        assert_eq!(run_parallel(&jobs, 16, |_, j| j * 2), vec![2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_parallel(&[1u8, 2], 0, |_, j| *j);
    }
}
