//! Statistical verdicts: every paper claim the experiment suite
//! checks by eye, re-evaluated as a paired sign test over the sweep's
//! per-seed records and written as machine-readable `verdicts.json`.
//!
//! Each claim reduces the records to one paired difference per
//! comparison unit (a `(group, seed)` pair, or just a seed), oriented
//! so that a positive difference supports the paper. The verdict is
//! then mechanical:
//!
//! * `reproduced` — more wins than losses, sign-test p ≤ 0.05;
//! * `partial` — wins ≥ losses but not significant (or all ties);
//! * `not` — more losses than wins;
//! * `no-data` — the sweep did not cover the claim's cells.
//!
//! The file carries no timestamps: same records in, same bytes out.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use super::record::CellRecord;
use super::stats::{SampleStats, SignTest};

/// Schema version of `verdicts.json`.
pub const VERDICTS_VERSION: u32 = 1;

/// Significance threshold for `reproduced`.
pub const ALPHA: f64 = 0.05;

/// Tolerance (absolute accuracy) for the Figure 3 monotonicity
/// claims, matching the fig3 binary's indicator.
const MONOTONE_TOL: f64 = 0.02;

/// One claim's verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimOutcome {
    /// Stable claim identifier (kebab-case).
    pub id: String,
    /// Experiment the claim belongs to.
    pub experiment: String,
    /// Human-readable statement of the claim.
    pub description: String,
    /// Paired comparisons evaluated.
    pub n: usize,
    /// Comparisons supporting the claim (difference > 0).
    pub wins: usize,
    /// Comparisons contradicting it (difference < 0).
    pub losses: usize,
    /// Exact ties.
    pub ties: usize,
    /// Two-sided exact sign-test p-value (1.0 when `n` = 0).
    pub p: f64,
    /// Mean paired difference (claim units; accuracy fractions).
    pub mean_diff: f64,
    /// `reproduced` / `partial` / `not` / `no-data`.
    pub status: String,
}

/// The complete `verdicts.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerdictsFile {
    /// Schema version ([`VERDICTS_VERSION`]).
    pub version: u32,
    /// Experiments the evaluated records covered, sorted.
    pub experiments: Vec<String>,
    /// Seeds the records covered, sorted.
    pub seeds: Vec<u64>,
    /// One outcome per claim, in fixed claim order.
    pub claims: Vec<ClaimOutcome>,
}

impl VerdictsFile {
    /// Schema validation for `sweep --check`: field ranges and
    /// cross-field consistency. Typed deserialization has already
    /// enforced presence and types; this catches semantic damage.
    pub fn validate(&self) -> Result<(), String> {
        if self.version != VERDICTS_VERSION {
            return Err(format!("unsupported version {}", self.version));
        }
        if self.claims.is_empty() {
            return Err("no claims".into());
        }
        let mut ids = BTreeSet::new();
        for c in &self.claims {
            if !ids.insert(&c.id) {
                return Err(format!("duplicate claim id {:?}", c.id));
            }
            if c.wins + c.losses + c.ties != c.n {
                return Err(format!("{}: wins+losses+ties != n", c.id));
            }
            if !(0.0..=1.0).contains(&c.p) {
                return Err(format!("{}: p = {} out of range", c.id, c.p));
            }
            if !c.mean_diff.is_finite() {
                return Err(format!("{}: non-finite mean_diff", c.id));
            }
            let valid_status = match c.status.as_str() {
                "no-data" => c.n == 0,
                "reproduced" | "partial" | "not" => c.n > 0,
                _ => return Err(format!("{}: unknown status {:?}", c.id, c.status)),
            };
            if !valid_status {
                return Err(format!(
                    "{}: status {:?} inconsistent with n = {}",
                    c.id, c.status, c.n
                ));
            }
        }
        Ok(())
    }

    /// Number of claims per status, as `(reproduced, partial, not,
    /// no-data)`.
    pub fn tally(&self) -> (usize, usize, usize, usize) {
        let count = |s: &str| self.claims.iter().filter(|c| c.status == s).count();
        (
            count("reproduced"),
            count("partial"),
            count("not"),
            count("no-data"),
        )
    }
}

/// Evaluates every claim against the records (partial sweeps simply
/// leave uncovered claims at `no-data`).
pub fn evaluate_claims(records: &[CellRecord]) -> VerdictsFile {
    let experiments: Vec<String> = records
        .iter()
        .map(|r| r.experiment.clone())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let seeds: Vec<u64> = records
        .iter()
        .map(|r| r.seed)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let claims = vec![
        claim(
            "table2-adaptivefl-best",
            "table2",
            "AdaptiveFL has the best avg accuracy in every Table 2 column",
            champion_diffs(records, "table2", "AdaptiveFL", |r| r.best_avg),
        ),
        claim(
            "table3-adaptivefl-best",
            "table3",
            "AdaptiveFL has the best avg accuracy under every device proportion",
            champion_diffs(records, "table3", "AdaptiveFL", |r| r.best_avg),
        ),
        claim(
            "table3-strong-devices-help",
            "table3",
            "Every method's full accuracy improves from 8:1:1 to 1:1:8 devices",
            table3_strong_diffs(records),
        ),
        claim(
            "table4-fine-beats-coarse",
            "table4",
            "Fine-grained pruning (p=3) beats coarse (p=1) in every Table 4 cell",
            variant_pair_diffs(records, "table4", "fine", "coarse", |r| r.best_full),
        ),
        claim(
            "fig2-adaptivefl-on-top",
            "fig2",
            "AdaptiveFL's learning curve peaks highest in every Figure 2 panel",
            champion_diffs(records, "fig2", "AdaptiveFL", |r| r.best_avg),
        ),
        claim(
            "fig2-adaptivefl-least-variation",
            "fig2",
            "AdaptiveFL's curve fluctuates least in every Figure 2 panel",
            least_variation_diffs(records),
        ),
        claim(
            "fig3-adaptivefl-monotone",
            "fig3",
            "AdaptiveFL's submodel accuracy grows with submodel size",
            fig3_monotone_diffs(records, "AdaptiveFL", true),
        ),
        claim(
            "fig3-baselines-inverted",
            "fig3",
            "HeteroFL's and ScaleFL's largest submodels do not beat their smallest",
            fig3_inversion_diffs(records),
        ),
        claim(
            "fig4-adaptivefl-highest",
            "fig4",
            "AdaptiveFL reaches the highest full accuracy at every client count",
            champion_diffs(records, "fig4", "AdaptiveFL", |r| r.best_full),
        ),
        claim(
            "fig5-cs-best-accuracy",
            "fig5",
            "The full +CS selection reaches the highest accuracy of the Figure 5 variants",
            champion_diffs(records, "fig5", "AdaptiveFL", |r| r.best_full),
        ),
        claim(
            "fig5-greed-highest-waste",
            "fig5",
            "Greedy dispatch has the highest communication-waste rate",
            champion_diffs(records, "fig5", "AdaptiveFL+Greed", |r| r.comm_waste),
        ),
        claim(
            "fig6-adaptivefl-best",
            "fig6",
            "AdaptiveFL reaches the best accuracy on the 17-device test-bed",
            champion_diffs(records, "fig6", "AdaptiveFL", |r| r.best_full),
        ),
        claim(
            "ablation-finer-p-helps",
            "ablation",
            "p=3 pool granularity beats p=1 on full accuracy",
            variant_pair_diffs(records, "ablation", "p=3", "p=1", |r| r.best_full),
        ),
        claim(
            "ablation-reward-cap-helps",
            "ablation",
            "The paper's 0.5 success-rate reward cap beats an uncapped reward",
            variant_pair_diffs(
                records,
                "ablation",
                "cap=0.5 (paper)",
                "cap=1.0 (off)",
                |r| r.best_full,
            ),
        ),
        claim(
            "ablation-paper-ratios-best",
            "ablation",
            "The paper's (0.40, 0.66) width ratios beat the neighbouring pairs",
            ratios_best_diffs(records),
        ),
    ];

    VerdictsFile {
        version: VERDICTS_VERSION,
        experiments,
        seeds,
        claims,
    }
}

fn claim(id: &str, experiment: &str, description: &str, diffs: Vec<f64>) -> ClaimOutcome {
    let test = SignTest::from_diffs(&diffs);
    let mean_diff = SampleStats::from_samples(&diffs).mean;
    let status = if diffs.is_empty() {
        "no-data"
    } else if test.wins > test.losses && test.p <= ALPHA {
        "reproduced"
    } else if test.wins >= test.losses {
        "partial"
    } else {
        "not"
    };
    ClaimOutcome {
        id: id.into(),
        experiment: experiment.into(),
        description: description.into(),
        n: diffs.len(),
        wins: test.wins,
        losses: test.losses,
        ties: test.ties,
        p: test.p,
        mean_diff,
        status: status.into(),
    }
}

/// Records of one experiment, keyed by `(group, seed)` — the
/// comparison unit of most claims. BTreeMap order keeps diff
/// collection deterministic.
fn panels<'a>(
    records: &'a [CellRecord],
    experiment: &str,
) -> BTreeMap<(&'a str, u64), Vec<&'a CellRecord>> {
    let mut map: BTreeMap<(&str, u64), Vec<&CellRecord>> = BTreeMap::new();
    for r in records.iter().filter(|r| r.experiment == experiment) {
        map.entry((r.group.as_str(), r.seed)).or_default().push(r);
    }
    map
}

/// Champion-vs-best-rival differences: for each `(group, seed)` that
/// holds the champion and at least one rival,
/// `metric(champion) - max(metric(rivals))`.
fn champion_diffs(
    records: &[CellRecord],
    experiment: &str,
    champion: &str,
    metric: impl Fn(&CellRecord) -> f64,
) -> Vec<f64> {
    let mut diffs = Vec::new();
    for group in panels(records, experiment).values() {
        let Some(champ) = group.iter().find(|r| r.method == champion) else {
            continue;
        };
        let rival = group
            .iter()
            .filter(|r| r.method != champion)
            .map(|r| metric(r))
            .max_by(f64::total_cmp);
        if let Some(rival) = rival {
            diffs.push(metric(champ) - rival);
        }
    }
    diffs
}

/// Variant-vs-variant differences within each `(group, seed)`:
/// `metric(a) - metric(b)` wherever both variants exist.
fn variant_pair_diffs(
    records: &[CellRecord],
    experiment: &str,
    a: &str,
    b: &str,
    metric: impl Fn(&CellRecord) -> f64,
) -> Vec<f64> {
    let mut diffs = Vec::new();
    for group in panels(records, experiment).values() {
        let va = group.iter().find(|r| r.variant == a);
        let vb = group.iter().find(|r| r.variant == b);
        if let (Some(va), Some(vb)) = (va, vb) {
            diffs.push(metric(va) - metric(vb));
        }
    }
    diffs
}

/// Table 3's proportion claim: per `(method, seed)`, full accuracy at
/// 1:1:8 (strong-heavy) minus at 8:1:1 (weak-heavy).
fn table3_strong_diffs(records: &[CellRecord]) -> Vec<f64> {
    let mut by_method_seed: BTreeMap<(&str, u64), [Option<f64>; 2]> = BTreeMap::new();
    for r in records.iter().filter(|r| r.experiment == "table3") {
        let slot = match r.group.as_str() {
            "1:1:8" => 0,
            "8:1:1" => 1,
            _ => continue,
        };
        by_method_seed
            .entry((r.method.as_str(), r.seed))
            .or_default()[slot] = Some(r.best_full);
    }
    by_method_seed
        .values()
        .filter_map(|[strong, weak]| Some((*strong)? - (*weak)?))
        .collect()
}

/// Figure 2's stability claim: per `(panel, seed)`, the smallest
/// rival curve variation minus AdaptiveFL's (positive when AdaptiveFL
/// fluctuates least).
fn least_variation_diffs(records: &[CellRecord]) -> Vec<f64> {
    let mut diffs = Vec::new();
    for group in panels(records, "fig2").values() {
        let Some(champ) = group.iter().find(|r| r.method == "AdaptiveFL") else {
            continue;
        };
        let rival = group
            .iter()
            .filter(|r| r.method != "AdaptiveFL")
            .map(|r| r.avg_curve_variation())
            .min_by(f64::total_cmp);
        if let Some(rival) = rival {
            diffs.push(rival - champ.avg_curve_variation());
        }
    }
    diffs
}

/// Figure 3 monotonicity margin for one method: per seed, the
/// smallest small-to-large accuracy step plus the tolerance —
/// positive iff accuracy is (tolerantly) non-decreasing with size.
/// With `expect_monotone = false` the sign flips, so a positive value
/// means the ordering is violated (the baseline-inversion claim).
fn fig3_monotone_diffs(records: &[CellRecord], method: &str, expect_monotone: bool) -> Vec<f64> {
    let mut diffs = Vec::new();
    let mut matching: Vec<&CellRecord> = records
        .iter()
        .filter(|r| r.experiment == "fig3" && r.method == method)
        .collect();
    matching.sort_by_key(|r| r.seed);
    for r in matching {
        if r.levels.len() < 2 {
            continue;
        }
        let min_step = r
            .levels
            .windows(2)
            .map(|w| w[1].1 - w[0].1)
            .min_by(f64::total_cmp)
            .expect("at least one step");
        let margin = min_step + MONOTONE_TOL;
        diffs.push(if expect_monotone { margin } else { -margin });
    }
    diffs
}

/// The baseline half of Figure 3: HeteroFL and ScaleFL are expected
/// to *break* monotonicity (their largest model does not beat their
/// smallest).
fn fig3_inversion_diffs(records: &[CellRecord]) -> Vec<f64> {
    let mut diffs = fig3_monotone_diffs(records, "HeteroFL", false);
    diffs.extend(fig3_monotone_diffs(records, "ScaleFL", false));
    diffs
}

/// Width-ratio claim: per seed, the paper's (0.40, 0.66) pair against
/// the best of its neighbours.
fn ratios_best_diffs(records: &[CellRecord]) -> Vec<f64> {
    let mut diffs = Vec::new();
    for group in panels(records, "ablation").values() {
        if group.iter().any(|r| r.group != "ratios") {
            continue;
        }
        let Some(paper) = group.iter().find(|r| r.variant == "S=0.4,M=0.66") else {
            continue;
        };
        let rival = group
            .iter()
            .filter(|r| r.variant != "S=0.4,M=0.66")
            .map(|r| r.best_full)
            .max_by(f64::total_cmp);
        if let Some(rival) = rival {
            diffs.push(paper.best_full - rival);
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::record::RECORD_VERSION;

    fn rec(experiment: &str, group: &str, method: &str, seed: u64, best: f64) -> CellRecord {
        CellRecord {
            version: RECORD_VERSION,
            experiment: experiment.into(),
            slug: format!("{experiment}-{group}-{method}"),
            group: group.into(),
            method: method.into(),
            model: "M".into(),
            dataset: "D".into(),
            partition: "IID".into(),
            variant: String::new(),
            seed,
            best_full: best,
            best_avg: best,
            final_full: best,
            final_avg: best,
            comm_waste: 0.1,
            sim_secs: 1.0,
            levels: vec![],
            curve: vec![],
            fingerprint_fnv: 0,
        }
    }

    fn champion_scenario(adaptive_lead: f64, seeds: u64) -> Vec<CellRecord> {
        let mut recs = Vec::new();
        for seed in 0..seeds {
            recs.push(rec("table2", "g", "AdaptiveFL", seed, 0.6 + adaptive_lead));
            recs.push(rec("table2", "g", "HeteroFL", seed, 0.6));
            recs.push(rec("table2", "g", "ScaleFL", seed, 0.55));
        }
        recs
    }

    #[test]
    fn champion_wins_everywhere_is_reproduced_with_enough_seeds() {
        let v = evaluate_claims(&champion_scenario(0.05, 6));
        let c = v
            .claims
            .iter()
            .find(|c| c.id == "table2-adaptivefl-best")
            .unwrap();
        assert_eq!((c.n, c.wins, c.losses), (6, 6, 0));
        assert!(c.p <= ALPHA, "p = {}", c.p);
        assert_eq!(c.status, "reproduced");
        assert!((c.mean_diff - 0.05).abs() < 1e-12);
    }

    #[test]
    fn few_seeds_cap_at_partial() {
        // 3/3 wins: p = 0.25 — right, but not significant.
        let v = evaluate_claims(&champion_scenario(0.05, 3));
        let c = v
            .claims
            .iter()
            .find(|c| c.id == "table2-adaptivefl-best")
            .unwrap();
        assert_eq!(c.status, "partial");
    }

    #[test]
    fn champion_losing_is_not_reproduced() {
        let v = evaluate_claims(&champion_scenario(-0.05, 6));
        let c = v
            .claims
            .iter()
            .find(|c| c.id == "table2-adaptivefl-best")
            .unwrap();
        assert_eq!(c.status, "not");
    }

    #[test]
    fn uncovered_claims_report_no_data() {
        let v = evaluate_claims(&champion_scenario(0.05, 2));
        let fig6 = v
            .claims
            .iter()
            .find(|c| c.id == "fig6-adaptivefl-best")
            .unwrap();
        assert_eq!(fig6.status, "no-data");
        assert_eq!(fig6.n, 0);
        assert!((fig6.p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_margin_uses_levels() {
        let mut up = rec("fig3", "fig3", "AdaptiveFL", 0, 0.6);
        up.levels = vec![
            ("S_1".into(), 0.4),
            ("M_1".into(), 0.5),
            ("L_1".into(), 0.6),
        ];
        let mut down = rec("fig3", "fig3", "HeteroFL", 0, 0.6);
        down.levels = vec![
            ("S_1".into(), 0.6),
            ("M_1".into(), 0.5),
            ("L_1".into(), 0.4),
        ];
        let v = evaluate_claims(&[up, down]);
        let mono = v
            .claims
            .iter()
            .find(|c| c.id == "fig3-adaptivefl-monotone")
            .unwrap();
        assert_eq!((mono.wins, mono.losses), (1, 0));
        let inv = v
            .claims
            .iter()
            .find(|c| c.id == "fig3-baselines-inverted")
            .unwrap();
        assert_eq!((inv.wins, inv.losses), (1, 0));
    }

    #[test]
    fn file_round_trips_and_validates() {
        let v = evaluate_claims(&champion_scenario(0.05, 4));
        v.validate().expect("fresh verdicts validate");
        let text = serde_json::to_string_pretty(&v).unwrap();
        let back: VerdictsFile = serde_json::from_str(&text).unwrap();
        assert_eq!(v, back);
        let (r, p, n, nd) = v.tally();
        assert_eq!(r + p + n + nd, v.claims.len());
    }

    #[test]
    fn validate_rejects_damage() {
        let mut v = evaluate_claims(&champion_scenario(0.05, 4));
        v.claims[0].p = 1.5;
        assert!(v.validate().is_err());
        let mut v2 = evaluate_claims(&champion_scenario(0.05, 4));
        v2.claims[0].status = "maybe".into();
        assert!(v2.validate().is_err());
        let mut v3 = evaluate_claims(&champion_scenario(0.05, 4));
        v3.version = 9;
        assert!(v3.validate().is_err());
    }
}
