//! The parallel multi-seed sweep engine.
//!
//! The single-seed experiment bins check the paper's claims against
//! one sample per cell; at this scale run-to-run noise on a single
//! cell is several accuracy points. This module turns the same grids
//! into `cells × seeds` jobs:
//!
//! * [`grids`] exposes every bin's cell grid as data — the bins and
//!   the sweep iterate the exact same [`Cell`]s;
//! * [`scheduler`] fans the jobs out over worker threads that pull
//!   from a shared atomic queue; every job is fully isolated (own
//!   environment, own RNG streams derived from its seed, own scratch
//!   arena, optional private checkpoint dir and trace file), so a
//!   sweep's per-`(cell, seed)` results are byte-identical at any
//!   thread count — `tests/sweep_determinism.rs` asserts it;
//! * [`record`] + [`io`] persist one JSON record per `(cell, seed)`
//!   under `results/sweep/<slug>/<seed>.json`;
//! * [`stats`] aggregates mean / std / 95 % CI per cell and provides
//!   the paired sign test;
//! * [`verdicts`] re-evaluates every EXPERIMENTS.md claim as a
//!   machine-checkable statistical verdict (`verdicts.json`).
//!
//! Run it with the `sweep` binary:
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin sweep -- --seeds 3 --jobs 8
//! ```

pub mod cell;
pub mod grids;
pub mod io;
pub mod record;
pub mod scheduler;
pub mod stats;
pub mod verdicts;

pub use cell::{run_cell_inline, Cell, CellRun, FleetSpec, JobOpts};
pub use io::{read_records, write_record};
pub use record::{CellRecord, CurvePoint};
pub use scheduler::run_parallel;
pub use stats::{summarize_cells, CellSummary, SampleStats, SignTest};
pub use verdicts::{evaluate_claims, ClaimOutcome, VerdictsFile};
