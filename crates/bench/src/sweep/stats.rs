//! Statistics primitives for the sweep: per-cell sample summaries
//! (mean / std / 95 % confidence interval) and the paired sign test
//! used by the verdict layer.
//!
//! Everything here is exactly permutation-invariant: samples are
//! sorted by [`f64::total_cmp`] before any floating-point reduction,
//! so reordering inputs can never change a digit of the output —
//! a property the proptests in `tests/stats_props.rs` pin down.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use super::record::CellRecord;

/// Two-sided t-distribution critical values at 95 % confidence for
/// `df = 1..=30`; larger df fall back to the normal 1.96.
const T_CRIT_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided 95 % t critical value for `df` degrees of freedom.
pub fn t_crit_95(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T_CRIT_95.len() {
        T_CRIT_95[df - 1]
    } else {
        1.96
    }
}

/// Mean, sample standard deviation and 95 % confidence half-width of
/// a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Number of samples.
    pub n: usize,
    /// Sample mean (0 for an empty set).
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Half-width of the 95 % t confidence interval on the mean
    /// (0 for n ≤ 1 — a single sample asserts nothing).
    pub ci95: f64,
}

impl SampleStats {
    /// Summarises `samples`. Sorts a copy by total order first, so
    /// any permutation of the input produces bit-identical output.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut xs = samples.to_vec();
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        if n == 0 {
            return SampleStats {
                n: 0,
                mean: 0.0,
                std: 0.0,
                ci95: 0.0,
            };
        }
        // All-equal samples carry no spread; short-circuiting keeps
        // the mean exact instead of letting `sum / n` round it, and
        // also covers n == 1.
        if xs[0].to_bits() == xs[n - 1].to_bits() {
            return SampleStats {
                n,
                mean: xs[0],
                std: 0.0,
                ci95: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let ss: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        let std = (ss / (n - 1) as f64).sqrt();
        let ci95 = t_crit_95(n - 1) * std / (n as f64).sqrt();
        SampleStats { n, mean, std, ci95 }
    }

    /// `"mean±ci"` with percent scaling, e.g. `"61.3±2.1"` — the
    /// column format of the sweep tables.
    pub fn pct_pm(&self) -> String {
        format!("{:.1}\u{b1}{:.1}", 100.0 * self.mean, 100.0 * self.ci95)
    }

    /// `"mean±ci"` in raw units with three decimals.
    pub fn raw_pm(&self) -> String {
        format!("{:.3}\u{b1}{:.3}", self.mean, self.ci95)
    }
}

/// Cross-seed summary of one cell — the row unit of the sweep tables
/// and of `stats.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Owning experiment.
    pub experiment: String,
    /// Cell identifier.
    pub slug: String,
    /// Comparison-panel key.
    pub group: String,
    /// Method display name.
    pub method: String,
    /// Experiment-specific axis label.
    pub variant: String,
    /// Seeds aggregated, sorted.
    pub seeds: Vec<u64>,
    /// Best full-model accuracy across seeds.
    pub best_full: SampleStats,
    /// Best mean-over-levels accuracy across seeds.
    pub best_avg: SampleStats,
    /// Communication-waste rate across seeds.
    pub comm_waste: SampleStats,
}

/// Aggregates records into one [`CellSummary`] per slug, sorted by
/// `(experiment, slug)`. Duplicate `(slug, seed)` records are a
/// caller bug (the sweep writes one file per job) and panic.
pub fn summarize_cells(records: &[CellRecord]) -> Vec<CellSummary> {
    let mut by_slug: BTreeMap<(&str, &str), Vec<&CellRecord>> = BTreeMap::new();
    for r in records {
        by_slug
            .entry((r.experiment.as_str(), r.slug.as_str()))
            .or_default()
            .push(r);
    }
    by_slug
        .into_values()
        .map(|mut group| {
            group.sort_by_key(|r| r.seed);
            let seeds: Vec<u64> = group.iter().map(|r| r.seed).collect();
            assert!(
                seeds.windows(2).all(|w| w[0] != w[1]),
                "duplicate seed for cell {}",
                group[0].slug
            );
            let col = |f: fn(&CellRecord) -> f64| {
                SampleStats::from_samples(&group.iter().map(|r| f(r)).collect::<Vec<_>>())
            };
            let first = group[0];
            CellSummary {
                experiment: first.experiment.clone(),
                slug: first.slug.clone(),
                group: first.group.clone(),
                method: first.method.clone(),
                variant: first.variant.clone(),
                seeds,
                best_full: col(|r| r.best_full),
                best_avg: col(|r| r.best_avg),
                comm_waste: col(|r| r.comm_waste),
            }
        })
        .collect()
}

/// Result of a paired (two-sided) sign test over per-seed differences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignTest {
    /// Pairs where the first sample won (difference > 0).
    pub wins: usize,
    /// Pairs where the first sample lost (difference < 0).
    pub losses: usize,
    /// Exact ties (excluded from the test, as is standard).
    pub ties: usize,
    /// Two-sided exact binomial p-value over the non-tied pairs;
    /// 1.0 when every pair tied (no evidence either way).
    pub p: f64,
}

impl SignTest {
    /// Runs the test on paired differences `a[i] - b[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths — pairing is by
    /// index, so a length mismatch is a caller bug.
    pub fn paired(a: &[f64], b: &[f64]) -> Self {
        assert_eq!(a.len(), b.len(), "sign test needs equal-length pairs");
        let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
        SignTest::from_diffs(&diffs)
    }

    /// Runs the test on precomputed differences.
    pub fn from_diffs(diffs: &[f64]) -> Self {
        let wins = diffs.iter().filter(|d| **d > 0.0).count();
        let losses = diffs.iter().filter(|d| **d < 0.0).count();
        let ties = diffs.len() - wins - losses;
        let n = wins + losses;
        let p = if n == 0 {
            1.0
        } else {
            two_sided_binomial_p(wins.min(losses), n)
        };
        SignTest {
            wins,
            losses,
            ties,
            p,
        }
    }
}

/// Two-sided exact binomial p-value under `p = 1/2`:
/// `min(1, 2 · P[X ≤ k])` for `X ~ Binomial(n, 1/2)`.
fn two_sided_binomial_p(k: usize, n: usize) -> f64 {
    let tail: f64 = (0..=k).map(|i| binom_pmf_half(i, n)).sum();
    (2.0 * tail).min(1.0)
}

/// `P[X = k]` for `X ~ Binomial(n, 1/2)`, via log-space `C(n, k)` so
/// it stays finite for any practical `n`.
fn binom_pmf_half(k: usize, n: usize) -> f64 {
    (ln_choose(n, k) - n as f64 * std::f64::consts::LN_2).exp()
}

/// `ln C(n, k)` by direct summation of logs — exact enough for
/// p-values and dependency-free (no `ln_gamma` in a bare std build).
fn ln_choose(n: usize, k: usize) -> f64 {
    let k = k.min(n - k.min(n));
    (0..k)
        .map(|i| ((n - i) as f64).ln() - ((i + 1) as f64).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_degenerate() {
        let e = SampleStats::from_samples(&[]);
        assert_eq!((e.n, e.mean, e.std, e.ci95), (0, 0.0, 0.0, 0.0));
        let s = SampleStats::from_samples(&[0.7]);
        assert_eq!((s.n, s.mean, s.std, s.ci95), (1, 0.7, 0.0, 0.0));
    }

    #[test]
    fn known_stats_check_out() {
        // {1, 2, 3}: mean 2, std 1, ci = 4.303 / sqrt(3).
        let s = SampleStats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert!((s.ci95 - 4.303 / 3.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn t_table_endpoints() {
        assert!((t_crit_95(1) - 12.706).abs() < 1e-9);
        assert!((t_crit_95(30) - 2.042).abs() < 1e-9);
        assert!((t_crit_95(31) - 1.96).abs() < 1e-9);
        assert!(t_crit_95(0).is_infinite());
    }

    #[test]
    fn formatting_scales() {
        let s = SampleStats::from_samples(&[0.612, 0.618, 0.609]);
        let txt = s.pct_pm();
        assert!(txt.starts_with("61."), "{txt}");
        assert!(txt.contains('\u{b1}'), "{txt}");
    }

    #[test]
    fn sign_test_counts_and_all_tied() {
        let t = SignTest::paired(&[1.0, 2.0, 3.0, 4.0], &[0.5, 2.5, 3.0, 1.0]);
        assert_eq!((t.wins, t.losses, t.ties), (2, 1, 1));
        let tied = SignTest::paired(&[1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(tied.ties, 2);
        assert!((tied.p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sign_test_exact_small_cases() {
        // 5 wins / 0 losses: p = 2 * (1/2)^5 = 0.0625.
        let t = SignTest::from_diffs(&[1.0; 5]);
        assert!((t.p - 0.0625).abs() < 1e-12, "{}", t.p);
        // 8/0: p = 2/256 = 0.0078125 — significant at 0.05.
        let t8 = SignTest::from_diffs(&[1.0; 8]);
        assert!((t8.p - 2.0 / 256.0).abs() < 1e-12);
        // 3/1: p = 2 * (C(4,0)+C(4,1)) / 16 = 0.625.
        let t31 = SignTest::from_diffs(&[1.0, 1.0, 1.0, -1.0]);
        assert!((t31.p - 0.625).abs() < 1e-12, "{}", t31.p);
    }

    #[test]
    fn summaries_group_by_slug_sorted() {
        use crate::sweep::record::RECORD_VERSION;
        let rec = |slug: &str, seed: u64, best: f64| CellRecord {
            version: RECORD_VERSION,
            experiment: "fig3".into(),
            slug: slug.into(),
            group: "fig3".into(),
            method: "AdaptiveFL".into(),
            model: "M".into(),
            dataset: "D".into(),
            partition: "IID".into(),
            variant: String::new(),
            seed,
            best_full: best,
            best_avg: best,
            final_full: best,
            final_avg: best,
            comm_waste: 0.2,
            sim_secs: 1.0,
            levels: vec![],
            curve: vec![],
            fingerprint_fnv: 0,
        };
        let summaries = summarize_cells(&[
            rec("b", 2, 0.5),
            rec("a", 1, 0.4),
            rec("a", 2, 0.6),
            rec("b", 1, 0.5),
        ]);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].slug, "a");
        assert_eq!(summaries[0].seeds, vec![1, 2]);
        assert!((summaries[0].best_full.mean - 0.5).abs() < 1e-12);
        assert_eq!(summaries[1].best_full.n, 2);
        assert!((summaries[1].best_full.std - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ln_choose_matches_pascal() {
        for n in 0..15usize {
            for k in 0..=n {
                let exact: f64 = (0..k).fold(1.0, |acc, i| acc * (n - i) as f64 / (i + 1) as f64);
                assert!(
                    (ln_choose(n, k).exp() - exact).abs() < 1e-6 * exact.max(1.0),
                    "C({n},{k})"
                );
            }
        }
    }
}
