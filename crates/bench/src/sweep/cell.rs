//! One experiment cell: a single method × configuration point of an
//! experiment grid, runnable at any seed with full per-job isolation.

use std::path::PathBuf;
use std::sync::Arc;

use adaptivefl_core::methods::{AdaptiveFl, FlMethod, MethodKind};
use adaptivefl_core::metrics::RunResult;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::{Env, RunHooks, SimConfig, Simulation};
use adaptivefl_core::transport::PerfectTransport;
use adaptivefl_data::{Partition, SynthSpec};
use adaptivefl_device::testbed::paper_testbed;
use adaptivefl_models::{ModelConfig, ModelKind};
use adaptivefl_store::{run_or_resume, SnapshotStore};
use adaptivefl_trace::JsonlTracer;

use crate::{finish_trace, sanitize_slug, Args, CHECKPOINT_EVERY};

/// How a cell instantiates its method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellRun {
    /// A method of the paper's line-up.
    Kind(MethodKind),
    /// AdaptiveFL (+CS) with a non-default RL success-rate reward cap
    /// (the `reward-cap` ablation).
    AdaptiveCap(f64),
}

impl CellRun {
    /// Display name — matches the instantiated method's
    /// `FlMethod::name`.
    pub fn method_name(&self) -> String {
        match self {
            CellRun::Kind(k) => k.to_string(),
            CellRun::AdaptiveCap(_) => "AdaptiveFL".into(),
        }
    }

    /// Builds the method exactly as the original bins did.
    pub fn instantiate(&self, env: &Env) -> Box<dyn FlMethod> {
        match self {
            CellRun::Kind(k) => k.instantiate(env),
            CellRun::AdaptiveCap(cap) => Box::new(
                AdaptiveFl::new(env, SelectionStrategy::CuriosityAndResource, false)
                    .with_reward_cap(*cap),
            ),
        }
    }
}

/// Which device fleet the cell trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetSpec {
    /// The proportion-derived fleet of [`Simulation::prepare`].
    Auto,
    /// The paper's 17-device Pi/Nano/Xavier test-bed (Figure 6).
    PaperTestbed,
}

/// One grid point. `slug` is unique across the whole grid and names
/// the cell's result/checkpoint/trace artifacts; `group` is the
/// comparison-panel key (cells sharing a group are paired by the
/// statistics layer); `variant` is the experiment-specific axis
/// (device proportion, panel name, ablation variant, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Owning experiment (`"table2"`, …, `"ablation"`).
    pub experiment: &'static str,
    /// Sanitized, grid-unique identifier.
    pub slug: String,
    /// Pairing key: all cells of one comparison panel share it.
    pub group: String,
    /// Model family label (`"VGG16"`, …).
    pub model: String,
    /// Dataset label (`"SynCIFAR-10"`, …).
    pub dataset: String,
    /// Partition label (`"IID"`, `"a=0.3"`, …).
    pub partition_label: String,
    /// Experiment-specific axis label (may be empty).
    pub variant: String,
    /// Synthetic dataset generator.
    pub spec: SynthSpec,
    /// Client partitioning.
    pub partition: Partition,
    /// Full simulation configuration (its `seed` is the grid's base
    /// seed; jobs override it per run).
    pub cfg: SimConfig,
    /// Method construction.
    pub run: CellRun,
    /// Device fleet selection.
    pub fleet: FleetSpec,
}

/// Per-job isolation options: when set, each `(cell, seed)` job gets
/// its own checkpoint subdirectory / trace file under these roots.
#[derive(Debug, Clone, Default)]
pub struct JobOpts {
    /// Root checkpoint directory (`--resume`).
    pub resume: Option<PathBuf>,
    /// Root trace directory (`--trace`).
    pub trace: Option<PathBuf>,
}

impl Cell {
    /// Starts a cell description; labels default from the arguments
    /// and can be refined with the builder methods.
    pub fn new(
        experiment: &'static str,
        raw_slug: &str,
        spec: SynthSpec,
        partition: Partition,
        cfg: SimConfig,
        run: CellRun,
    ) -> Self {
        Cell {
            experiment,
            slug: sanitize_slug(raw_slug),
            group: String::new(),
            model: String::new(),
            dataset: String::new(),
            partition_label: partition.to_string(),
            variant: String::new(),
            spec,
            partition,
            cfg,
            run,
            fleet: FleetSpec::Auto,
        }
    }

    /// Sets the comparison-panel key.
    pub fn group(mut self, group: impl Into<String>) -> Self {
        self.group = group.into();
        self
    }

    /// Sets the model label.
    pub fn model(mut self, model: impl Into<String>) -> Self {
        self.model = model.into();
        self
    }

    /// Sets the dataset label.
    pub fn dataset(mut self, dataset: impl Into<String>) -> Self {
        self.dataset = dataset.into();
        self
    }

    /// Sets the partition label (defaults to `partition.to_string()`).
    pub fn partition_label(mut self, label: impl Into<String>) -> Self {
        self.partition_label = label.into();
        self
    }

    /// Sets the experiment-specific axis label.
    pub fn variant(mut self, variant: impl Into<String>) -> Self {
        self.variant = variant.into();
        self
    }

    /// Trains on the paper's 17-device test-bed fleet.
    pub fn testbed(mut self) -> Self {
        self.fleet = FleetSpec::PaperTestbed;
        self
    }

    /// Method display name.
    pub fn method(&self) -> String {
        self.run.method_name()
    }

    /// Builds the cell's simulation at `seed`. Every random stream
    /// derives from the seed (data synthesis, fleet, run RNGs), so
    /// jobs at different seeds share nothing but the configuration
    /// shape.
    pub fn prepare(&self, seed: u64) -> Simulation {
        let cfg = self.cfg.with_seed(seed);
        let sim = Simulation::prepare(&cfg, &self.spec, self.partition);
        match self.fleet {
            FleetSpec::Auto => sim,
            FleetSpec::PaperTestbed => {
                let full = cfg.model.num_params(&cfg.model.full_plan());
                sim.with_fleet(paper_testbed(full, cfg.seed))
            }
        }
    }

    /// Runs the cell once at `seed` in full isolation: fresh
    /// environment, fresh scratch arena, and — when enabled — a
    /// private checkpoint directory and trace file named
    /// `<slug>-s<seed>`.
    pub fn execute(&self, seed: u64, opts: &JobOpts) -> RunResult {
        let store_slug = format!("{}-s{seed}", self.slug);
        run_prepared(self, seed, &store_slug, opts)
    }

    /// A miniature copy for smoke tests and CI: TinyCnn at the cell's
    /// input/classes, 3 rounds, a handful of clients. Slugs and labels
    /// are kept so the sweep plumbing (stores, stats, verdicts) is
    /// exercised end-to-end; the resulting numbers are meaningless.
    pub fn shrink(mut self) -> Cell {
        self.cfg.model = ModelConfig {
            kind: ModelKind::TinyCnn,
            input: self.spec.input,
            classes: self.spec.classes,
            width_mult: 1.0,
        };
        self.cfg.rounds = 3;
        self.cfg.eval_every = 2;
        self.cfg.eval_batch = 32;
        self.cfg.p = self.cfg.p.min(2);
        self.cfg.local.epochs = 1;
        self.cfg.local.batch_size = 8;
        if self.fleet == FleetSpec::PaperTestbed {
            // The paper test-bed is exactly 17 devices.
            self.cfg.num_clients = 17;
            self.cfg.clients_per_round = 5;
        } else {
            self.cfg.num_clients = 10;
            self.cfg.clients_per_round = 4;
        }
        self.cfg.samples_per_client = 10;
        self.cfg.test_samples = 50;
        self
    }
}

/// Runs a cell the way the original single-seed bins do: at the
/// grid's base seed, with `--resume`/`--trace` artifacts named by the
/// cell slug alone (no seed suffix), matching the pre-sweep layout.
pub fn run_cell_inline(cell: &Cell, args: &Args) -> RunResult {
    let opts = JobOpts {
        resume: args.resume.clone(),
        trace: args.trace.clone(),
    };
    run_prepared(cell, cell.cfg.seed, &cell.slug, &opts)
}

fn run_prepared(cell: &Cell, seed: u64, store_slug: &str, opts: &JobOpts) -> RunResult {
    let mut sim = cell.prepare(seed);
    let tracer = opts.trace.as_ref().map(|dir| {
        let path = dir.join(format!("{store_slug}.jsonl"));
        let t = Arc::new(JsonlTracer::create(&path).expect("creating trace file"));
        sim.set_tracer(Arc::clone(&t) as Arc<dyn adaptivefl_core::trace::Tracer>);
        t
    });
    let result = match &opts.resume {
        None => {
            let method = cell.run.instantiate(sim.env());
            sim.run_method(method)
        }
        // Checkpointed runs keep the exact `run_kind`/`run_method`
        // flow of the single-seed bins (same snapshot `kind` field,
        // same checkpoint trace events), so old resume directories
        // stay valid.
        Some(dir) => {
            let mut store =
                SnapshotStore::open(dir.join(store_slug)).expect("opening checkpoint store");
            match cell.run {
                CellRun::Kind(kind) => run_or_resume(
                    &mut sim,
                    kind,
                    &mut PerfectTransport,
                    &mut store,
                    CHECKPOINT_EVERY,
                )
                .expect("checkpointed run"),
                CellRun::AdaptiveCap(_) => {
                    let method = cell.run.instantiate(sim.env());
                    let resume_point = store.latest_valid().expect("scanning checkpoint store");
                    let hooks = RunHooks {
                        checkpoint_every: CHECKPOINT_EVERY,
                        sink: &mut store,
                        halt_after: None,
                    };
                    let run = match &resume_point {
                        Some((_, snap)) => {
                            sim.resume_method_with_hooks(method, snap, &mut PerfectTransport, hooks)
                        }
                        None => sim.run_method_with_hooks(method, &mut PerfectTransport, hooks),
                    };
                    run.expect("checkpointed run")
                        .expect("no halt configured, so the run completes")
                }
            }
        }
    };
    finish_trace(tracer);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syn_cifar10;

    fn quick_cell() -> Cell {
        let spec = crate::syn_cifar10();
        let cfg = SimConfig::quick_test(9).with_seed(9);
        let mut cfg = cfg;
        cfg.model.input = spec.input;
        cfg.model.classes = spec.classes;
        Cell::new(
            "table2",
            "test/Cell Slug",
            spec,
            Partition::Iid,
            cfg,
            CellRun::Kind(MethodKind::HeteroFl),
        )
        .group("g")
        .model("TinyCnn")
        .dataset("SynCIFAR-10")
    }

    #[test]
    fn slug_is_sanitized_and_labels_stick() {
        let c = quick_cell();
        assert_eq!(c.slug, "test-cell-slug");
        assert_eq!(c.method(), "HeteroFL");
        assert_eq!(c.partition_label, "IID");
        assert_eq!(c.model, "TinyCnn");
    }

    #[test]
    fn execute_is_seed_isolated_and_deterministic() {
        let c = quick_cell();
        let opts = JobOpts::default();
        let a1 = c.execute(11, &opts);
        let a2 = c.execute(11, &opts);
        let b = c.execute(12, &opts);
        assert_eq!(a1, a2, "same (cell, seed) must be bit-identical");
        assert_ne!(a1, b, "different seeds must differ");
    }

    #[test]
    fn shrink_produces_a_runnable_miniature() {
        let spec = syn_cifar10();
        let [(_, vgg), _] = crate::paper_models(spec.classes, spec.input);
        let cfg = crate::experiment_cfg_for(vgg, false, 5, false);
        let cell = Cell::new(
            "table2",
            "shrunk",
            spec,
            Partition::Dirichlet(0.6),
            cfg,
            CellRun::Kind(MethodKind::AdaptiveFl),
        )
        .shrink();
        assert_eq!(cell.cfg.rounds, 3);
        let r = cell.execute(7, &JobOpts::default());
        assert_eq!(r.rounds.len(), 3);
        assert!(!r.evals.is_empty());
    }
}
