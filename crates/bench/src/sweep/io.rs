//! Sweep result persistence: one JSON file per `(cell, seed)` job,
//! laid out as `<root>/<slug>/<seed>.json`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use super::record::CellRecord;

/// Path of the record for `(slug, seed)` under `root`.
pub fn record_path(root: &Path, slug: &str, seed: u64) -> PathBuf {
    root.join(slug).join(format!("{seed}.json"))
}

/// Writes one record (creating `<root>/<slug>/` on demand). The file
/// content is a pure function of the record — no timestamps — so
/// re-running a sweep reproduces it byte-for-byte.
pub fn write_record(root: &Path, record: &CellRecord) -> io::Result<PathBuf> {
    let path = record_path(root, &record.slug, record.seed);
    fs::create_dir_all(path.parent().expect("record path has a parent"))?;
    let body = serde_json::to_string_pretty(record)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(&path, body)?;
    Ok(path)
}

/// Loads every record under `root`, sorted by `(slug, seed)` so the
/// result is independent of directory-iteration order. Non-`.json`
/// entries are ignored; unreadable or malformed records are errors —
/// a sweep directory is machine-written, so damage means a real
/// problem, not noise to skip.
pub fn read_records(root: &Path) -> io::Result<Vec<CellRecord>> {
    let mut records = Vec::new();
    if !root.exists() {
        return Ok(records);
    }
    for cell_dir in fs::read_dir(root)? {
        let cell_dir = cell_dir?.path();
        if !cell_dir.is_dir() {
            continue;
        }
        for entry in fs::read_dir(&cell_dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = fs::read_to_string(&path)?;
            let record: CellRecord = serde_json::from_str(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            records.push(record);
        }
    }
    records.sort_by(|a, b| (&a.slug, a.seed).cmp(&(&b.slug, b.seed)));
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::record::{CurvePoint, RECORD_VERSION};

    fn rec(slug: &str, seed: u64) -> CellRecord {
        CellRecord {
            version: RECORD_VERSION,
            experiment: "fig3".into(),
            slug: slug.into(),
            group: "fig3".into(),
            method: "AdaptiveFL".into(),
            model: "VGG16".into(),
            dataset: "SynCIFAR-10".into(),
            partition: "IID".into(),
            variant: String::new(),
            seed,
            best_full: 0.5,
            best_avg: 0.4,
            final_full: 0.45,
            final_avg: 0.35,
            comm_waste: 0.1,
            sim_secs: 12.0,
            levels: vec![("S_1".into(), 0.3)],
            curve: vec![CurvePoint {
                round: 1,
                secs: 2.0,
                full: 0.45,
                avg: 0.35,
            }],
            fingerprint_fnv: 42,
        }
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adaptivefl-sweep-io-{tag}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_read_round_trips_sorted() {
        let root = tmp_root("roundtrip");
        for (slug, seed) in [("b-cell", 2024u64), ("a-cell", 2025), ("a-cell", 2024)] {
            write_record(&root, &rec(slug, seed)).unwrap();
        }
        let back = read_records(&root).unwrap();
        let keys: Vec<(String, u64)> = back.iter().map(|r| (r.slug.clone(), r.seed)).collect();
        assert_eq!(
            keys,
            vec![
                ("a-cell".into(), 2024),
                ("a-cell".into(), 2025),
                ("b-cell".into(), 2024)
            ]
        );
        assert_eq!(back[0], rec("a-cell", 2024));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rewriting_is_byte_identical() {
        let root = tmp_root("stable");
        let p1 = write_record(&root, &rec("c", 1)).unwrap();
        let first = fs::read(&p1).unwrap();
        let p2 = write_record(&root, &rec("c", 1)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(first, fs::read(&p2).unwrap());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_root_reads_empty() {
        let root = tmp_root("missing");
        assert!(read_records(&root).unwrap().is_empty());
    }

    #[test]
    fn malformed_record_is_an_error() {
        let root = tmp_root("malformed");
        fs::create_dir_all(root.join("x")).unwrap();
        fs::write(root.join("x/1.json"), "{not json").unwrap();
        assert!(read_records(&root).is_err());
        fs::remove_dir_all(&root).unwrap();
    }
}
