//! Every experiment's run grid as data.
//!
//! Each function mirrors its binary in `src/bin/` cell for cell —
//! same models, datasets, partitions, configuration overrides and
//! slugs — so the bins themselves iterate these grids and the sweep
//! engine reruns the exact same cells at other seeds. Table 1 is
//! purely analytic (no simulation, no randomness) and has no grid.

use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::SimConfig;
use adaptivefl_data::{Partition, SynthSpec};
use adaptivefl_models::ModelConfig;

use super::cell::{Cell, CellRun};
use crate::{experiment_cfg_for, paper_models, syn_cifar10, syn_cifar100, syn_femnist, syn_widar};

/// Names of every sweepable experiment, in run order.
pub const EXPERIMENTS: [&str; 9] = [
    "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "fig6", "ablation",
];

/// The grid of one experiment by name (`None` for unknown names).
pub fn experiment(name: &str, full: bool, seed: u64) -> Option<Vec<Cell>> {
    match name {
        "table2" => Some(table2(full, seed)),
        "table3" => Some(table3(full, seed)),
        "table4" => Some(table4(full, seed)),
        "fig2" => Some(fig2(full, seed)),
        "fig3" => Some(fig3(full, seed)),
        "fig4" => Some(fig4(full, seed)),
        "fig5" => Some(fig5(full, seed)),
        "fig6" => Some(fig6(full, seed)),
        "ablation" => Some(ablation(full, seed)),
        _ => None,
    }
}

/// Every experiment's grid, concatenated in [`EXPERIMENTS`] order.
pub fn all(full: bool, seed: u64) -> Vec<Cell> {
    EXPERIMENTS
        .iter()
        .flat_map(|name| experiment(name, full, seed).expect("known experiment"))
        .collect()
}

type DatasetPanel = (&'static str, SynthSpec, Vec<(&'static str, Partition)>);

fn accuracy_datasets() -> Vec<DatasetPanel> {
    vec![
        (
            "SynCIFAR-10",
            syn_cifar10(),
            vec![
                ("IID", Partition::Iid),
                ("a=0.6", Partition::Dirichlet(0.6)),
                ("a=0.3", Partition::Dirichlet(0.3)),
            ],
        ),
        (
            "SynCIFAR-100",
            syn_cifar100(),
            vec![
                ("IID", Partition::Iid),
                ("a=0.6", Partition::Dirichlet(0.6)),
                ("a=0.3", Partition::Dirichlet(0.3)),
            ],
        ),
        (
            "SynFEMNIST",
            syn_femnist(),
            vec![("writer", Partition::ByGroup)],
        ),
    ]
}

/// Table 2: five methods × two models × seven dataset/partition
/// columns.
pub fn table2(full: bool, seed: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (ds_name, spec, partitions) in accuracy_datasets() {
        for (model_name, model) in paper_models(spec.classes, spec.input) {
            for (part_name, partition) in &partitions {
                let hard = ds_name != "SynCIFAR-10";
                let mut cfg = experiment_cfg_for(model, full, seed, hard);
                if ds_name == "SynFEMNIST" {
                    cfg.num_clients = 180; // paper: 180 FEMNIST clients
                    cfg.clients_per_round = 18;
                    cfg.rounds = if full { 80 } else { 32 };
                    cfg.eval_every = cfg.rounds / 4;
                }
                for kind in MethodKind::table2_lineup() {
                    cells.push(
                        Cell::new(
                            "table2",
                            &format!("table2-{model_name}-{ds_name}-{part_name}-{kind}"),
                            spec,
                            *partition,
                            cfg,
                            CellRun::Kind(kind),
                        )
                        .group(format!("{model_name}/{ds_name}/{part_name}"))
                        .model(model_name)
                        .dataset(ds_name)
                        .partition_label(*part_name),
                    );
                }
            }
        }
    }
    cells
}

/// Table 3: four methods × four weak:medium:strong proportions.
pub fn table3(full: bool, seed: u64) -> Vec<Cell> {
    let spec = syn_cifar10();
    let [(_, vgg), _] = paper_models(spec.classes, spec.input);
    let proportions: [(&str, (usize, usize, usize)); 4] = [
        ("4:3:3", (4, 3, 3)),
        ("8:1:1", (8, 1, 1)),
        ("1:8:1", (1, 8, 1)),
        ("1:1:8", (1, 1, 8)),
    ];
    let methods = [
        MethodKind::AllLarge,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ];
    let mut cells = Vec::new();
    for (pname, prop) in proportions {
        let mut cfg = experiment_cfg_for(vgg, full, seed, false);
        cfg.proportions = prop;
        for kind in methods {
            cells.push(
                Cell::new(
                    "table3",
                    &format!("table3-{pname}-{kind}"),
                    spec,
                    Partition::Iid,
                    cfg,
                    CellRun::Kind(kind),
                )
                .group(pname)
                .variant(pname)
                .model("VGG16")
                .dataset("SynCIFAR-10"),
            );
        }
    }
    cells
}

/// Table 4: AdaptiveFL fine (p = 3) vs coarse (p = 1) pruning.
pub fn table4(full: bool, seed: u64) -> Vec<Cell> {
    let partitions = [
        ("IID", Partition::Iid),
        ("a=0.6", Partition::Dirichlet(0.6)),
        ("a=0.3", Partition::Dirichlet(0.3)),
    ];
    let mut cells = Vec::new();
    for (ds_name, spec) in [
        ("SynCIFAR-10", syn_cifar10()),
        ("SynCIFAR-100", syn_cifar100()),
    ] {
        for (model_name, model) in paper_models(spec.classes, spec.input) {
            for (part_name, partition) in partitions {
                for (grained, p) in [("coarse", 1usize), ("fine", 3usize)] {
                    let hard = ds_name != "SynCIFAR-10";
                    let mut cfg = experiment_cfg_for(model, full, seed, hard);
                    cfg.p = p;
                    cells.push(
                        Cell::new(
                            "table4",
                            &format!("table4-{model_name}-{ds_name}-{part_name}-{grained}"),
                            spec,
                            partition,
                            cfg,
                            CellRun::Kind(MethodKind::AdaptiveFl),
                        )
                        .group(format!("{model_name}/{ds_name}/{part_name}"))
                        .variant(grained)
                        .model(model_name)
                        .dataset(ds_name)
                        .partition_label(part_name),
                    );
                }
            }
        }
    }
    cells
}

/// Figure 2: learning-curve panels (two in fast mode, all four of the
/// paper's with `full`).
pub fn fig2(full: bool, seed: u64) -> Vec<Cell> {
    let mut panels = vec![
        ("cifar10_iid", syn_cifar10(), Partition::Iid),
        ("cifar100_a03", syn_cifar100(), Partition::Dirichlet(0.3)),
    ];
    if full {
        panels.push(("cifar10_a03", syn_cifar10(), Partition::Dirichlet(0.3)));
        panels.push(("cifar100_iid", syn_cifar100(), Partition::Iid));
    }
    let mut cells = Vec::new();
    for (panel, spec, partition) in panels {
        let [(_, vgg), _] = paper_models(spec.classes, spec.input);
        let hard = panel.starts_with("cifar100");
        let mut cfg = experiment_cfg_for(vgg, full, seed, hard);
        cfg.eval_every = (cfg.rounds / 8).max(1); // denser curves
        let dataset = if hard { "SynCIFAR-100" } else { "SynCIFAR-10" };
        for kind in MethodKind::table2_lineup() {
            cells.push(
                Cell::new(
                    "fig2",
                    &format!("fig2-{panel}-{kind}"),
                    spec,
                    partition,
                    cfg,
                    CellRun::Kind(kind),
                )
                .group(panel)
                .variant(panel)
                .model("VGG16")
                .dataset(dataset),
            );
        }
    }
    cells
}

/// Figure 3: per-level submodel accuracy of the heterogeneous methods.
pub fn fig3(full: bool, seed: u64) -> Vec<Cell> {
    let spec = syn_cifar10();
    let [(_, vgg), _] = paper_models(spec.classes, spec.input);
    let cfg = experiment_cfg_for(vgg, full, seed, false);
    [
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ]
    .into_iter()
    .map(|kind| {
        Cell::new(
            "fig3",
            &format!("fig3-{kind}"),
            spec,
            Partition::Iid,
            cfg,
            CellRun::Kind(kind),
        )
        .group("fig3")
        .model("VGG16")
        .dataset("SynCIFAR-10")
    })
    .collect()
}

/// Figure 4: scalability over the number of clients.
pub fn fig4(full: bool, seed: u64) -> Vec<Cell> {
    let spec = syn_cifar10();
    let [_, (_, resnet)] = paper_models(spec.classes, spec.input);
    let client_counts: &[usize] = if full {
        &[50, 100, 200, 500]
    } else {
        &[25, 50, 100]
    };
    let methods = [
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ];
    let mut cells = Vec::new();
    for &n in client_counts {
        let mut cfg = experiment_cfg_for(resnet, full, seed, false);
        cfg.num_clients = n;
        cfg.clients_per_round = (n / 10).max(2);
        // Keep the global data volume roughly constant so runs stay
        // comparable (the paper fixes the dataset and splits it).
        cfg.samples_per_client = (2500 / n).max(8);
        for kind in methods {
            cells.push(
                Cell::new(
                    "fig4",
                    &format!("fig4-n{n}-{kind}"),
                    spec,
                    Partition::Dirichlet(0.6),
                    cfg,
                    CellRun::Kind(kind),
                )
                .group(format!("n{n}"))
                .variant(format!("{n} clients"))
                .model("ResNet18")
                .dataset("SynCIFAR-10"),
            );
        }
    }
    cells
}

/// Figure 5: RL client-selection ablation variants.
pub fn fig5(full: bool, seed: u64) -> Vec<Cell> {
    let spec = syn_cifar100();
    let [_, (_, resnet)] = paper_models(spec.classes, spec.input);
    let cfg = experiment_cfg_for(resnet, full, seed, true);
    [
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
        MethodKind::AdaptiveFlVariant(SelectionStrategy::CuriosityOnly),
        MethodKind::AdaptiveFlVariant(SelectionStrategy::ResourceOnly),
        MethodKind::AdaptiveFl, // +CS
    ]
    .into_iter()
    .map(|kind| {
        Cell::new(
            "fig5",
            &format!("fig5-{kind}"),
            spec,
            Partition::Iid,
            cfg,
            CellRun::Kind(kind),
        )
        .group("fig5")
        .variant(kind.to_string())
        .model("ResNet18")
        .dataset("SynCIFAR-100")
    })
    .collect()
}

/// Figure 6: the 17-device test-bed (MobileNetV2 on SynWidar).
pub fn fig6(full: bool, seed: u64) -> Vec<Cell> {
    let spec = syn_widar();
    let model = ModelConfig {
        classes: spec.classes,
        input: spec.input,
        width_mult: 0.5,
        ..ModelConfig::mobilenet_v2_fast(spec.classes)
    };
    let mut cfg = SimConfig::fast(model, seed);
    cfg.num_clients = 17; // Table 5
    cfg.clients_per_round = 10; // paper: 10 devices per round
    cfg.rounds = if full { 80 } else { 30 };
    cfg.eval_every = cfg.rounds / 6;
    cfg.samples_per_client = 40;
    cfg.test_samples = 300;
    [
        MethodKind::AllLarge,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ]
    .into_iter()
    .map(|kind| {
        Cell::new(
            "fig6",
            &format!("fig6-{kind}"),
            spec,
            Partition::ByGroup,
            cfg,
            CellRun::Kind(kind),
        )
        .group("fig6")
        .model("MobileNetV2")
        .dataset("SynWidar")
        .testbed()
    })
    .collect()
}

/// Design-choice ablations: pool granularity, reward cap, width
/// ratios.
pub fn ablation(full: bool, seed: u64) -> Vec<Cell> {
    let spec = syn_cifar10();
    let [_, (_, resnet)] = paper_models(spec.classes, spec.input);
    let mut cells = Vec::new();

    // (a) pool granularity sweep.
    for p in [1usize, 2, 3, 4] {
        let mut cfg = experiment_cfg_for(resnet, full, seed, false);
        cfg.p = p;
        cells.push(
            Cell::new(
                "ablation",
                &format!("ablation-p{p}"),
                spec,
                Partition::Dirichlet(0.6),
                cfg,
                CellRun::Kind(MethodKind::AdaptiveFl),
            )
            .group("p-sweep")
            .variant(format!("p={p}"))
            .model("ResNet18")
            .dataset("SynCIFAR-10"),
        );
    }

    // (b) reward cap on/off.
    for (label, cap) in [("cap=0.5 (paper)", 0.5f64), ("cap=1.0 (off)", 1.0)] {
        let cfg = experiment_cfg_for(resnet, full, seed, false);
        cells.push(
            Cell::new(
                "ablation",
                &format!("ablation-cap{cap}"),
                spec,
                Partition::Dirichlet(0.6),
                cfg,
                CellRun::AdaptiveCap(cap),
            )
            .group("reward-cap")
            .variant(label)
            .model("ResNet18")
            .dataset("SynCIFAR-10"),
        );
    }

    // (c) level width-ratio pairs around the paper's (0.40, 0.66).
    for ratios in [(0.30f32, 0.55f32), (0.40, 0.66), (0.50, 0.75)] {
        let mut cfg = experiment_cfg_for(resnet, full, seed, false);
        cfg.ratios = ratios;
        let label = format!("S={},M={}", ratios.0, ratios.1);
        cells.push(
            Cell::new(
                "ablation",
                &format!("ablation-ratios-{label}"),
                spec,
                Partition::Dirichlet(0.6),
                cfg,
                CellRun::Kind(MethodKind::AdaptiveFl),
            )
            .group("ratios")
            .variant(label)
            .model("ResNet18")
            .dataset("SynCIFAR-10"),
        );
    }
    cells
}

/// A tiny shrunk grid for smoke tests and CI: a few representative
/// cells (two Table 3 proportion/method pairs, the Figure 3
/// HeteroFL/AdaptiveFL pair, the reward-cap ablation pair) run at
/// miniature scale. Exercises every layer — grids, scheduler, stores,
/// stats, verdicts — in seconds.
pub fn tiny(seed: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    cells.extend(
        table3(false, seed)
            .into_iter()
            .filter(|c| {
                (c.group == "4:3:3" || c.group == "1:1:8")
                    && (c.method() == "AdaptiveFL" || c.method() == "HeteroFL")
            })
            .map(Cell::shrink),
    );
    cells.extend(
        fig3(false, seed)
            .into_iter()
            .filter(|c| c.method() == "AdaptiveFL" || c.method() == "HeteroFL")
            .map(Cell::shrink),
    );
    cells.extend(
        ablation(false, seed)
            .into_iter()
            .filter(|c| c.group == "reward-cap")
            .map(Cell::shrink),
    );
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn grid_sizes_match_the_bins() {
        // table2: 7 dataset/partition columns × 2 models × 5 methods.
        assert_eq!(table2(false, 1).len(), 70);
        assert_eq!(table3(false, 1).len(), 16);
        // table4: 2 datasets × 2 models × 3 partitions × 2 granularities.
        assert_eq!(table4(false, 1).len(), 24);
        assert_eq!(fig2(false, 1).len(), 10);
        assert_eq!(fig2(true, 1).len(), 20);
        assert_eq!(fig3(false, 1).len(), 4);
        assert_eq!(fig4(false, 1).len(), 12);
        assert_eq!(fig4(true, 1).len(), 16);
        assert_eq!(fig5(false, 1).len(), 5);
        assert_eq!(fig6(false, 1).len(), 4);
        assert_eq!(ablation(false, 1).len(), 9);
    }

    #[test]
    fn slugs_are_unique_across_the_whole_grid() {
        let cells = all(false, 2024);
        let slugs: BTreeSet<&str> = cells.iter().map(|c| c.slug.as_str()).collect();
        assert_eq!(slugs.len(), cells.len());
    }

    #[test]
    fn known_slugs_survive_sanitisation() {
        let t3 = table3(false, 1);
        assert!(t3.iter().any(|c| c.slug == "table3-4-3-3-adaptivefl"));
        let ab = ablation(false, 1);
        assert!(ab.iter().any(|c| c.slug == "ablation-cap0-5"));
        assert!(ab.iter().any(|c| c.slug == "ablation-ratios-s-0-4-m-0-66"));
    }

    #[test]
    fn seed_threads_into_every_cell() {
        for cell in all(false, 77) {
            assert_eq!(cell.cfg.seed, 77, "{}", cell.slug);
        }
    }

    #[test]
    fn experiment_lookup_covers_exactly_the_known_names() {
        for name in EXPERIMENTS {
            assert!(experiment(name, false, 1).is_some(), "{name}");
        }
        assert!(experiment("table1", false, 1).is_none());
    }

    #[test]
    fn tiny_grid_is_small_and_shrunk() {
        let cells = tiny(1);
        assert_eq!(cells.len(), 8);
        for c in &cells {
            assert!(c.cfg.rounds <= 3, "{}", c.slug);
            assert!(c.cfg.num_clients <= 17, "{}", c.slug);
        }
    }
}
