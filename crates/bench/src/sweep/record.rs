//! The persisted result of one `(cell, seed)` job.

use adaptivefl_core::metrics::RunResult;
use serde::{Deserialize, Serialize};

use super::cell::Cell;

/// Schema version of [`CellRecord`]; bump on breaking layout changes.
pub const RECORD_VERSION: u32 = 1;

/// One point of the accuracy-over-time curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Round the evaluation was taken after.
    pub round: usize,
    /// Cumulative simulated seconds at that round.
    pub secs: f64,
    /// Global (full) model accuracy.
    pub full: f64,
    /// Mean per-level submodel accuracy.
    pub avg: f64,
}

/// Everything the statistics and verdict layers need from one run,
/// written as `results/sweep/<slug>/<seed>.json`. Carries no
/// timestamps or host information: re-running the same sweep must
/// reproduce the file byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Schema version ([`RECORD_VERSION`]).
    pub version: u32,
    /// Owning experiment (`"table2"`, …).
    pub experiment: String,
    /// Grid-unique cell identifier.
    pub slug: String,
    /// Comparison-panel key (cells sharing it are paired).
    pub group: String,
    /// Method display name.
    pub method: String,
    /// Model family label.
    pub model: String,
    /// Dataset label.
    pub dataset: String,
    /// Partition label.
    pub partition: String,
    /// Experiment-specific axis label.
    pub variant: String,
    /// The job's master seed.
    pub seed: u64,
    /// Best full-model accuracy over evaluation snapshots.
    pub best_full: f64,
    /// Best mean-over-levels accuracy over snapshots.
    pub best_avg: f64,
    /// Final full-model accuracy.
    pub final_full: f64,
    /// Final mean-over-levels accuracy.
    pub final_avg: f64,
    /// Communication-waste rate (paper §4.4).
    pub comm_waste: f64,
    /// Total simulated wall-clock seconds.
    pub sim_secs: f64,
    /// Final per-level submodel accuracies.
    pub levels: Vec<(String, f64)>,
    /// Accuracy-over-rounds curve (one point per evaluation).
    pub curve: Vec<CurvePoint>,
    /// FNV-1a hash of [`RunResult::fingerprint`] — a compact run
    /// identity for determinism checks across thread counts.
    pub fingerprint_fnv: u64,
}

impl CellRecord {
    /// Distils a finished run into its record.
    pub fn new(cell: &Cell, seed: u64, result: &RunResult) -> Self {
        let mut secs = 0.0;
        let mut secs_at = vec![0.0; result.rounds.len() + 1];
        for (i, r) in result.rounds.iter().enumerate() {
            secs += r.sim_secs;
            secs_at[i + 1] = secs;
        }
        let curve = result
            .evals
            .iter()
            .map(|e| CurvePoint {
                round: e.round,
                secs: secs_at[e.round.min(result.rounds.len())],
                full: f64::from(e.full),
                avg: f64::from(e.avg()),
            })
            .collect();
        let levels = result
            .evals
            .last()
            .map(|e| {
                e.levels
                    .iter()
                    .map(|(n, a)| (n.clone(), f64::from(*a)))
                    .collect()
            })
            .unwrap_or_default();
        CellRecord {
            version: RECORD_VERSION,
            experiment: cell.experiment.to_string(),
            slug: cell.slug.clone(),
            group: cell.group.clone(),
            method: cell.method(),
            model: cell.model.clone(),
            dataset: cell.dataset.clone(),
            partition: cell.partition_label.clone(),
            variant: cell.variant.clone(),
            seed,
            best_full: f64::from(result.best_full_accuracy()),
            best_avg: f64::from(result.best_avg_accuracy()),
            final_full: f64::from(result.final_full_accuracy()),
            final_avg: f64::from(result.final_avg_accuracy()),
            comm_waste: result.comm_waste_rate(),
            sim_secs: result.total_sim_secs(),
            levels,
            curve,
            fingerprint_fnv: fnv1a(result.fingerprint().as_bytes()),
        }
    }

    /// Total variation of the avg-accuracy curve — the "fluctuation"
    /// quantity behind the paper's Figure 2 stability claim.
    pub fn avg_curve_variation(&self) -> f64 {
        self.curve
            .windows(2)
            .map(|w| (w[1].avg - w[0].avg).abs())
            .sum()
    }
}

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_core::metrics::{EvalRecord, RoundRecord, RunResult};

    fn eval(round: usize, full: f32, levels: &[f32]) -> EvalRecord {
        EvalRecord {
            round,
            full,
            levels: levels
                .iter()
                .enumerate()
                .map(|(i, a)| (format!("L{i}"), *a))
                .collect(),
        }
    }

    fn round(sim_secs: f64) -> RoundRecord {
        RoundRecord {
            round: 0,
            sent_params: 0,
            returned_params: 0,
            train_loss: 0.0,
            sim_secs,
            failures: 0,
            comm: Default::default(),
        }
    }

    fn sample_result() -> RunResult {
        RunResult::from_history(
            "M",
            vec![round(1.0), round(2.0), round(3.0)],
            vec![eval(2, 0.5, &[0.4, 0.6]), eval(3, 0.6, &[0.5, 0.7])],
        )
    }

    fn sample_cell() -> Cell {
        use adaptivefl_core::methods::MethodKind;
        use adaptivefl_core::sim::SimConfig;
        use adaptivefl_data::Partition;
        let spec = crate::syn_cifar10();
        let mut cfg = SimConfig::quick_test(1);
        cfg.model.input = spec.input;
        cfg.model.classes = spec.classes;
        Cell::new(
            "fig3",
            "fig3-test",
            spec,
            Partition::Iid,
            cfg,
            super::super::cell::CellRun::Kind(MethodKind::AdaptiveFl),
        )
        .group("fig3")
    }

    #[test]
    fn record_distils_metrics_and_curve() {
        let rec = CellRecord::new(&sample_cell(), 7, &sample_result());
        assert_eq!(rec.seed, 7);
        assert_eq!(rec.curve.len(), 2);
        assert!((rec.curve[0].secs - 3.0).abs() < 1e-12);
        assert!((rec.curve[1].secs - 6.0).abs() < 1e-12);
        assert!((rec.best_full - 0.6).abs() < 1e-6);
        assert!((rec.final_avg - 0.6).abs() < 1e-6);
        assert_eq!(rec.levels.len(), 2);
        assert!((rec.sim_secs - 6.0).abs() < 1e-12);
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = CellRecord::new(&sample_cell(), 3, &sample_result());
        let text = serde_json::to_string_pretty(&rec).unwrap();
        let back: CellRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn fingerprint_hash_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            fnv1a(sample_result().fingerprint().as_bytes()),
            fnv1a(sample_result().fingerprint().as_bytes())
        );
    }

    #[test]
    fn curve_variation_sums_absolute_steps() {
        let mut rec = CellRecord::new(&sample_cell(), 1, &sample_result());
        rec.curve[0].avg = 0.5;
        rec.curve[1].avg = 0.3;
        assert!((rec.avg_curve_variation() - 0.2).abs() < 1e-12);
    }
}
