//! Shared experiment harness for the table/figure reproduction
//! binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it prints the paper-shaped rows to stdout and writes
//! machine-readable JSON/CSV records under `results/`.
//!
//! All binaries accept `--full` for a larger (slower) configuration and
//! `--seed <n>` to change the master seed; the default fast mode is
//! calibrated for a single CPU core.

use std::fs;
use std::path::PathBuf;

use adaptivefl_core::sim::SimConfig;
use adaptivefl_data::SynthSpec;
use adaptivefl_models::ModelConfig;
use serde::Serialize;

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Args {
    /// Larger, slower configuration (more rounds/samples).
    pub full: bool,
    /// Master seed.
    pub seed: u64,
}

impl Args {
    /// Parses `--full` and `--seed <n>` from `std::env::args`.
    pub fn parse() -> Self {
        let mut full = false;
        let mut seed = 2024u64;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => full = true,
                "--seed" => {
                    seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        Args { full, seed }
    }
}

/// The `results/` directory at the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a serialisable record as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialise results");
    fs::write(&path, body).expect("write results file");
    println!("[wrote {}]", path.display());
}

/// Writes CSV rows under `results/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("write csv file");
    println!("[wrote {}]", path.display());
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let width = 12usize;
    let head: Vec<String> = headers.iter().map(|h| format!("{h:>width$}")).collect();
    println!("{}", head.join(" "));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| format!("{c:>width$}")).collect();
        println!("{}", cells.join(" "));
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}", 100.0 * x)
}

/// The reduced-scale input used by all training experiments.
pub const FAST_INPUT_RGB: (usize, usize, usize) = (3, 8, 8);
/// Reduced single-channel input (FEMNIST/Widar stand-ins).
pub const FAST_INPUT_GRAY: (usize, usize, usize) = (1, 8, 8);

/// SynCIFAR-10: the CIFAR-10 stand-in at experiment resolution.
pub fn syn_cifar10() -> SynthSpec {
    let mut s = SynthSpec::cifar10_like();
    s.input = FAST_INPUT_RGB;
    s
}

/// SynCIFAR-100 stand-in (100 classes). The generator is tuned so the
/// 100-class task separates methods within the reduced round budget
/// (the paper trains for ~500 rounds; we cannot).
pub fn syn_cifar100() -> SynthSpec {
    let mut s = SynthSpec::cifar100_like();
    s.input = FAST_INPUT_RGB;
    s.signal = 1.5;
    s.noise = 0.45;
    s.distortion = 0.30;
    s
}

/// SynFEMNIST stand-in (62 classes, writer groups), tuned like
/// [`syn_cifar100`] for the reduced round budget.
pub fn syn_femnist() -> SynthSpec {
    let mut s = SynthSpec::femnist_like();
    s.input = FAST_INPUT_GRAY;
    s.signal = 1.5;
    s.noise = 0.40;
    s
}

/// SynWidar stand-in (22 gestures, device groups), tuned to be
/// learnable at the reduced resolution.
pub fn syn_widar() -> SynthSpec {
    let mut s = SynthSpec::widar_like();
    s.input = FAST_INPUT_GRAY;
    s.signal = 1.6;
    s.group_shift = 0.5;
    s
}

/// The two reduced model families of the accuracy experiments,
/// matching the paper's VGG16 / ResNet18 line-up.
pub fn paper_models(
    classes: usize,
    input: (usize, usize, usize),
) -> [(&'static str, ModelConfig); 2] {
    [
        (
            "VGG16",
            ModelConfig {
                input,
                classes,
                ..ModelConfig::vgg16_fast(classes)
            },
        ),
        (
            "ResNet18",
            ModelConfig {
                input,
                classes,
                ..ModelConfig::resnet18_fast(classes)
            },
        ),
    ]
}

/// The standard experiment configuration: the paper's protocol (100
/// clients, 10 % participation, 4:3:3 fleet, uncertain resources) at
/// reduced scale; `--full` raises rounds and data volume. `hard`
/// doubles the round budget for the many-class tasks (SynCIFAR-100,
/// SynFEMNIST), which need longer to separate methods.
pub fn experiment_cfg(model: ModelConfig, args: Args, hard: bool) -> SimConfig {
    let mut cfg = SimConfig::fast(model, args.seed);
    if args.full {
        cfg.rounds = if hard { 100 } else { 60 };
        cfg.samples_per_client = 50;
        cfg.test_samples = 600;
    } else {
        cfg.rounds = if hard { 40 } else { 28 };
        cfg.samples_per_client = if hard { 30 } else { 25 };
        cfg.test_samples = 300;
    }
    cfg.eval_every = cfg.rounds.div_ceil(4);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_fast_models() {
        let spec = syn_cifar10();
        let [(_, vgg), (_, resnet)] = paper_models(spec.classes, spec.input);
        assert_eq!(vgg.input, spec.input);
        assert_eq!(resnet.classes, spec.classes);
    }

    #[test]
    fn experiment_cfg_scales_with_full() {
        let spec = syn_cifar10();
        let [(_, m), _] = paper_models(spec.classes, spec.input);
        let fast = experiment_cfg(
            m,
            Args {
                full: false,
                seed: 1,
            },
            false,
        );
        let full = experiment_cfg(
            m,
            Args {
                full: true,
                seed: 1,
            },
            true,
        );
        assert!(full.rounds > fast.rounds);
        assert!(full.samples_per_client > fast.samples_per_client);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.8314), "83.1");
    }
}
