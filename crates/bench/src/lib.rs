//! Shared experiment harness for the table/figure reproduction
//! binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper: it prints the paper-shaped rows to stdout and writes
//! machine-readable JSON/CSV records under `results/`.
//!
//! All binaries accept `--full` for a larger (slower) configuration,
//! `--seed <n>` to change the master seed, `--resume <dir>` to
//! checkpoint every run into per-run subdirectories of `<dir>` and
//! continue interrupted runs from their newest valid snapshot, and
//! `--trace <dir>` to stream one `.jsonl` trace per run into `<dir>`
//! (render them with the `trace_report` bin); the default fast mode is
//! calibrated for a single CPU core.
//!
//! Each experiment's grid of runs is exposed as data by
//! [`sweep::grids`], and the `sweep` binary runs any subset of the
//! grids as `cells × seeds` parallel jobs with statistical aggregation
//! (see the [`sweep`] module).

pub mod sweep;

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use adaptivefl_core::methods::{FlMethod, MethodKind};
use adaptivefl_core::metrics::RunResult;
use adaptivefl_core::sim::{Env, RunHooks, SimConfig, Simulation};
use adaptivefl_core::transport::PerfectTransport;
use adaptivefl_data::SynthSpec;
use adaptivefl_models::ModelConfig;
use adaptivefl_store::{run_or_resume, SnapshotStore};
use adaptivefl_trace::JsonlTracer;
use serde::Serialize;

/// Rounds between checkpoints when `--resume` is active.
pub const CHECKPOINT_EVERY: usize = 5;

/// Command-line options shared by every experiment binary — one
/// parser for the whole suite, so no bin hand-rolls its own flag loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// Larger, slower configuration (more rounds/samples).
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Seeds to sweep (`--seeds <n>` expands to `seed..seed+n`,
    /// `--seeds a,b,c` is an explicit list). Defaults to `[seed]`.
    pub seeds: Vec<u64>,
    /// Parallel sweep jobs (`--jobs <n>`); `None` lets the sweep
    /// engine pick the hardware default. Single-run bins ignore it.
    pub jobs: Option<usize>,
    /// Checkpoint directory: every run checkpoints into its own
    /// subdirectory and resumes from it after an interruption.
    pub resume: Option<PathBuf>,
    /// Trace directory: every run streams a `.jsonl` trace into its
    /// own file under this directory.
    pub trace: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            full: false,
            seed: 2024,
            seeds: vec![2024],
            jobs: None,
            resume: None,
            trace: None,
        }
    }
}

impl Args {
    /// Parses the shared flags (`--full`, `--seed <n>`, `--seeds
    /// <n|a,b,c>`, `--jobs <n>`, `--resume <dir>`, `--trace <dir>`)
    /// from `std::env::args`, warning about anything unrecognised.
    pub fn parse() -> Self {
        let (args, rest) = Self::parse_from(std::env::args().skip(1));
        for a in rest {
            eprintln!("ignoring unknown argument {a}");
        }
        args
    }

    /// The testable core of [`Args::parse`]: consumes the shared flags
    /// and returns everything it did not recognise (binary-specific
    /// flags like the sweep's `--out`) in input order.
    ///
    /// `--seeds` accepts either a count (`--seeds 3` sweeps `seed`,
    /// `seed+1`, `seed+2`, regardless of flag order relative to
    /// `--seed`) or an explicit comma-separated list (`--seeds 7,9`).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> (Self, Vec<String>) {
        let mut out = Args::default();
        let mut seeds_spec: Option<String> = None;
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--seeds" => {
                    seeds_spec = Some(it.next().expect("--seeds needs a count or a,b,c list"));
                }
                "--jobs" => {
                    let n: usize = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--jobs needs a positive integer");
                    assert!(n > 0, "--jobs needs a positive integer");
                    out.jobs = Some(n);
                }
                "--resume" => {
                    out.resume = Some(PathBuf::from(
                        it.next().expect("--resume needs a directory"),
                    ));
                }
                "--trace" => {
                    out.trace = Some(PathBuf::from(it.next().expect("--trace needs a directory")));
                }
                _ => rest.push(a),
            }
        }
        out.seeds = match seeds_spec {
            None => vec![out.seed],
            Some(spec) => parse_seed_spec(&spec, out.seed),
        };
        (out, rest)
    }

    fn store_for(&self, slug: &str) -> Option<SnapshotStore> {
        let dir = self.resume.as_ref()?;
        Some(SnapshotStore::open(dir.join(sanitize_slug(slug))).expect("opening checkpoint store"))
    }

    /// When `--trace <dir>` is on, installs a [`JsonlTracer`] writing
    /// to `<dir>/<sanitized-slug>.jsonl` and returns a handle to it
    /// (flush it after the run).
    pub fn attach_tracer(&self, sim: &mut Simulation, slug: &str) -> Option<Arc<JsonlTracer>> {
        let dir = self.trace.as_ref()?;
        let path = dir.join(format!("{}.jsonl", sanitize_slug(slug)));
        let tracer = Arc::new(JsonlTracer::create(&path).expect("creating trace file"));
        sim.set_tracer(Arc::clone(&tracer) as Arc<dyn adaptivefl_core::trace::Tracer>);
        Some(tracer)
    }
}

/// Resolves a `--seeds` argument: a bare count expands to consecutive
/// seeds from `base`, a comma-separated list is taken verbatim.
///
/// # Panics
///
/// Panics on an empty list, a zero count, or unparseable integers.
fn parse_seed_spec(spec: &str, base: u64) -> Vec<u64> {
    if spec.contains(',') {
        let seeds: Vec<u64> = spec
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse().expect("--seeds list needs integers"))
            .collect();
        assert!(!seeds.is_empty(), "--seeds list must not be empty");
        seeds
    } else {
        let n: u64 = spec.parse().expect("--seeds needs a count or a,b,c list");
        assert!(n > 0, "--seeds count must be positive");
        (0..n).map(|i| base + i).collect()
    }
}

/// Filesystem-safe form of a run slug: ASCII-lowercased with every
/// non-alphanumeric character folded to `-`.
pub fn sanitize_slug(slug: &str) -> String {
    slug.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

pub(crate) fn finish_trace(tracer: Option<Arc<JsonlTracer>>) {
    if let Some(t) = tracer {
        t.flush().expect("flushing trace file");
        if t.had_errors() {
            eprintln!("warning: trace writes to {} failed", t.path().display());
        } else {
            println!("[traced {}]", t.path().display());
        }
    }
}

/// Runs `kind` in `sim` — plain when `--resume` is off; checkpointed
/// into (and resumed from) the slug's subdirectory of the resume
/// directory when it is on. `slug` must uniquely identify the run
/// (bin, model, dataset, partition, method).
pub fn run_kind(sim: &mut Simulation, kind: MethodKind, args: &Args, slug: &str) -> RunResult {
    let tracer = args.attach_tracer(sim, slug);
    let result = match args.store_for(slug) {
        None => sim.run(kind),
        Some(mut store) => run_or_resume(
            sim,
            kind,
            &mut PerfectTransport,
            &mut store,
            CHECKPOINT_EVERY,
        )
        .expect("checkpointed run"),
    };
    finish_trace(tracer);
    result
}

/// [`run_kind`] for explicitly constructed methods (ablation
/// variants). `make` must build the method exactly as the original run
/// did — on resume its state is replaced by the snapshot's.
pub fn run_method(
    sim: &mut Simulation,
    make: impl FnOnce(&Env) -> Box<dyn FlMethod>,
    args: &Args,
    slug: &str,
) -> RunResult {
    let tracer = args.attach_tracer(sim, slug);
    let Some(mut store) = args.store_for(slug) else {
        let method = make(sim.env());
        let result = sim.run_method(method);
        finish_trace(tracer);
        return result;
    };
    let method = make(sim.env());
    let resume_point = store.latest_valid().expect("scanning checkpoint store");
    let hooks = RunHooks {
        checkpoint_every: CHECKPOINT_EVERY,
        sink: &mut store,
        halt_after: None,
    };
    let result = match &resume_point {
        Some((_, snap)) => sim
            .resume_method_with_hooks(method, snap, &mut PerfectTransport, hooks)
            .expect("resumed run"),
        None => sim
            .run_method_with_hooks(method, &mut PerfectTransport, hooks)
            .expect("checkpointed run"),
    };
    finish_trace(tracer);
    result.expect("no halt configured, so the run completes")
}

/// The `results/` directory at the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a serialisable record as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialise results");
    fs::write(&path, body).expect("write results file");
    println!("[wrote {}]", path.display());
}

/// Writes CSV rows under `results/`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("write csv file");
    println!("[wrote {}]", path.display());
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let width = 12usize;
    let head: Vec<String> = headers.iter().map(|h| format!("{h:>width$}")).collect();
    println!("{}", head.join(" "));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| format!("{c:>width$}")).collect();
        println!("{}", cells.join(" "));
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}", 100.0 * x)
}

/// The reduced-scale input used by all training experiments.
pub const FAST_INPUT_RGB: (usize, usize, usize) = (3, 8, 8);
/// Reduced single-channel input (FEMNIST/Widar stand-ins).
pub const FAST_INPUT_GRAY: (usize, usize, usize) = (1, 8, 8);

/// SynCIFAR-10: the CIFAR-10 stand-in at experiment resolution.
pub fn syn_cifar10() -> SynthSpec {
    let mut s = SynthSpec::cifar10_like();
    s.input = FAST_INPUT_RGB;
    s
}

/// SynCIFAR-100 stand-in (100 classes). The generator is tuned so the
/// 100-class task separates methods within the reduced round budget
/// (the paper trains for ~500 rounds; we cannot).
pub fn syn_cifar100() -> SynthSpec {
    let mut s = SynthSpec::cifar100_like();
    s.input = FAST_INPUT_RGB;
    s.signal = 1.5;
    s.noise = 0.45;
    s.distortion = 0.30;
    s
}

/// SynFEMNIST stand-in (62 classes, writer groups), tuned like
/// [`syn_cifar100`] for the reduced round budget.
pub fn syn_femnist() -> SynthSpec {
    let mut s = SynthSpec::femnist_like();
    s.input = FAST_INPUT_GRAY;
    s.signal = 1.5;
    s.noise = 0.40;
    s
}

/// SynWidar stand-in (22 gestures, device groups), tuned to be
/// learnable at the reduced resolution.
pub fn syn_widar() -> SynthSpec {
    let mut s = SynthSpec::widar_like();
    s.input = FAST_INPUT_GRAY;
    s.signal = 1.6;
    s.group_shift = 0.5;
    s
}

/// The two reduced model families of the accuracy experiments,
/// matching the paper's VGG16 / ResNet18 line-up.
pub fn paper_models(
    classes: usize,
    input: (usize, usize, usize),
) -> [(&'static str, ModelConfig); 2] {
    [
        (
            "VGG16",
            ModelConfig {
                input,
                classes,
                ..ModelConfig::vgg16_fast(classes)
            },
        ),
        (
            "ResNet18",
            ModelConfig {
                input,
                classes,
                ..ModelConfig::resnet18_fast(classes)
            },
        ),
    ]
}

/// The standard experiment configuration: the paper's protocol (100
/// clients, 10 % participation, 4:3:3 fleet, uncertain resources) at
/// reduced scale; `--full` raises rounds and data volume. `hard`
/// doubles the round budget for the many-class tasks (SynCIFAR-100,
/// SynFEMNIST), which need longer to separate methods.
pub fn experiment_cfg(model: ModelConfig, args: &Args, hard: bool) -> SimConfig {
    experiment_cfg_for(model, args.full, args.seed, hard)
}

/// [`experiment_cfg`] with the knobs spelled out — the form the sweep
/// grids use (they have no [`Args`]).
pub fn experiment_cfg_for(model: ModelConfig, full: bool, seed: u64, hard: bool) -> SimConfig {
    let mut cfg = SimConfig::fast(model, seed);
    if full {
        cfg.rounds = if hard { 100 } else { 60 };
        cfg.samples_per_client = 50;
        cfg.test_samples = 600;
    } else {
        cfg.rounds = if hard { 40 } else { 28 };
        cfg.samples_per_client = if hard { 30 } else { 25 };
        cfg.test_samples = 300;
    }
    cfg.eval_every = cfg.rounds.div_ceil(4);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_fast_models() {
        let spec = syn_cifar10();
        let [(_, vgg), (_, resnet)] = paper_models(spec.classes, spec.input);
        assert_eq!(vgg.input, spec.input);
        assert_eq!(resnet.classes, spec.classes);
    }

    #[test]
    fn experiment_cfg_scales_with_full() {
        let spec = syn_cifar10();
        let [(_, m), _] = paper_models(spec.classes, spec.input);
        let fast = experiment_cfg(
            m,
            &Args {
                seed: 1,
                ..Args::default()
            },
            false,
        );
        let full = experiment_cfg(
            m,
            &Args {
                full: true,
                seed: 1,
                ..Args::default()
            },
            true,
        );
        assert!(full.rounds > fast.rounds);
        assert!(full.samples_per_client > fast.samples_per_client);
    }

    fn parse(words: &[&str]) -> (Args, Vec<String>) {
        Args::parse_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn args_defaults() {
        let (a, rest) = parse(&[]);
        assert_eq!(a, Args::default());
        assert_eq!(a.seeds, vec![2024]);
        assert!(rest.is_empty());
    }

    #[test]
    fn args_parse_all_shared_flags() {
        let (a, rest) = parse(&[
            "--full", "--seed", "7", "--seeds", "3", "--jobs", "4", "--resume", "/tmp/ck",
            "--trace", "/tmp/tr",
        ]);
        assert!(a.full);
        assert_eq!(a.seed, 7);
        assert_eq!(a.seeds, vec![7, 8, 9]);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.resume.as_deref(), Some(std::path::Path::new("/tmp/ck")));
        assert_eq!(a.trace.as_deref(), Some(std::path::Path::new("/tmp/tr")));
        assert!(rest.is_empty());
    }

    #[test]
    fn args_seeds_count_expands_from_seed_regardless_of_flag_order() {
        let (a, _) = parse(&["--seeds", "2", "--seed", "100"]);
        assert_eq!(a.seeds, vec![100, 101]);
        let (b, _) = parse(&["--seed", "100", "--seeds", "2"]);
        assert_eq!(b.seeds, vec![100, 101]);
    }

    #[test]
    fn args_seeds_explicit_list() {
        let (a, _) = parse(&["--seeds", "5,9,13"]);
        assert_eq!(a.seeds, vec![5, 9, 13]);
        let (b, _) = parse(&["--seeds", " 5, 9 ,13"]);
        assert_eq!(b.seeds, vec![5, 9, 13]);
    }

    #[test]
    fn args_unknown_flags_are_returned_in_order() {
        let (a, rest) = parse(&["--out", "/tmp/x", "--seed", "3", "--tiny"]);
        assert_eq!(a.seed, 3);
        assert_eq!(
            rest,
            vec!["--out".to_string(), "/tmp/x".into(), "--tiny".into()]
        );
    }

    #[test]
    #[should_panic(expected = "--seeds")]
    fn args_rejects_zero_seed_count() {
        parse(&["--seeds", "0"]);
    }

    #[test]
    #[should_panic(expected = "--jobs")]
    fn args_rejects_zero_jobs() {
        parse(&["--jobs", "0"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.8314), "83.1");
    }

    #[test]
    fn sanitize_slug_folds_to_filesystem_safe() {
        assert_eq!(
            sanitize_slug("table2/VGG16 SynCIFAR-10"),
            "table2-vgg16-syncifar-10"
        );
        assert_eq!(sanitize_slug("AdaptiveFL+Greed"), "adaptivefl-greed");
    }
}
