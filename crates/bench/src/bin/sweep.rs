//! Parallel multi-seed sweep over the experiment grids, with
//! statistical aggregation and machine-readable verdicts.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin sweep -- \
//!     [--full] [--seed N] [--seeds N|a,b,c] [--jobs M] \
//!     [--experiments table3,fig3] [--tiny] [--out DIR] \
//!     [--resume DIR] [--trace DIR]
//! cargo run --release -p adaptivefl-bench --bin sweep -- --check FILE
//! ```
//!
//! Runs `cells × seeds` fully isolated jobs across `--jobs` worker
//! threads (hardware default), writing one record per job under
//! `<out>/<slug>/<seed>.json` (default `results/sweep/`), then
//! aggregates mean ± 95 % CI per cell into `<out>/stats.json` and
//! re-evaluates every paper claim as a sign-test verdict in
//! `<out>/verdicts.json`. Jobs already recorded are skipped, so an
//! interrupted sweep resumes where it stopped; `--check FILE`
//! schema-validates an existing verdicts file and exits.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

use adaptivefl_bench::sweep::io::{read_records, record_path, write_record};
use adaptivefl_bench::sweep::{
    evaluate_claims, grids, run_parallel, summarize_cells, Cell, CellRecord, JobOpts, VerdictsFile,
};
use adaptivefl_bench::{print_table, Args};

struct SweepFlags {
    tiny: bool,
    experiments: Option<Vec<String>>,
    out: PathBuf,
    check: Option<PathBuf>,
}

fn parse_sweep_flags(leftovers: Vec<String>) -> SweepFlags {
    let mut flags = SweepFlags {
        tiny: false,
        experiments: None,
        out: PathBuf::from("results/sweep"),
        check: None,
    };
    let mut it = leftovers.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => flags.tiny = true,
            "--experiments" => {
                let list = it
                    .next()
                    .expect("--experiments needs a comma-separated list");
                flags.experiments = Some(
                    list.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--out" => flags.out = PathBuf::from(it.next().expect("--out needs a directory")),
            "--check" => {
                flags.check = Some(PathBuf::from(it.next().expect("--check needs a file")))
            }
            other => {
                eprintln!("unknown sweep argument {other}");
                std::process::exit(2);
            }
        }
    }
    flags
}

fn check_verdicts(path: &PathBuf) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let file: VerdictsFile = match serde_json::from_str(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{} is not a verdicts file: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match file.validate() {
        Ok(()) => {
            let (r, p, n, nd) = file.tally();
            println!(
                "{} valid: {} claims ({r} reproduced, {p} partial, {n} not, {nd} no-data), seeds {:?}",
                path.display(),
                file.claims.len(),
                file.seeds
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{} invalid: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let (args, leftovers) = Args::parse_from(std::env::args().skip(1));
    let flags = parse_sweep_flags(leftovers);
    if let Some(path) = &flags.check {
        return check_verdicts(path);
    }

    let cells: Vec<Cell> = if flags.tiny {
        grids::tiny(args.seed)
    } else {
        let names: Vec<String> = flags
            .experiments
            .clone()
            .unwrap_or_else(|| grids::EXPERIMENTS.iter().map(|s| s.to_string()).collect());
        names
            .iter()
            .flat_map(|name| {
                grids::experiment(name, args.full, args.seed).unwrap_or_else(|| {
                    eprintln!(
                        "unknown experiment {name:?} (known: {})",
                        grids::EXPERIMENTS.join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };

    // One job per (cell, seed) not yet recorded on disk.
    let jobs: Vec<(&Cell, u64)> = cells
        .iter()
        .flat_map(|c| args.seeds.iter().map(move |s| (c, *s)))
        .filter(|(c, s)| !record_path(&flags.out, &c.slug, *s).exists())
        .collect();
    let skipped = cells.len() * args.seeds.len() - jobs.len();
    let threads = args
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    println!(
        "sweep: {} cells x {} seeds = {} jobs ({} already recorded), {} thread(s), out {}",
        cells.len(),
        args.seeds.len(),
        jobs.len(),
        skipped,
        threads,
        flags.out.display()
    );
    if jobs.is_empty() {
        println!("all records present; skipping straight to aggregation");
    }

    let opts = JobOpts {
        resume: args.resume.clone(),
        trace: args.trace.clone(),
    };
    let finished = AtomicUsize::new(0);
    let total = jobs.len();
    run_parallel(&jobs, threads, |_, (cell, seed)| {
        let result = cell.execute(*seed, &opts);
        let record = CellRecord::new(cell, *seed, &result);
        let path = write_record(&flags.out, &record).expect("write sweep record");
        let n = finished.fetch_add(1, Ordering::Relaxed) + 1;
        println!(
            "[{n}/{total}] {} s{seed}: full {:.3} avg {:.3} -> {}",
            cell.slug,
            record.best_full,
            record.best_avg,
            path.display()
        );
    });

    // Aggregate everything recorded under the out dir (this run plus
    // any earlier partial runs).
    let records = read_records(&flags.out).expect("read sweep records");
    if records.is_empty() {
        eprintln!("no records under {}", flags.out.display());
        return ExitCode::FAILURE;
    }
    let summaries = summarize_cells(&records);
    let mut current = "";
    let mut rows: Vec<Vec<String>> = Vec::new();
    for s in &summaries {
        if s.experiment != current && !rows.is_empty() {
            print_table(
                &format!("sweep: {current} (mean\u{b1}95% CI)"),
                &["cell", "n", "full %", "avg %", "waste %"],
                &rows,
            );
            rows.clear();
        }
        current = &s.experiment;
        rows.push(vec![
            s.slug.clone(),
            s.best_full.n.to_string(),
            s.best_full.pct_pm(),
            s.best_avg.pct_pm(),
            s.comm_waste.pct_pm(),
        ]);
    }
    if !rows.is_empty() {
        print_table(
            &format!("sweep: {current} (mean\u{b1}95% CI)"),
            &["cell", "n", "full %", "avg %", "waste %"],
            &rows,
        );
    }

    let stats_path = flags.out.join("stats.json");
    std::fs::write(
        &stats_path,
        serde_json::to_string_pretty(&summaries).expect("serialise stats"),
    )
    .expect("write stats.json");
    println!("[wrote {}]", stats_path.display());

    let verdicts = evaluate_claims(&records);
    let verdicts_path = flags.out.join("verdicts.json");
    std::fs::write(
        &verdicts_path,
        serde_json::to_string_pretty(&verdicts).expect("serialise verdicts"),
    )
    .expect("write verdicts.json");
    println!("[wrote {}]", verdicts_path.display());

    println!("\n== verdicts ==");
    for c in &verdicts.claims {
        println!(
            "  {:<11} {:<32} wins {:>2} losses {:>2} ties {:>2}  p={:.4}  {}",
            c.status, c.id, c.wins, c.losses, c.ties, c.p, c.description
        );
    }
    let (r, p, n, nd) = verdicts.tally();
    println!("\n{r} reproduced, {p} partial, {n} not reproduced, {nd} without data");
    ExitCode::SUCCESS
}
