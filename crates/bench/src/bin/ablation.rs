//! Design-choice ablations beyond the paper's own (DESIGN.md §4):
//!
//! * **p-sweep** — pool granularity `p ∈ {1, 2, 3, 4}` (extends
//!   Table 4's fine-vs-coarse to a curve),
//! * **reward cap** — the `min(0.5, R_s)` success-rate cap of §3.3 on
//!   vs off (cap = 1.0),
//! * **ratio pair** — the (S, M) width ratios around the paper's
//!   (0.40, 0.66).
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin ablation [--full]
//! ```

use adaptivefl_bench::{
    experiment_cfg, paper_models, pct, print_table, run_kind, run_method, syn_cifar10, write_json,
    Args,
};
use adaptivefl_core::methods::{AdaptiveFl, MethodKind};
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::Partition;
use serde::Serialize;

#[derive(Serialize)]
struct AblationResult {
    group: String,
    variant: String,
    full_acc: f32,
    avg_acc: f32,
    comm_waste: f64,
}

fn main() {
    let args = Args::parse();
    let spec = syn_cifar10();
    let [_, (_, resnet)] = paper_models(spec.classes, spec.input);
    let mut results = Vec::new();

    // (a) pool granularity sweep.
    for p in [1usize, 2, 3, 4] {
        let mut cfg = experiment_cfg(resnet, &args, false);
        cfg.p = p;
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.6));
        let r = run_kind(
            &mut sim,
            MethodKind::AdaptiveFl,
            &args,
            &format!("ablation-p{p}"),
        );
        println!(
            "p = {p}: full {}%  waste {:.1}%",
            pct(r.best_full_accuracy()),
            100.0 * r.comm_waste_rate()
        );
        results.push(AblationResult {
            group: "p-sweep".into(),
            variant: format!("p={p}"),
            full_acc: r.best_full_accuracy(),
            avg_acc: r.best_avg_accuracy(),
            comm_waste: r.comm_waste_rate(),
        });
    }

    // (b) reward cap on/off.
    for (label, cap) in [("cap=0.5 (paper)", 0.5f64), ("cap=1.0 (off)", 1.0)] {
        let cfg = experiment_cfg(resnet, &args, false);
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.6));
        let r = run_method(
            &mut sim,
            |env| {
                Box::new(
                    AdaptiveFl::new(env, SelectionStrategy::CuriosityAndResource, false)
                        .with_reward_cap(cap),
                )
            },
            &args,
            &format!("ablation-cap{cap}"),
        );
        println!(
            "{label}: full {}%  waste {:.1}%",
            pct(r.best_full_accuracy()),
            100.0 * r.comm_waste_rate()
        );
        results.push(AblationResult {
            group: "reward-cap".into(),
            variant: label.into(),
            full_acc: r.best_full_accuracy(),
            avg_acc: r.best_avg_accuracy(),
            comm_waste: r.comm_waste_rate(),
        });
    }

    // (c) level width-ratio pairs around the paper's (0.40, 0.66).
    for ratios in [(0.30f32, 0.55f32), (0.40, 0.66), (0.50, 0.75)] {
        let mut cfg = experiment_cfg(resnet, &args, false);
        cfg.ratios = ratios;
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.6));
        let label = format!("S={},M={}", ratios.0, ratios.1);
        let r = run_kind(
            &mut sim,
            MethodKind::AdaptiveFl,
            &args,
            &format!("ablation-ratios-{label}"),
        );
        println!(
            "{label}: full {}%  waste {:.1}%",
            pct(r.best_full_accuracy()),
            100.0 * r.comm_waste_rate()
        );
        results.push(AblationResult {
            group: "ratios".into(),
            variant: label,
            full_acc: r.best_full_accuracy(),
            avg_acc: r.best_avg_accuracy(),
            comm_waste: r.comm_waste_rate(),
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.group.clone(),
                r.variant.clone(),
                pct(r.full_acc),
                pct(r.avg_acc),
                format!("{:.1}", 100.0 * r.comm_waste),
            ]
        })
        .collect();
    print_table(
        "Design-choice ablations (SynCIFAR-10, ResNet18, alpha = 0.6)",
        &["group", "variant", "full %", "avg %", "waste %"],
        &rows,
    );
    write_json("ablation", &results);
}
