//! Design-choice ablations beyond the paper's own (DESIGN.md §4):
//!
//! * **p-sweep** — pool granularity `p ∈ {1, 2, 3, 4}` (extends
//!   Table 4's fine-vs-coarse to a curve),
//! * **reward cap** — the `min(0.5, R_s)` success-rate cap of §3.3 on
//!   vs off (cap = 1.0),
//! * **ratio pair** — the (S, M) width ratios around the paper's
//!   (0.40, 0.66).
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::ablation`].
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin ablation [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, print_table, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct AblationResult {
    group: String,
    variant: String,
    full_acc: f32,
    avg_acc: f32,
    comm_waste: f64,
}

fn main() {
    let args = Args::parse();
    let mut results = Vec::new();
    for cell in &grids::ablation(args.full, args.seed) {
        let r = run_cell_inline(cell, &args);
        println!(
            "{}: full {}%  waste {:.1}%",
            cell.variant,
            pct(r.best_full_accuracy()),
            100.0 * r.comm_waste_rate()
        );
        results.push(AblationResult {
            group: cell.group.clone(),
            variant: cell.variant.clone(),
            full_acc: r.best_full_accuracy(),
            avg_acc: r.best_avg_accuracy(),
            comm_waste: r.comm_waste_rate(),
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.group.clone(),
                r.variant.clone(),
                pct(r.full_acc),
                pct(r.avg_acc),
                format!("{:.1}", 100.0 * r.comm_waste),
            ]
        })
        .collect();
    print_table(
        "Design-choice ablations (SynCIFAR-10, ResNet18, alpha = 0.6)",
        &["group", "variant", "full %", "avg %", "waste %"],
        &rows,
    );
    write_json("ablation", &results);
}
