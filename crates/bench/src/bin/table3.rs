//! Table 3: performance under different weak:medium:strong device
//! proportions (4:3:3, 8:1:1, 1:8:1, 1:1:8) on SynCIFAR-10 with the
//! reduced VGG16.
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::table3`].
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin table3 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, print_table, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    proportion: String,
    method: String,
    avg: f32,
    full: f32,
}

fn main() {
    let args = Args::parse();
    let grid = grids::table3(args.full, args.seed);

    let mut cells = Vec::new();
    let mut current = String::new();
    for cell in &grid {
        if cell.group != current {
            println!("\n--- proportion {} ---", cell.group);
            current = cell.group.clone();
        }
        let r = run_cell_inline(cell, &args);
        let (avg, full) = (r.best_avg_accuracy(), r.best_full_accuracy());
        println!(
            "  {:<12} avg {:>5}%  full {:>5}%",
            r.method,
            pct(avg),
            pct(full)
        );
        cells.push(Cell {
            proportion: cell.group.clone(),
            method: r.method,
            avg,
            full,
        });
    }

    let proportions = ["4:3:3", "8:1:1", "1:8:1", "1:1:8"];
    let methods = ["All-Large", "HeteroFL", "ScaleFL", "AdaptiveFL"];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|name| {
            let mut row = vec![name.to_string()];
            for pname in proportions {
                let c = cells
                    .iter()
                    .find(|c| c.method == *name && c.proportion == pname)
                    .expect("cell exists");
                row.push(format!("{}/{}", pct(c.avg), pct(c.full)));
            }
            row
        })
        .collect();
    print_table(
        "Table 3: accuracy avg/full (%) by device proportion — paper shape: AdaptiveFL best everywhere; all methods improve as strong devices increase",
        &["method", "4:3:3", "8:1:1", "1:8:1", "1:1:8"],
        &rows,
    );
    write_json("table3", &cells);
}
