//! Table 3: performance under different weak:medium:strong device
//! proportions (4:3:3, 8:1:1, 1:8:1, 1:1:8) on SynCIFAR-10 with the
//! reduced VGG16.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin table3 [--full]
//! ```

use adaptivefl_bench::{
    experiment_cfg, paper_models, pct, print_table, run_kind, syn_cifar10, write_json, Args,
};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::Partition;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    proportion: String,
    method: String,
    avg: f32,
    full: f32,
}

fn main() {
    let args = Args::parse();
    let spec = syn_cifar10();
    let [(_, vgg), _] = paper_models(spec.classes, spec.input);
    let proportions: [(&str, (usize, usize, usize)); 4] = [
        ("4:3:3", (4, 3, 3)),
        ("8:1:1", (8, 1, 1)),
        ("1:8:1", (1, 8, 1)),
        ("1:1:8", (1, 1, 8)),
    ];
    let methods = [
        MethodKind::AllLarge,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ];

    let mut cells = Vec::new();
    for (pname, prop) in proportions {
        let mut cfg = experiment_cfg(vgg, &args, false);
        cfg.proportions = prop;
        println!("\n--- proportion {pname} ---");
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
        for kind in methods {
            let r = run_kind(&mut sim, kind, &args, &format!("table3-{pname}-{kind}"));
            let (avg, full) = (r.best_avg_accuracy(), r.best_full_accuracy());
            println!(
                "  {:<12} avg {:>5}%  full {:>5}%",
                r.method,
                pct(avg),
                pct(full)
            );
            cells.push(Cell {
                proportion: pname.to_string(),
                method: r.method,
                avg,
                full,
            });
        }
    }

    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|kind| {
            let name = kind.to_string();
            let mut row = vec![name.clone()];
            for (pname, _) in proportions {
                let c = cells
                    .iter()
                    .find(|c| c.method == name && c.proportion == pname)
                    .expect("cell exists");
                row.push(format!("{}/{}", pct(c.avg), pct(c.full)));
            }
            row
        })
        .collect();
    print_table(
        "Table 3: accuracy avg/full (%) by device proportion — paper shape: AdaptiveFL best everywhere; all methods improve as strong devices increase",
        &["method", "4:3:3", "8:1:1", "1:8:1", "1:1:8"],
        &rows,
    );
    write_json("table3", &cells);
}
