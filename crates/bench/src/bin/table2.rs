//! Table 2: test accuracy (avg / full) of the five methods on
//! SynCIFAR-10 and SynCIFAR-100 (IID, α = 0.6, α = 0.3) and SynFEMNIST
//! (naturally non-IID), with reduced VGG16 and ResNet18 models.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin table2 [--full]
//! ```

use adaptivefl_bench::{
    experiment_cfg, paper_models, pct, print_table, run_kind, syn_cifar10, syn_cifar100,
    syn_femnist, write_json, Args,
};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::{Partition, SynthSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    model: String,
    dataset: String,
    partition: String,
    method: String,
    avg: f32,
    full: f32,
}

type DatasetPanel = (&'static str, SynthSpec, Vec<(&'static str, Partition)>);

fn main() {
    let args = Args::parse();
    let datasets: Vec<DatasetPanel> = vec![
        (
            "SynCIFAR-10",
            syn_cifar10(),
            vec![
                ("IID", Partition::Iid),
                ("a=0.6", Partition::Dirichlet(0.6)),
                ("a=0.3", Partition::Dirichlet(0.3)),
            ],
        ),
        (
            "SynCIFAR-100",
            syn_cifar100(),
            vec![
                ("IID", Partition::Iid),
                ("a=0.6", Partition::Dirichlet(0.6)),
                ("a=0.3", Partition::Dirichlet(0.3)),
            ],
        ),
        (
            "SynFEMNIST",
            syn_femnist(),
            vec![("writer", Partition::ByGroup)],
        ),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for (ds_name, spec, partitions) in &datasets {
        for (model_name, model) in paper_models(spec.classes, spec.input) {
            for (part_name, partition) in partitions {
                let hard = *ds_name != "SynCIFAR-10";
                let mut cfg = experiment_cfg(model, &args, hard);
                if *ds_name == "SynFEMNIST" {
                    cfg.num_clients = 180; // paper: 180 FEMNIST clients
                    cfg.clients_per_round = 18;
                    cfg.rounds = if args.full { 80 } else { 32 };
                    cfg.eval_every = cfg.rounds / 4;
                }
                println!("\n--- {model_name} / {ds_name} / {part_name} ---");
                let mut sim = Simulation::prepare(&cfg, spec, *partition);
                for kind in MethodKind::table2_lineup() {
                    let slug = format!("table2-{model_name}-{ds_name}-{part_name}-{kind}");
                    let r = run_kind(&mut sim, kind, &args, &slug);
                    let (avg, full) = (r.best_avg_accuracy(), r.best_full_accuracy());
                    println!(
                        "  {:<12} avg {:>5}%  full {:>5}%",
                        r.method,
                        pct(avg),
                        pct(full)
                    );
                    cells.push(Cell {
                        model: model_name.to_string(),
                        dataset: ds_name.to_string(),
                        partition: part_name.to_string(),
                        method: r.method,
                        avg,
                        full,
                    });
                }
            }
        }
    }

    // Paper-shaped summary table: one row per (model, method), columns
    // per dataset/partition, each cell "avg/full".
    let mut rows = Vec::new();
    for (model_name, _) in paper_models(10, (3, 8, 8)) {
        for kind in MethodKind::table2_lineup() {
            let method = kind.to_string();
            let mut row = vec![model_name.to_string(), method.clone()];
            for (ds_name, _, partitions) in &datasets {
                for (part_name, _) in partitions {
                    let cell = cells.iter().find(|c| {
                        c.model == model_name
                            && c.method == method
                            && &c.dataset == ds_name
                            && &c.partition == part_name
                    });
                    row.push(match cell {
                        Some(c) => format!("{}/{}", pct(c.avg), pct(c.full)),
                        None => "-".into(),
                    });
                }
            }
            rows.push(row);
        }
    }
    print_table(
        "Table 2: accuracy avg/full (%) — paper shape: AdaptiveFL best in every column",
        &[
            "model", "method", "C10 IID", "C10 a.6", "C10 a.3", "C100 IID", "C100 a.6", "C100 a.3",
            "FEMNIST",
        ],
        &rows,
    );
    write_json("table2", &cells);
}
