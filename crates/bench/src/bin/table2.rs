//! Table 2: test accuracy (avg / full) of the five methods on
//! SynCIFAR-10 and SynCIFAR-100 (IID, α = 0.6, α = 0.3) and SynFEMNIST
//! (naturally non-IID), with reduced VGG16 and ResNet18 models.
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::table2`];
//! this binary runs it at the single `--seed` — `sweep` runs the same
//! cells at many seeds.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin table2 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{paper_models, pct, print_table, write_json, Args};
use adaptivefl_core::methods::MethodKind;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    model: String,
    dataset: String,
    partition: String,
    method: String,
    avg: f32,
    full: f32,
}

fn main() {
    let args = Args::parse();
    let mut cells: Vec<Cell> = Vec::new();
    let mut current_panel = String::new();
    for cell in &grids::table2(args.full, args.seed) {
        let panel = format!(
            "{} / {} / {}",
            cell.model, cell.dataset, cell.partition_label
        );
        if panel != current_panel {
            println!("\n--- {panel} ---");
            current_panel = panel;
        }
        let r = run_cell_inline(cell, &args);
        let (avg, full) = (r.best_avg_accuracy(), r.best_full_accuracy());
        println!(
            "  {:<12} avg {:>5}%  full {:>5}%",
            r.method,
            pct(avg),
            pct(full)
        );
        cells.push(Cell {
            model: cell.model.clone(),
            dataset: cell.dataset.clone(),
            partition: cell.partition_label.clone(),
            method: r.method,
            avg,
            full,
        });
    }

    // Paper-shaped summary table: one row per (model, method), columns
    // per dataset/partition, each cell "avg/full".
    let columns = [
        ("SynCIFAR-10", "IID"),
        ("SynCIFAR-10", "a=0.6"),
        ("SynCIFAR-10", "a=0.3"),
        ("SynCIFAR-100", "IID"),
        ("SynCIFAR-100", "a=0.6"),
        ("SynCIFAR-100", "a=0.3"),
        ("SynFEMNIST", "writer"),
    ];
    let mut rows = Vec::new();
    for (model_name, _) in paper_models(10, (3, 8, 8)) {
        for kind in MethodKind::table2_lineup() {
            let method = kind.to_string();
            let mut row = vec![model_name.to_string(), method.clone()];
            for (ds_name, part_name) in columns {
                let cell = cells.iter().find(|c| {
                    c.model == model_name
                        && c.method == method
                        && c.dataset == ds_name
                        && c.partition == part_name
                });
                row.push(match cell {
                    Some(c) => format!("{}/{}", pct(c.avg), pct(c.full)),
                    None => "-".into(),
                });
            }
            rows.push(row);
        }
    }
    print_table(
        "Table 2: accuracy avg/full (%) — paper shape: AdaptiveFL best in every column",
        &[
            "model", "method", "C10 IID", "C10 a.6", "C10 a.3", "C100 IID", "C100 a.6", "C100 a.3",
            "FEMNIST",
        ],
        &rows,
    );
    write_json("table2", &cells);
}
