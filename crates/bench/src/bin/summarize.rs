//! Renders every record under `results/` into one markdown report
//! (`results/SUMMARY.md`) — handy after `./run_experiments.sh`. With
//! `--resume <dir>` it also reads the newest valid checkpoint of every
//! run under `<dir>` and reports the persisted histories (method,
//! completed rounds, best accuracy, communication waste). With
//! `--sweep <dir>` (default `results/sweep` when it exists) it adds
//! cross-seed mean±95 % CI tables and the statistical verdict for
//! every paper claim the sweep covered.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin summarize \
//!     [--resume <dir>] [--sweep <dir>]
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use adaptivefl_bench::sweep::{evaluate_claims, read_records, summarize_cells};
use adaptivefl_bench::{results_dir, Args};
use adaptivefl_core::metrics::RunResult;
use adaptivefl_store::SnapshotStore;
use serde_json::Value;

/// Cross-seed section: one mean±CI table per experiment plus the
/// claim verdicts, all recomputed from the record files so the
/// section never disagrees with what is on disk.
fn sweep_section(out: &mut String, dir: &Path, label: &str) {
    let records = match read_records(dir) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(out, "\n## sweep ({label})\n\n*(unreadable: {e})*");
            return;
        }
    };
    let _ = writeln!(out, "\n## sweep ({label})\n");
    if records.is_empty() {
        let _ = writeln!(out, "*(no sweep records — run the `sweep` binary first)*");
        return;
    }

    let summaries = summarize_cells(&records);
    let mut current = "";
    for s in &summaries {
        if s.experiment != current {
            current = &s.experiment;
            let _ = writeln!(out, "\n### {current} (mean±95 % CI)\n");
            let _ = writeln!(out, "| cell | seeds | full % | avg % | waste % |");
            let _ = writeln!(out, "|---|---|---|---|---|");
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            s.slug,
            s.seeds.len(),
            s.best_full.pct_pm(),
            s.best_avg.pct_pm(),
            s.comm_waste.pct_pm(),
        );
    }

    let verdicts = evaluate_claims(&records);
    let _ = writeln!(out, "\n### verdicts\n");
    let _ = writeln!(
        out,
        "| claim | status | n | wins/losses/ties | p | mean diff |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for c in &verdicts.claims {
        let _ = writeln!(
            out,
            "| {} | **{}** | {} | {}/{}/{} | {:.4} | {:+.4} |",
            c.id, c.status, c.n, c.wins, c.losses, c.ties, c.p, c.mean_diff,
        );
    }
    let (reproduced, partial, not, no_data) = verdicts.tally();
    let _ = writeln!(
        out,
        "\n*({} claims: {reproduced} reproduced, {partial} partial, {not} not, {no_data} no-data; seeds {:?})*",
        verdicts.claims.len(),
        verdicts.seeds,
    );
}

/// One markdown table row per run directory under `dir`, built from
/// each run's newest valid snapshot. Histories round-trip through the
/// stable `RoundRecord`/`EvalRecord` codecs, so the derived metrics
/// (`comm_waste_rate`, best accuracies) match the live run exactly.
fn checkpoint_section(out: &mut String, dir: &Path) {
    let _ = writeln!(out, "\n## checkpoints ({})\n", dir.display());
    let mut runs: Vec<_> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            let _ = writeln!(out, "*(unreadable: {e})*");
            return;
        }
    };
    runs.sort();
    let _ = writeln!(
        out,
        "| run | method | rounds | best full % | best avg % | waste % | sim secs |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    let mut shown = 0usize;
    for run in runs {
        let name = run.file_name().and_then(|s| s.to_str()).unwrap_or("?");
        let store = match SnapshotStore::open(&run) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let Ok(Some((_, snap))) = store.latest_valid() else {
            let _ = writeln!(out, "| {name} | - | no valid snapshot | - | - | - | - |");
            continue;
        };
        let rounds_done = snap.completed_rounds;
        let r = RunResult::from_history(snap.method_name.clone(), snap.rounds, snap.evals);
        let _ = writeln!(
            out,
            "| {name} | {} | {rounds_done} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.method,
            100.0 * r.best_full_accuracy(),
            100.0 * r.best_avg_accuracy(),
            100.0 * r.comm_waste_rate(),
            r.total_sim_secs(),
        );
        shown += 1;
    }
    let _ = writeln!(out, "\n*({shown} checkpointed runs)*");
}

fn main() {
    let (args, rest) = Args::parse_from(std::env::args().skip(1));
    let mut sweep_dir: Option<PathBuf> = None;
    let mut it = rest.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sweep" => {
                sweep_dir = Some(PathBuf::from(it.next().expect("--sweep needs a directory")))
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    let dir = results_dir();
    // Default to results/sweep when it exists, so a plain `summarize`
    // after a sweep picks the statistics up without extra flags. The
    // label keeps the committed report free of absolute paths.
    let mut sweep_label = String::from("results/sweep");
    match &sweep_dir {
        Some(d) => sweep_label = d.display().to_string(),
        None if dir.join("sweep").is_dir() => sweep_dir = Some(dir.join("sweep")),
        None => {}
    }
    let mut out = String::from("# AdaptiveFL reproduction — results summary\n");
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("results dir readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();

    for path in entries {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?");
        let Ok(body) = fs::read_to_string(&path) else {
            continue;
        };
        let Ok(value) = serde_json::from_str::<Value>(&body) else {
            continue;
        };
        let _ = writeln!(out, "\n## {name}\n");
        match &value {
            Value::Array(rows) if !rows.is_empty() => {
                // Render an array of flat objects as a table.
                if let Some(Value::Object(first)) = rows.first() {
                    let cols: Vec<&String> = first.keys().collect();
                    let _ = writeln!(
                        out,
                        "| {} |",
                        cols.iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>()
                            .join(" | ")
                    );
                    let _ = writeln!(
                        out,
                        "|{}|",
                        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
                    );
                    for row in rows {
                        if let Value::Object(obj) = row {
                            let cells: Vec<String> = cols
                                .iter()
                                .map(|c| match obj.get(c) {
                                    Some(Value::Number(n)) => {
                                        let f = n.as_f64().unwrap_or(0.0);
                                        if f.fract() == 0.0 && f.abs() < 1e15 {
                                            format!("{f:.0}")
                                        } else {
                                            format!("{f:.4}")
                                        }
                                    }
                                    Some(Value::String(s)) => s.clone(),
                                    Some(v) => v.to_string(),
                                    None => String::new(),
                                })
                                .collect();
                            let _ = writeln!(out, "| {} |", cells.join(" | "));
                        }
                    }
                } else {
                    let _ = writeln!(out, "```json\n{body}\n```");
                }
            }
            _ => {
                let _ = writeln!(out, "```json\n{body}\n```");
            }
        }
        let _ = writeln!(
            out,
            "\n*({} entries)*",
            value.as_array().map_or(1, Vec::len)
        );
    }

    if let Some(sweep) = &sweep_dir {
        sweep_section(&mut out, sweep, &sweep_label);
    }

    if let Some(ckpt_dir) = &args.resume {
        checkpoint_section(&mut out, ckpt_dir);
    }

    let target = dir.join("SUMMARY.md");
    fs::write(&target, out).expect("write summary");
    println!("wrote {}", target.display());
}
