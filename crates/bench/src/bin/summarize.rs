//! Renders every record under `results/` into one markdown report
//! (`results/SUMMARY.md`) — handy after `./run_experiments.sh`.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin summarize
//! ```

use std::fmt::Write as _;
use std::fs;

use adaptivefl_bench::results_dir;
use serde_json::Value;

fn main() {
    let dir = results_dir();
    let mut out = String::from("# AdaptiveFL reproduction — results summary\n");
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("results dir readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();

    for path in entries {
        let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?");
        let Ok(body) = fs::read_to_string(&path) else {
            continue;
        };
        let Ok(value) = serde_json::from_str::<Value>(&body) else {
            continue;
        };
        let _ = writeln!(out, "\n## {name}\n");
        match &value {
            Value::Array(rows) if !rows.is_empty() => {
                // Render an array of flat objects as a table.
                if let Some(Value::Object(first)) = rows.first() {
                    let cols: Vec<&String> = first.keys().collect();
                    let _ = writeln!(
                        out,
                        "| {} |",
                        cols.iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>()
                            .join(" | ")
                    );
                    let _ = writeln!(
                        out,
                        "|{}|",
                        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
                    );
                    for row in rows {
                        if let Value::Object(obj) = row {
                            let cells: Vec<String> = cols
                                .iter()
                                .map(|c| match obj.get(c) {
                                    Some(Value::Number(n)) => {
                                        let f = n.as_f64().unwrap_or(0.0);
                                        if f.fract() == 0.0 && f.abs() < 1e15 {
                                            format!("{f:.0}")
                                        } else {
                                            format!("{f:.4}")
                                        }
                                    }
                                    Some(Value::String(s)) => s.clone(),
                                    Some(v) => v.to_string(),
                                    None => String::new(),
                                })
                                .collect();
                            let _ = writeln!(out, "| {} |", cells.join(" | "));
                        }
                    }
                } else {
                    let _ = writeln!(out, "```json\n{body}\n```");
                }
            }
            _ => {
                let _ = writeln!(out, "```json\n{body}\n```");
            }
        }
        let _ = writeln!(
            out,
            "\n*({} entries)*",
            value.as_array().map_or(1, Vec::len)
        );
    }

    let target = dir.join("SUMMARY.md");
    fs::write(&target, out).expect("write summary");
    println!("wrote {}", target.display());
}
