//! Figure 3: per-level submodel accuracy and size for every
//! heterogeneous method on SynCIFAR-10 (reduced VGG16, IID) — the
//! paper's "shapes of VGG16 submodels with their test accuracy".
//!
//! Paper shape to check: HeteroFL's and ScaleFL's 1.0× models do *not*
//! beat their 0.25× models, while AdaptiveFL's accuracy increases with
//! submodel size.
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::fig3`].
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig3 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, print_table, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct LevelPoint {
    method: String,
    level: String,
    accuracy: f32,
}

fn main() {
    let args = Args::parse();
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for cell in &grids::fig3(args.full, args.seed) {
        let r = run_cell_inline(cell, &args);
        let last = r.evals.last().expect("evaluated");
        let mut row = vec![r.method.clone()];
        for (level, acc) in &last.levels {
            row.push(format!("{level}={}", pct(*acc)));
            points.push(LevelPoint {
                method: r.method.clone(),
                level: level.clone(),
                accuracy: *acc,
            });
        }
        rows.push(row);
        // Monotonicity indicator: does accuracy grow with size?
        let accs: Vec<f32> = last.levels.iter().map(|(_, a)| *a).collect();
        let monotone = accs.windows(2).all(|w| w[1] >= w[0] - 0.02);
        println!(
            "{:<12} small→large accuracies {:?} — monotone: {monotone}",
            points.last().map(|p| p.method.as_str()).unwrap_or(""),
            accs.iter().map(|a| pct(*a)).collect::<Vec<_>>()
        );
    }

    print_table(
        "Figure 3: per-level submodel accuracy (%) at the final round",
        &["method", "small", "medium", "large"],
        &rows,
    );
    write_json("fig3", &points);
}
