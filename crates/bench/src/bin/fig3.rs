//! Figure 3: per-level submodel accuracy and size for every
//! heterogeneous method on SynCIFAR-10 (reduced VGG16, IID) — the
//! paper's "shapes of VGG16 submodels with their test accuracy".
//!
//! Paper shape to check: HeteroFL's and ScaleFL's 1.0× models do *not*
//! beat their 0.25× models, while AdaptiveFL's accuracy increases with
//! submodel size.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig3 [--full]
//! ```

use adaptivefl_bench::{
    experiment_cfg, paper_models, pct, print_table, run_kind, syn_cifar10, write_json, Args,
};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::Partition;
use serde::Serialize;

#[derive(Serialize)]
struct LevelPoint {
    method: String,
    level: String,
    accuracy: f32,
}

fn main() {
    let args = Args::parse();
    let spec = syn_cifar10();
    let [(_, vgg), _] = paper_models(spec.classes, spec.input);
    let cfg = experiment_cfg(vgg, &args, false);
    let methods = [
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ];

    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
    for kind in methods {
        let r = run_kind(&mut sim, kind, &args, &format!("fig3-{kind}"));
        let last = r.evals.last().expect("evaluated");
        let mut row = vec![r.method.clone()];
        for (level, acc) in &last.levels {
            row.push(format!("{level}={}", pct(*acc)));
            points.push(LevelPoint {
                method: r.method.clone(),
                level: level.clone(),
                accuracy: *acc,
            });
        }
        rows.push(row);
        // Monotonicity indicator: does accuracy grow with size?
        let accs: Vec<f32> = last.levels.iter().map(|(_, a)| *a).collect();
        let monotone = accs.windows(2).all(|w| w[1] >= w[0] - 0.02);
        println!(
            "{:<12} small→large accuracies {:?} — monotone: {monotone}",
            points.last().map(|p| p.method.as_str()).unwrap_or(""),
            accs.iter().map(|a| pct(*a)).collect::<Vec<_>>()
        );
    }

    print_table(
        "Figure 3: per-level submodel accuracy (%) at the final round",
        &["method", "small", "medium", "large"],
        &rows,
    );
    write_json("fig3", &points);
}
