//! Renders human-readable reports from `.jsonl` traces produced by
//! the experiment binaries' `--trace <dir>` flag.
//!
//! ```text
//! trace_report <file-or-dir> [more files or dirs...] [--merge]
//! ```
//!
//! By default each trace file gets its own report (per-phase wall-time
//! breakdown plus the per-layer Algorithm-2 coverage table); `--merge`
//! folds every file into one combined report instead.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use adaptivefl_trace::{read_trace, TraceReport};

fn collect_traces(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect();
        entries.sort();
        out.extend(entries);
    } else {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut merge = false;
    let mut inputs: Vec<PathBuf> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--merge" => merge = true,
            "--help" | "-h" => {
                eprintln!("usage: trace_report <file-or-dir>... [--merge]");
                return ExitCode::SUCCESS;
            }
            other => inputs.push(PathBuf::from(other)),
        }
    }
    if inputs.is_empty() {
        eprintln!("usage: trace_report <file-or-dir>... [--merge]");
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    for input in &inputs {
        if let Err(e) = collect_traces(input, &mut files) {
            eprintln!("error: cannot read {}: {e}", input.display());
            return ExitCode::FAILURE;
        }
    }
    if files.is_empty() {
        eprintln!("error: no .jsonl traces found under the given paths");
        return ExitCode::FAILURE;
    }

    let mut merged = TraceReport::new();
    let mut failed = false;
    for file in &files {
        match read_trace(file) {
            Ok(lines) => {
                if merge {
                    merged.add_lines(&lines);
                } else {
                    println!("=== {} ===", file.display());
                    println!("{}", TraceReport::from_lines(&lines).render());
                }
            }
            Err(e) => {
                eprintln!("error: {}: {e}", file.display());
                failed = true;
            }
        }
    }
    if merge {
        println!("=== merged ({} traces) ===", files.len());
        println!("{}", merged.render());
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
