//! Figure 2: learning curves (average submodel accuracy vs round) of
//! the five methods on SynCIFAR-10 and SynCIFAR-100 with the reduced
//! VGG16, for IID and α = 0.3 — four panels, one CSV series per
//! (panel, method).
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::fig2`]
//! (two panels in fast mode, all four with `--full`).
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig2 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, write_csv, Args};

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();
    let mut current = String::new();
    for cell in &grids::fig2(args.full, args.seed) {
        if cell.group != current {
            println!("\n--- panel {} ---", cell.group);
            current = cell.group.clone();
        }
        let r = run_cell_inline(cell, &args);
        print!("  {:<12}", r.method);
        for (round, _, avg) in r.curve() {
            print!(" {}:{}", round + 1, pct(avg));
            rows.push(format!(
                "{},{},{},{:.4},{:.4}",
                cell.group,
                r.method,
                round + 1,
                avg,
                r.evals
                    .iter()
                    .find(|e| e.round == round)
                    .map(|e| e.full)
                    .unwrap_or(0.0)
            ));
        }
        println!();
    }
    write_csv("fig2_curves", "panel,method,round,avg_acc,full_acc", &rows);
    println!(
        "\nPaper shape to check: AdaptiveFL's curve is on top with the least variation in every panel."
    );
}
