//! Figure 2: learning curves (average submodel accuracy vs round) of
//! the five methods on SynCIFAR-10 and SynCIFAR-100 with the reduced
//! VGG16, for IID and α = 0.3 — four panels, one CSV series per
//! (panel, method).
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig2 [--full]
//! ```

use adaptivefl_bench::{
    experiment_cfg, paper_models, pct, run_kind, syn_cifar10, syn_cifar100, write_csv, Args,
};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::Partition;

fn main() {
    let args = Args::parse();
    // Fast mode runs the two most informative panels (easy-IID and
    // hard-non-IID); --full runs all four of the paper's panels.
    let mut panels = vec![
        ("cifar10_iid", syn_cifar10(), Partition::Iid),
        ("cifar100_a03", syn_cifar100(), Partition::Dirichlet(0.3)),
    ];
    if args.full {
        panels.push(("cifar10_a03", syn_cifar10(), Partition::Dirichlet(0.3)));
        panels.push(("cifar100_iid", syn_cifar100(), Partition::Iid));
    }

    let mut rows = Vec::new();
    for (panel, spec, partition) in panels {
        let [(_, vgg), _] = paper_models(spec.classes, spec.input);
        let hard = panel.starts_with("cifar100");
        let mut cfg = experiment_cfg(vgg, &args, hard);
        cfg.eval_every = (cfg.rounds / 8).max(1); // denser curves
        println!("\n--- panel {panel} ---");
        let mut sim = Simulation::prepare(&cfg, &spec, partition);
        for kind in MethodKind::table2_lineup() {
            let r = run_kind(&mut sim, kind, &args, &format!("fig2-{panel}-{kind}"));
            print!("  {:<12}", r.method);
            for (round, _, avg) in r.curve() {
                print!(" {}:{}", round + 1, pct(avg));
                rows.push(format!(
                    "{panel},{},{},{:.4},{:.4}",
                    r.method,
                    round + 1,
                    avg,
                    {
                        let full = r
                            .evals
                            .iter()
                            .find(|e| e.round == round)
                            .map(|e| e.full)
                            .unwrap_or(0.0);
                        full
                    }
                ));
            }
            println!();
        }
    }
    write_csv("fig2_curves", "panel,method,round,avg_acc,full_acc", &rows);
    println!(
        "\nPaper shape to check: AdaptiveFL's curve is on top with the least variation in every panel."
    );
}
