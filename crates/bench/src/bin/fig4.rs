//! Figure 4: scalability over the number of participating clients
//! (paper: K = 50/100/200/500 on CIFAR-10 + ResNet18, α = 0.6;
//! here 25/50/100/200 at reduced scale, same 10 % participation).
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::fig4`].
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig4 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, write_csv, Args};

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();
    let mut current = String::new();
    for cell in &grids::fig4(args.full, args.seed) {
        if cell.group != current {
            println!(
                "\n--- {} clients (K = {}) ---",
                cell.cfg.num_clients, cell.cfg.clients_per_round
            );
            current = cell.group.clone();
        }
        let n = cell.cfg.num_clients;
        let r = run_cell_inline(cell, &args);
        print!("  {:<12}", r.method);
        for (round, full, _) in r.curve() {
            print!(" {}:{}", round + 1, pct(full));
            rows.push(format!("{n},{},{},{full:.4}", r.method, round + 1));
        }
        println!();
    }
    write_csv("fig4_curves", "clients,method,round,full_acc", &rows);
    println!("\nPaper shape to check: AdaptiveFL has the highest curve at every client count.");
}
