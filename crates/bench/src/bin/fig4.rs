//! Figure 4: scalability over the number of participating clients
//! (paper: K = 50/100/200/500 on CIFAR-10 + ResNet18, α = 0.6;
//! here 25/50/100/200 at reduced scale, same 10 % participation).
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig4 [--full]
//! ```

use adaptivefl_bench::{experiment_cfg, paper_models, pct, run_kind, syn_cifar10, write_csv, Args};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::Partition;

fn main() {
    let args = Args::parse();
    let spec = syn_cifar10();
    let [_, (_, resnet)] = paper_models(spec.classes, spec.input);
    let client_counts: &[usize] = if args.full {
        &[50, 100, 200, 500]
    } else {
        &[25, 50, 100]
    };
    let methods = [
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ];

    let mut rows = Vec::new();
    for &n in client_counts {
        let mut cfg = experiment_cfg(resnet, &args, false);
        cfg.num_clients = n;
        cfg.clients_per_round = (n / 10).max(2);
        // Keep the global data volume roughly constant so runs stay
        // comparable (the paper fixes the dataset and splits it).
        cfg.samples_per_client = (2500 / n).max(8);
        println!("\n--- {n} clients (K = {}) ---", cfg.clients_per_round);
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.6));
        for kind in methods {
            let r = run_kind(&mut sim, kind, &args, &format!("fig4-n{n}-{kind}"));
            print!("  {:<12}", r.method);
            for (round, full, _) in r.curve() {
                print!(" {}:{}", round + 1, pct(full));
                rows.push(format!("{n},{},{},{full:.4}", r.method, round + 1));
            }
            println!();
        }
    }
    write_csv("fig4_curves", "clients,method,round,full_acc", &rows);
    println!("\nPaper shape to check: AdaptiveFL has the highest curve at every client count.");
}
