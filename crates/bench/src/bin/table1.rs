//! Table 1: split settings of VGG16 — level, pruning configuration
//! `(r_w, I)`, #PARAMS, #FLOPS and size ratio, computed analytically on
//! the full-size architecture (3×32×32 input, 10 classes).
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin table1
//! ```

use adaptivefl_bench::{print_table, write_json};
use adaptivefl_core::pool::{ModelPool, DEFAULT_RATIOS};
use adaptivefl_models::cost::cost_of;
use adaptivefl_models::ModelConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    level: String,
    r_w: f32,
    start_unit: usize,
    params: u64,
    macs: u64,
    ratio: f64,
}

fn main() {
    let cfg = ModelConfig::vgg16_cifar();
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let full = pool.largest().params as f64;

    let mut records = Vec::new();
    let mut rows = Vec::new();
    // Paper order: L_1, M_1..M_3, S_1..S_3.
    let mut entries: Vec<_> = pool.entries().iter().collect();
    entries.reverse();
    entries.sort_by_key(|e| (std::cmp::Reverse(e.level), e.rank));
    for e in entries {
        let bp = cfg.full_blueprint(&e.plan);
        let c = cost_of(&bp, cfg.input);
        let i_str = if e.spec.is_full() {
            "N/A".to_string()
        } else {
            e.spec.start_unit.to_string()
        };
        rows.push(vec![
            e.name(),
            if e.spec.is_full() {
                "1.00".into()
            } else {
                format!("{:.2}", e.spec.r_w)
            },
            i_str,
            format!("{:.2}M", c.params as f64 / 1e6),
            format!("{:.2}M", c.macs as f64 / 1e6),
            format!("{:.2}", c.params as f64 / full),
        ]);
        records.push(Row {
            level: e.name(),
            r_w: e.spec.r_w,
            start_unit: e.spec.start_unit,
            params: c.params,
            macs: c.macs,
            ratio: c.params as f64 / full,
        });
    }

    print_table(
        "Table 1: VGG16 split settings (paper: L1 33.65M/333.22M, M1 16.81M/0.50, S1 8.39M/0.25)",
        &["Level", "r_w", "I", "#PARAMS", "#FLOPS", "ratio"],
        &rows,
    );
    write_json("table1", &records);
}
