//! Figure 5: RL-based client-selection ablation on SynCIFAR-100 with
//! the reduced ResNet18 (IID): (a) communication-waste rate per
//! AdaptiveFL variant, (b) accuracy of each selection strategy.
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::fig5`].
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig5 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, print_table, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct VariantResult {
    variant: String,
    comm_waste: f64,
    full_acc: f32,
    avg_acc: f32,
    failures: usize,
    curve: Vec<(usize, f32)>,
}

fn main() {
    let args = Args::parse();
    let mut results = Vec::new();
    for cell in &grids::fig5(args.full, args.seed) {
        let r = run_cell_inline(cell, &args);
        results.push(VariantResult {
            variant: r.method.clone(),
            comm_waste: r.comm_waste_rate(),
            full_acc: r.best_full_accuracy(),
            avg_acc: r.best_avg_accuracy(),
            failures: r.rounds.iter().map(|x| x.failures).sum(),
            curve: r.curve().into_iter().map(|(t, f, _)| (t, f)).collect(),
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|v| {
            vec![
                v.variant.clone(),
                format!("{:.1}", 100.0 * v.comm_waste),
                pct(v.full_acc),
                pct(v.avg_acc),
                v.failures.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 5: selection ablation — paper shape: +CS has near-lowest waste and the highest accuracy; Greed has the highest waste",
        &["variant", "waste %", "full %", "avg %", "failures"],
        &rows,
    );
    write_json("fig5", &results);
}
