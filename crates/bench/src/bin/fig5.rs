//! Figure 5: RL-based client-selection ablation on SynCIFAR-100 with
//! the reduced ResNet18 (IID): (a) communication-waste rate per
//! AdaptiveFL variant, (b) accuracy of each selection strategy.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig5 [--full]
//! ```

use adaptivefl_bench::{
    experiment_cfg, paper_models, pct, print_table, run_kind, syn_cifar100, write_json, Args,
};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::Partition;
use serde::Serialize;

#[derive(Serialize)]
struct VariantResult {
    variant: String,
    comm_waste: f64,
    full_acc: f32,
    avg_acc: f32,
    failures: usize,
    curve: Vec<(usize, f32)>,
}

fn main() {
    let args = Args::parse();
    let spec = syn_cifar100();
    let [_, (_, resnet)] = paper_models(spec.classes, spec.input);
    let cfg = experiment_cfg(resnet, &args, true);
    let variants = [
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
        MethodKind::AdaptiveFlVariant(SelectionStrategy::CuriosityOnly),
        MethodKind::AdaptiveFlVariant(SelectionStrategy::ResourceOnly),
        MethodKind::AdaptiveFl, // +CS
    ];

    let mut results = Vec::new();
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Iid);
    for kind in variants {
        let r = run_kind(&mut sim, kind, &args, &format!("fig5-{kind}"));
        results.push(VariantResult {
            variant: r.method.clone(),
            comm_waste: r.comm_waste_rate(),
            full_acc: r.best_full_accuracy(),
            avg_acc: r.best_avg_accuracy(),
            failures: r.rounds.iter().map(|x| x.failures).sum(),
            curve: r.curve().into_iter().map(|(t, f, _)| (t, f)).collect(),
        });
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|v| {
            vec![
                v.variant.clone(),
                format!("{:.1}", 100.0 * v.comm_waste),
                pct(v.full_acc),
                pct(v.avg_acc),
                v.failures.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 5: selection ablation — paper shape: +CS has near-lowest waste and the highest accuracy; Greed has the highest waste",
        &["variant", "waste %", "full %", "avg %", "failures"],
        &rows,
    );
    write_json("fig5", &results);
}
