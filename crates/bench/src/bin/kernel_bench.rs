//! CI gate + perf record for the blocked matmul kernels.
//!
//! Times the reference (naive) kernels against the register-blocked
//! ones over a ladder of shapes, verifies bit-identity per shape, then
//! times one heterogeneous aggregation round and one full local
//! training step at the quick-test scale. Results land in a JSON
//! report (default `BENCH_KERNELS.json`, override with `--out PATH`).
//!
//! Exits non-zero when the blocked kernel is not measurably faster
//! than the reference on the largest matmul shape
//! (`speedup < MIN_SPEEDUP`) — the kernels exist to be faster; if they
//! regress to parity the optimisation is dead code.
//!
//! Takes the minimum over several repetitions to shed scheduler noise.

use std::process::ExitCode;
use std::time::Instant;

use adaptivefl_core::aggregate::{aggregate_with_scratch, Upload};
use adaptivefl_core::pool::{ModelPool, DEFAULT_RATIOS};
use adaptivefl_core::trace::NoopTracer;
use adaptivefl_core::trainer::LocalTrainer;
use adaptivefl_models::ModelConfig;
use adaptivefl_nn::layer::LayerExt;
use adaptivefl_tensor::ops::{
    matmul_at_b_blocked, matmul_at_b_reference, matmul_blocked, matmul_reference,
};
use adaptivefl_tensor::{rng, Scratch, Tensor};
use serde::Serialize;

/// Gate: the largest shape must beat the reference by at least this.
const MIN_SPEEDUP: f64 = 1.25;
const REPS: usize = 7;

#[derive(Debug, Serialize)]
struct ShapeReport {
    op: String,
    m: usize,
    k: usize,
    n: usize,
    reference_ns: u64,
    blocked_ns: u64,
    speedup: f64,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    min_speedup_gate: f64,
    largest_shape_speedup: f64,
    shapes: Vec<ShapeReport>,
    aggregation_round_us: u64,
    training_step_ms: u64,
}

/// Deterministic pseudo-random matrix (no RNG dependency in the hot
/// loop; same generator as the differential tests).
fn matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(data, &[rows, cols])
}

fn time_min<F: FnMut() -> Tensor>(mut f: F) -> (u64, Tensor) {
    let mut best = u64::MAX;
    let mut out = f(); // warm-up + canonical result
    for _ in 0..REPS {
        let start = Instant::now();
        let r = std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as u64);
        out = r;
    }
    (best, out)
}

fn bench_shape(op: &str, m: usize, k: usize, n: usize) -> ShapeReport {
    // `matmul` takes a [m,k]·[k,n]; `matmul_at_b` takes aᵀ as [k,m].
    let (a, b, reference, blocked): (Tensor, Tensor, fn(&Tensor, &Tensor) -> Tensor, _) = match op {
        "matmul" => (
            matrix(m, k, 11 + m as u64),
            matrix(k, n, 13 + n as u64),
            matmul_reference,
            matmul_blocked as fn(&Tensor, &Tensor) -> Tensor,
        ),
        "matmul_at_b" => (
            matrix(k, m, 17 + m as u64),
            matrix(k, n, 19 + n as u64),
            matmul_at_b_reference,
            matmul_at_b_blocked,
        ),
        other => panic!("unknown op {other}"),
    };
    let (reference_ns, want) = time_min(|| reference(&a, &b));
    let (blocked_ns, got) = time_min(|| blocked(&a, &b));
    let bit_identical = want
        .as_slice()
        .iter()
        .zip(got.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    ShapeReport {
        op: op.to_string(),
        m,
        k,
        n,
        reference_ns,
        blocked_ns,
        speedup: reference_ns as f64 / blocked_ns.max(1) as f64,
        bit_identical,
    }
}

/// One heterogeneous aggregation round: a 3-level pool's submodels
/// uploaded into the full global model, drawing accumulators from a
/// warm arena (the steady-state shape of a long run).
fn bench_aggregation_round() -> u64 {
    let cfg = ModelConfig::tiny(10);
    let pool = ModelPool::split(&cfg, 3, DEFAULT_RATIOS);
    let mut r = rng::seeded(60);
    let global = cfg.build(&cfg.full_plan(), &mut r).param_map();
    let uploads: Vec<Upload> = (0..pool.entries().len())
        .map(|i| Upload {
            params: pool.prune_plan(i).extract(&global),
            weight: 10.0 + i as f32,
        })
        .collect();
    let scratch = Scratch::new();
    let mut best = u64::MAX;
    for _ in 0..=REPS {
        let mut g = global.clone();
        let start = Instant::now();
        aggregate_with_scratch(
            std::hint::black_box(&mut g),
            &uploads,
            &NoopTracer,
            0,
            &scratch,
        );
        best = best.min(start.elapsed().as_micros() as u64);
    }
    best
}

/// One full local training session (LocalTrainer::fast) on a small
/// synthetic shard — the per-client unit of work of every round.
fn bench_training_step() -> u64 {
    use adaptivefl_data::{SynthSpec, SynthTask};
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    let mut r = rng::seeded(61);
    let task = SynthTask::new(spec, 2, &mut r);
    let data = task.dataset_uniform(64, &mut r);
    let cfg = ModelConfig::tiny(4);
    let trainer = LocalTrainer::fast();
    let scratch = Scratch::new();
    let mut best = u64::MAX;
    for rep in 0..=3u64 {
        let mut net = cfg.build(&cfg.full_plan(), &mut rng::seeded(62));
        let mut train_rng = rng::seeded(63 + rep);
        let start = Instant::now();
        let loss = trainer.train_with_scratch(
            std::hint::black_box(&mut net),
            &data,
            &mut train_rng,
            &scratch,
        );
        best = best.min(start.elapsed().as_millis() as u64);
        assert!(loss.is_finite(), "training diverged");
    }
    best
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_KERNELS.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().expect("--out requires a path"),
            other => {
                eprintln!("unknown argument {other} (usage: kernel_bench [--out PATH])");
                return ExitCode::FAILURE;
            }
        }
    }

    let ladder: &[(usize, usize, usize)] = &[
        (16, 16, 16),
        (32, 48, 32),
        (64, 64, 64),
        (96, 33, 128), // k not a multiple of anything: ragged edges
        (128, 128, 128),
        (256, 256, 256),
    ];
    let mut shapes = Vec::new();
    for op in ["matmul", "matmul_at_b"] {
        for &(m, k, n) in ladder {
            let rep = bench_shape(op, m, k, n);
            println!(
                "{op} {m}x{k}x{n}: reference {:.2}ms, blocked {:.2}ms, speedup {:.2}x{}",
                rep.reference_ns as f64 / 1e6,
                rep.blocked_ns as f64 / 1e6,
                rep.speedup,
                if rep.bit_identical {
                    ""
                } else {
                    "  ** BIT DRIFT **"
                },
            );
            shapes.push(rep);
        }
    }

    let aggregation_round_us = bench_aggregation_round();
    println!("aggregation round (tiny, 3 uploads): {aggregation_round_us}us");
    let training_step_ms = bench_training_step();
    println!("local training session (tiny, 64 samples): {training_step_ms}ms");

    let (largest, drift) = {
        let big = shapes
            .iter()
            .find(|s| s.op == "matmul" && (s.m, s.k, s.n) == (256, 256, 256))
            .expect("largest shape benched");
        (big.speedup, shapes.iter().any(|s| !s.bit_identical))
    };

    let report = Report {
        min_speedup_gate: MIN_SPEEDUP,
        largest_shape_speedup: largest,
        shapes,
        aggregation_round_us,
        training_step_ms,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");

    if drift {
        eprintln!("FAIL: blocked kernel output drifted bitwise from the reference");
        return ExitCode::FAILURE;
    }
    if largest < MIN_SPEEDUP {
        eprintln!("FAIL: largest-shape speedup {largest:.2}x is below the {MIN_SPEEDUP:.2}x gate");
        return ExitCode::FAILURE;
    }
    println!("PASS: largest-shape speedup {largest:.2}x >= {MIN_SPEEDUP:.2}x");
    ExitCode::SUCCESS
}
