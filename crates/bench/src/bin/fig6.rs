//! Figure 6: simulated real test-bed — 17 devices (4 Raspberry Pi 4B,
//! 10 Jetson Nano, 3 Jetson Xavier AGX, Table 5), MobileNetV2 on the
//! Widar stand-in, learning curves against simulated wall-clock time.
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::fig6`].
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig6 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, write_csv, Args};

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();
    for cell in &grids::fig6(args.full, args.seed) {
        let r = run_cell_inline(cell, &args);
        println!("\n{} — accuracy vs simulated wall-clock:", r.method);
        for (secs, acc) in r.time_curve() {
            println!("  t = {secs:8.1}s   acc = {:>5}%", pct(acc));
            rows.push(format!("{},{secs:.2},{acc:.4}", r.method));
        }
        println!(
            "  final {}%, comm waste {:.1}%, total simulated {:.1}s",
            pct(r.final_full_accuracy()),
            100.0 * r.comm_waste_rate(),
            r.total_sim_secs()
        );
    }
    write_csv("fig6_curves", "method,sim_secs,full_acc", &rows);
    println!("\nPaper shape to check: AdaptiveFL reaches the best accuracy on the test-bed.");
}
