//! Figure 6: simulated real test-bed — 17 devices (4 Raspberry Pi 4B,
//! 10 Jetson Nano, 3 Jetson Xavier AGX, Table 5), MobileNetV2 on the
//! Widar stand-in, learning curves against simulated wall-clock time.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin fig6 [--full]
//! ```

use adaptivefl_bench::{pct, run_kind, syn_widar, write_csv, Args};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_data::Partition;
use adaptivefl_device::testbed::paper_testbed;
use adaptivefl_models::ModelConfig;

fn main() {
    let args = Args::parse();
    let spec = syn_widar();
    let model = ModelConfig {
        classes: spec.classes,
        input: spec.input,
        width_mult: 0.5,
        ..ModelConfig::mobilenet_v2_fast(spec.classes)
    };

    let mut cfg = SimConfig::fast(model, args.seed);
    cfg.num_clients = 17; // Table 5
    cfg.clients_per_round = 10; // paper: 10 devices per round
    cfg.rounds = if args.full { 80 } else { 30 };
    cfg.eval_every = cfg.rounds / 6;
    cfg.samples_per_client = 40;
    cfg.test_samples = 300;

    let full_params = model.num_params(&model.full_plan());
    let methods = [
        MethodKind::AllLarge,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
        MethodKind::AdaptiveFl,
    ];

    let mut rows = Vec::new();
    for kind in methods {
        let mut sim = Simulation::prepare(&cfg, &spec, Partition::ByGroup)
            .with_fleet(paper_testbed(full_params, cfg.seed));
        let r = run_kind(&mut sim, kind, &args, &format!("fig6-{kind}"));
        println!("\n{} — accuracy vs simulated wall-clock:", r.method);
        for (secs, acc) in r.time_curve() {
            println!("  t = {secs:8.1}s   acc = {:>5}%", pct(acc));
            rows.push(format!("{},{secs:.2},{acc:.4}", r.method));
        }
        println!(
            "  final {}%, comm waste {:.1}%, total simulated {:.1}s",
            pct(r.final_full_accuracy()),
            100.0 * r.comm_waste_rate(),
            r.total_sim_secs()
        );
    }
    write_csv("fig6_curves", "method,sim_secs,full_acc", &rows);
    println!("\nPaper shape to check: AdaptiveFL reaches the best accuracy on the test-bed.");
}
