//! Table 4: fine-grained (p = 3) vs coarse-grained (p = 1) pruning
//! ablation of AdaptiveFL on SynCIFAR-10 and SynCIFAR-100 with both
//! reduced models.
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin table4 [--full]
//! ```

use adaptivefl_bench::{
    experiment_cfg, paper_models, pct, print_table, run_kind, syn_cifar10, syn_cifar100,
    write_json, Args,
};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::Simulation;
use adaptivefl_data::Partition;
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    dataset: String,
    model: String,
    grained: String,
    partition: String,
    full: f32,
}

fn main() {
    let args = Args::parse();
    let partitions = [
        ("IID", Partition::Iid),
        ("a=0.6", Partition::Dirichlet(0.6)),
        ("a=0.3", Partition::Dirichlet(0.3)),
    ];
    let mut cells = Vec::new();

    for (ds_name, spec) in [
        ("SynCIFAR-10", syn_cifar10()),
        ("SynCIFAR-100", syn_cifar100()),
    ] {
        for (model_name, model) in paper_models(spec.classes, spec.input) {
            for (part_name, partition) in partitions {
                for (grained, p) in [("coarse", 1usize), ("fine", 3usize)] {
                    let hard = ds_name != "SynCIFAR-10";
                    let mut cfg = experiment_cfg(model, &args, hard);
                    cfg.p = p;
                    let mut sim = Simulation::prepare(&cfg, &spec, partition);
                    let slug = format!("table4-{model_name}-{ds_name}-{part_name}-{grained}");
                    let r = run_kind(&mut sim, MethodKind::AdaptiveFl, &args, &slug);
                    let full = r.best_full_accuracy();
                    println!(
                        "{ds_name} / {model_name} / {part_name} / {grained}: {}%",
                        pct(full)
                    );
                    cells.push(Cell {
                        dataset: ds_name.to_string(),
                        model: model_name.to_string(),
                        grained: grained.to_string(),
                        partition: part_name.to_string(),
                        full,
                    });
                }
            }
        }
    }

    let mut rows = Vec::new();
    for ds in ["SynCIFAR-10", "SynCIFAR-100"] {
        for model in ["VGG16", "ResNet18"] {
            for grained in ["coarse", "fine"] {
                let mut row = vec![ds.to_string(), model.to_string(), grained.to_string()];
                for (part_name, _) in partitions {
                    let c = cells
                        .iter()
                        .find(|c| {
                            c.dataset == ds
                                && c.model == model
                                && c.grained == grained
                                && c.partition == part_name
                        })
                        .expect("cell exists");
                    row.push(pct(c.full));
                }
                rows.push(row);
            }
        }
    }
    print_table(
        "Table 4: fine vs coarse pruning (global accuracy %) — paper shape: fine > coarse in nearly every cell",
        &["dataset", "model", "grained", "IID", "a=0.6", "a=0.3"],
        &rows,
    );
    write_json("table4", &cells);
}
