//! Table 4: fine-grained (p = 3) vs coarse-grained (p = 1) pruning
//! ablation of AdaptiveFL on SynCIFAR-10 and SynCIFAR-100 with both
//! reduced models.
//!
//! The run grid lives in [`adaptivefl_bench::sweep::grids::table4`].
//!
//! ```text
//! cargo run --release -p adaptivefl-bench --bin table4 [--full]
//! ```

use adaptivefl_bench::sweep::{grids, run_cell_inline};
use adaptivefl_bench::{pct, print_table, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    dataset: String,
    model: String,
    grained: String,
    partition: String,
    full: f32,
}

fn main() {
    let args = Args::parse();
    let mut cells = Vec::new();
    for cell in &grids::table4(args.full, args.seed) {
        let r = run_cell_inline(cell, &args);
        let full = r.best_full_accuracy();
        println!(
            "{} / {} / {} / {}: {}%",
            cell.dataset,
            cell.model,
            cell.partition_label,
            cell.variant,
            pct(full)
        );
        cells.push(Cell {
            dataset: cell.dataset.clone(),
            model: cell.model.clone(),
            grained: cell.variant.clone(),
            partition: cell.partition_label.clone(),
            full,
        });
    }

    let partitions = ["IID", "a=0.6", "a=0.3"];
    let mut rows = Vec::new();
    for ds in ["SynCIFAR-10", "SynCIFAR-100"] {
        for model in ["VGG16", "ResNet18"] {
            for grained in ["coarse", "fine"] {
                let mut row = vec![ds.to_string(), model.to_string(), grained.to_string()];
                for part_name in partitions {
                    let c = cells
                        .iter()
                        .find(|c| {
                            c.dataset == ds
                                && c.model == model
                                && c.grained == grained
                                && c.partition == part_name
                        })
                        .expect("cell exists");
                    row.push(pct(c.full));
                }
                rows.push(row);
            }
        }
    }
    print_table(
        "Table 4: fine vs coarse pruning (global accuracy %) — paper shape: fine > coarse in nearly every cell",
        &["dataset", "model", "grained", "IID", "a=0.6", "a=0.3"],
        &rows,
    );
    write_json("table4", &cells);
}
