//! CI gate: the default `NoopTracer` must make tracing free.
//!
//! There is no un-instrumented build to compare against (the
//! instrumentation is always compiled in), so the bin measures the
//! next best thing: a quick-test simulation run with the disabled
//! `NoopTracer` versus the same run with an actively capturing
//! `RecordingTracer`. Recording does strictly more work at every
//! probe, so the noop run must not come out slower — if it does by
//! more than the tolerance, the `enabled()` fast path has regressed.
//!
//! Takes the minimum of several alternating repetitions to shed
//! scheduler noise. Exits non-zero when
//! `min(noop) > min(recording) * (1 + TOLERANCE)`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_core::trace::{NoopTracer, Tracer};
use adaptivefl_data::{Partition, SynthSpec};
use adaptivefl_trace::RecordingTracer;

const REPS: usize = 5;
const TOLERANCE: f64 = 0.02;

fn timed_run(tracer: Arc<dyn Tracer>) -> Duration {
    let cfg = SimConfig::quick_test(900);
    let mut spec = SynthSpec::test_spec(4);
    spec.input = (3, 8, 8);
    let mut sim = Simulation::prepare(&cfg, &spec, Partition::Dirichlet(0.5));
    sim.set_tracer(tracer);
    let start = Instant::now();
    let result = sim.run(MethodKind::AdaptiveFl);
    let elapsed = start.elapsed();
    assert!(!result.rounds.is_empty(), "run produced no rounds");
    elapsed
}

fn main() -> ExitCode {
    // Warm-up: fault in code and data paths before timing anything.
    timed_run(Arc::new(NoopTracer));

    let mut noop = Duration::MAX;
    let mut recording = Duration::MAX;
    for rep in 0..REPS {
        // Alternate so drift (thermal, noisy neighbours) hits both.
        let n = timed_run(Arc::new(NoopTracer));
        let r = timed_run(Arc::new(RecordingTracer::new()));
        noop = noop.min(n);
        recording = recording.min(r);
        println!(
            "rep {rep}: noop {:.1}ms, recording {:.1}ms",
            n.as_secs_f64() * 1e3,
            r.as_secs_f64() * 1e3
        );
    }

    let limit = recording.as_secs_f64() * (1.0 + TOLERANCE);
    println!(
        "min noop {:.1}ms vs min recording {:.1}ms (limit {:.1}ms)",
        noop.as_secs_f64() * 1e3,
        recording.as_secs_f64() * 1e3,
        limit * 1e3
    );
    if noop.as_secs_f64() > limit {
        eprintln!(
            "FAIL: disabled tracing is more than {:.0}% slower than an actively recording tracer",
            TOLERANCE * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("OK: NoopTracer overhead within tolerance");
    ExitCode::SUCCESS
}
