//! Property tests for the sweep's statistics primitives: degenerate
//! confidence intervals, exact permutation invariance, and the sign
//! test against a brute-force binomial reference.

use adaptivefl_bench::sweep::{SampleStats, SignTest};
use proptest::prelude::*;

/// Applies a drawn sequence of index swaps — a poor man's shuffle
/// that still reaches arbitrary permutations.
fn permute(mut xs: Vec<f64>, swaps: &[(usize, usize)]) -> Vec<f64> {
    let n = xs.len();
    if n > 0 {
        for &(a, b) in swaps {
            xs.swap(a % n, b % n);
        }
    }
    xs
}

/// Exact two-sided sign-test p-value by enumerating all `2^n`
/// equally likely sign patterns: `min(1, 2·P[X ≤ k])`.
fn exhaustive_p(k: usize, n: usize) -> f64 {
    assert!(n <= 12 && n > 0);
    let le_k = (0u32..(1u32 << n))
        .filter(|mask| (mask.count_ones() as usize) <= k)
        .count();
    (2.0 * le_k as f64 / (1u64 << n) as f64).min(1.0)
}

proptest! {
    /// Identical samples carry no spread: std = 0, zero-width CI,
    /// mean exactly the constant.
    #[test]
    fn constant_samples_have_zero_width_ci(
        value in -1e6f64..1e6,
        n in 1usize..40,
    ) {
        let s = SampleStats::from_samples(&vec![value; n]);
        prop_assert_eq!(s.n, n);
        prop_assert_eq!(s.mean, value);
        prop_assert_eq!(s.std, 0.0);
        prop_assert_eq!(s.ci95, 0.0);
    }

    /// Reordering samples changes nothing, bit for bit — the stats
    /// sort internally before any floating-point reduction.
    #[test]
    fn stats_are_exactly_permutation_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 0..24),
        swaps in prop::collection::vec((0usize..64, 0usize..64), 0..40),
    ) {
        let base = SampleStats::from_samples(&xs);
        let shuffled = SampleStats::from_samples(&permute(xs.clone(), &swaps));
        prop_assert_eq!(base.mean.to_bits(), shuffled.mean.to_bits());
        prop_assert_eq!(base.std.to_bits(), shuffled.std.to_bits());
        prop_assert_eq!(base.ci95.to_bits(), shuffled.ci95.to_bits());
    }

    /// The CI half-width is non-negative and grows with the spread's
    /// scale: scaling all samples by c scales std and ci by |c|.
    #[test]
    fn ci_scales_with_the_data(
        xs in prop::collection::vec(-1e3f64..1e3, 2..16),
        scale in 0.25f64..8.0,
    ) {
        let base = SampleStats::from_samples(&xs);
        prop_assert!(base.ci95 >= 0.0);
        let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
        let s = SampleStats::from_samples(&scaled);
        prop_assert!((s.std - base.std * scale).abs() <= 1e-9 * (1.0 + base.std * scale));
        prop_assert!((s.ci95 - base.ci95 * scale).abs() <= 1e-9 * (1.0 + base.ci95 * scale));
    }

    /// The closed-form sign-test p-value matches brute-force
    /// enumeration of all `2^n` sign patterns for every n ≤ 12.
    #[test]
    fn sign_test_matches_exhaustive_enumeration(
        signs in prop::collection::vec(0u8..2, 1..13),
    ) {
        let diffs: Vec<f64> = signs.iter().map(|s| if *s == 1 { 1.0 } else { -1.0 }).collect();
        let t = SignTest::from_diffs(&diffs);
        prop_assert_eq!(t.wins + t.losses, diffs.len());
        prop_assert_eq!(t.ties, 0);
        let reference = exhaustive_p(t.wins.min(t.losses), diffs.len());
        prop_assert!(
            (t.p - reference).abs() < 1e-12,
            "n={} k={} p={} ref={}", diffs.len(), t.wins.min(t.losses), t.p, reference
        );
    }

    /// Zero differences are ties: excluded from the test and never
    /// able to push p below what the non-tied pairs justify.
    #[test]
    fn ties_are_excluded(
        signs in prop::collection::vec(0u8..2, 1..10),
        zeros in 1usize..6,
    ) {
        let mut diffs: Vec<f64> = signs.iter().map(|s| if *s == 1 { 2.5 } else { -2.5 }).collect();
        let without = SignTest::from_diffs(&diffs);
        diffs.extend(std::iter::repeat_n(0.0, zeros));
        let with = SignTest::from_diffs(&diffs);
        prop_assert_eq!(with.wins, without.wins);
        prop_assert_eq!(with.losses, without.losses);
        prop_assert_eq!(with.ties, zeros);
        prop_assert!((with.p - without.p).abs() < 1e-15);
    }
}
