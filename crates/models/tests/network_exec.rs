//! Executable-network integration tests: blueprint/runtime consistency,
//! residual gradients, multi-exit training, and learnability.

use adaptivefl_models::{ModelConfig, Network, PruneSpec};
use adaptivefl_nn::layer::{Layer, LayerExt, ParamKind};
use adaptivefl_nn::loss::softmax_cross_entropy;
use adaptivefl_nn::metrics::accuracy;
use adaptivefl_nn::optim::Sgd;
use adaptivefl_tensor::{init, rng, Tensor};

/// Every family: the runtime network's parameter names/shapes must be
/// exactly the blueprint's shape table.
#[test]
fn runtime_params_match_blueprint_shapes() {
    let configs = [
        ModelConfig::vgg16_fast(10),
        ModelConfig::resnet18_fast(10),
        ModelConfig::mobilenet_v2_fast(10),
        ModelConfig::tiny(10),
    ];
    for cfg in configs {
        for spec in [PruneSpec::full(), PruneSpec::new(0.5, cfg.min_start_unit())] {
            let plan = cfg.plan(&spec);
            let bp = cfg.full_blueprint(&plan);
            let mut r = rng::seeded(1);
            let net = Network::build(&bp, &mut r);
            let mut runtime: Vec<(String, Vec<usize>)> = Vec::new();
            net.visit_params("", &mut |n: &str, _: ParamKind, v: &Tensor, _: &Tensor| {
                runtime.push((n.to_string(), v.shape().to_vec()));
            });
            let mut expected: Vec<(String, Vec<usize>)> =
                bp.shapes().into_iter().map(|(n, s, _)| (n, s)).collect();
            runtime.sort();
            expected.sort();
            assert_eq!(runtime, expected, "{:?} {:?}", cfg.kind, spec);
        }
    }
}

/// The cost model's parameter count must equal the instantiated
/// network's parameter count.
#[test]
fn cost_params_match_network_params() {
    for cfg in [
        ModelConfig::vgg16_fast(10),
        ModelConfig::resnet18_fast(10),
        ModelConfig::mobilenet_v2_fast(10),
        ModelConfig::tiny(10),
    ] {
        let plan = cfg.plan(&PruneSpec::new(0.66, cfg.min_start_unit()));
        let mut r = rng::seeded(2);
        let net = cfg.build(&plan, &mut r);
        assert_eq!(
            net.num_params() as u64,
            cfg.num_params(&plan),
            "{:?}",
            cfg.kind
        );
    }
}

/// Finite-difference gradient check through a ResNet (residual +
/// projection shortcut + BN path).
#[test]
fn resnet_gradient_matches_finite_differences() {
    let cfg = ModelConfig {
        kind: adaptivefl_models::ModelKind::ResNet18,
        input: (2, 4, 4),
        classes: 3,
        width_mult: 1.0 / 16.0,
    };
    let plan = cfg.plan(&PruneSpec::new(0.5, 2));
    let mut r = rng::seeded(3);
    let mut net = cfg.build(&plan, &mut r);
    let x = init::normal(&[2, 2, 4, 4], 1.0, &mut r);
    let labels = [0usize, 2];

    net.zero_grads();
    let logits = net.forward(x.clone(), true);
    let out = softmax_cross_entropy(&logits, &labels);
    let _ = net.backward(out.dlogits);

    // Collect analytic grads.
    let mut grads: Vec<(String, Tensor)> = Vec::new();
    net.visit_params("", &mut |n: &str, k: ParamKind, _: &Tensor, g: &Tensor| {
        if k == ParamKind::Weight {
            grads.push((n.to_string(), g.clone()));
        }
    });
    assert!(!grads.is_empty());

    // Perturb one weight entry in a handful of layers. BN batch
    // statistics make the function slightly non-local, so tolerance is
    // loose but the sign and magnitude must match.
    let eps = 5e-3f32;
    let mut checked = 0;
    for (name, g) in grads.iter().step_by(3).take(4) {
        let idx = g.numel() / 2;
        let ana = g.as_slice()[idx];
        let mut loss_at = |delta: f32| {
            net.visit_params_mut(
                "",
                &mut |n: &str, _: ParamKind, v: &mut Tensor, _: &mut Tensor| {
                    if n == name {
                        v.as_mut_slice()[idx] += delta;
                    }
                },
            );
            let l = softmax_cross_entropy(&net.forward(x.clone(), true), &labels).loss;
            net.visit_params_mut(
                "",
                &mut |n: &str, _: ParamKind, v: &mut Tensor, _: &mut Tensor| {
                    if n == name {
                        v.as_mut_slice()[idx] -= delta;
                    }
                },
            );
            l
        };
        let num = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
        assert!(
            (num - ana).abs() < 0.1 * (1.0 + ana.abs().max(num.abs())),
            "{name}[{idx}]: numeric {num} vs analytic {ana}"
        );
        checked += 1;
    }
    assert!(checked >= 3);
}

/// A TinyCnn must be able to overfit a small random batch — the
/// end-to-end sanity check that forward/backward/SGD compose.
#[test]
fn tiny_cnn_overfits_small_batch() {
    let cfg = ModelConfig::tiny(4);
    let mut r = rng::seeded(4);
    let mut net = cfg.build(&cfg.full_plan(), &mut r);
    // Structured task: each class shifts a different input channel
    // region so a conv+GAP model can separate them.
    let mut x = init::normal(&[16, 3, 16, 16], 0.3, &mut r);
    let labels: Vec<usize> = (0..16).map(|i| i % 4).collect();
    for (i, &y) in labels.iter().enumerate() {
        let base = i * 3 * 256 + (y % 3) * 256;
        let quadrant = y / 3; // class 3 uses channel 0 but offset region
        for j in 0..128 {
            x.as_mut_slice()[base + j + quadrant * 128] += 1.5;
        }
    }
    let mut opt = Sgd::new(0.05, 0.9);
    let mut last_acc = 0.0;
    for _ in 0..60 {
        net.zero_grads();
        let logits = net.forward(x.clone(), true);
        last_acc = accuracy(&logits, &labels);
        if last_acc == 1.0 {
            break;
        }
        let out = softmax_cross_entropy(&logits, &labels);
        let _ = net.backward(out.dlogits);
        opt.step(&mut net);
    }
    assert!(last_acc >= 0.9, "accuracy only {last_acc}");
}

/// Multi-exit forward/backward: every active exit produces logits and
/// receives gradients; trunk grads accumulate from all exits.
#[test]
fn multi_exit_training_works() {
    let cfg = ModelConfig::tiny(5);
    let plan = cfg.full_plan();
    let bp = cfg.blueprint(&plan, 3, true);
    let mut r = rng::seeded(5);
    let mut net = Network::build(&bp, &mut r);
    assert_eq!(net.exit_points(), vec![0, 1, 2]);

    let x = init::normal(&[4, 3, 16, 16], 1.0, &mut r);
    let labels = [0usize, 1, 2, 3];
    net.zero_grads();
    let outs = net.forward_multi(x, true);
    assert_eq!(outs.len(), 3);
    for (_, logits) in &outs {
        assert_eq!(logits.shape(), &[4, 5]);
    }
    let grads: Vec<(usize, Tensor)> = outs
        .iter()
        .map(|(e, logits)| (*e, softmax_cross_entropy(logits, &labels).dlogits))
        .collect();
    let dx = net.backward_multi(grads);
    assert_eq!(dx.shape(), &[4, 3, 16, 16]);
    assert!(dx.sq_norm() > 0.0);

    // The first conv must have received gradient from all three paths.
    let mut found = false;
    net.visit_params("", &mut |n: &str, _: ParamKind, _: &Tensor, g: &Tensor| {
        if n == "conv0.weight" {
            assert!(g.sq_norm() > 0.0);
            found = true;
        }
    });
    assert!(found);
}

/// Param maps round-trip through load for a pruned MobileNet (exercises
/// depthwise + inverted residual parameter naming).
#[test]
fn mobilenet_param_roundtrip() {
    let cfg = ModelConfig::mobilenet_v2_fast(6);
    let plan = cfg.plan(&PruneSpec::new(0.4, 4));
    let mut r = rng::seeded(6);
    let net = cfg.build(&plan, &mut r);
    let snap = net.param_map();
    let mut net2 = cfg.build(&plan, &mut rng::seeded(7));
    assert_ne!(net2.param_map(), snap);
    net2.load_param_map(&snap);
    assert_eq!(net2.param_map(), snap);
}
