//! Executable networks built from [`Blueprint`]s.

use std::collections::BTreeMap;

use adaptivefl_nn::layer::{Layer, ParamVisitor, ParamVisitorMut};
use adaptivefl_nn::layers::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
};
use adaptivefl_tensor::Tensor;
use rand::Rng;

use crate::block::{Block, Blueprint};

/// Dense or depthwise convolution kernel behind one `Node::Conv`.
enum ConvImpl {
    Dense(Conv2d),
    Depthwise(DepthwiseConv2d),
}

impl ConvImpl {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        match self {
            ConvImpl::Dense(c) => c.forward(x, train),
            ConvImpl::Depthwise(c) => c.forward(x, train),
        }
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        match self {
            ConvImpl::Dense(c) => c.backward(dy),
            ConvImpl::Depthwise(c) => c.backward(dy),
        }
    }

    fn visit_params(&self, prefix: &str, v: &mut dyn ParamVisitor) {
        match self {
            ConvImpl::Dense(c) => c.visit_params(prefix, v),
            ConvImpl::Depthwise(c) => c.visit_params(prefix, v),
        }
    }

    fn visit_params_mut(&mut self, prefix: &str, v: &mut dyn ParamVisitorMut) {
        match self {
            ConvImpl::Dense(c) => c.visit_params_mut(prefix, v),
            ConvImpl::Depthwise(c) => c.visit_params_mut(prefix, v),
        }
    }

    fn zero_grads(&mut self) {
        match self {
            ConvImpl::Dense(c) => c.zero_grads(),
            ConvImpl::Depthwise(c) => c.zero_grads(),
        }
    }
}

/// One runtime node, mirroring a [`Block`].
#[allow(clippy::large_enum_variant)] // nodes are built once per model, not stored in bulk
enum Node {
    Conv {
        name: String,
        conv: ConvImpl,
        bn: Option<BatchNorm2d>,
        relu: Option<Relu>,
    },
    Linear {
        name: String,
        fc: Linear,
        relu: Option<Relu>,
    },
    MaxPool(MaxPool2d),
    Gap(GlobalAvgPool),
    Flatten(Flatten),
    Residual {
        main: Seq,
        shortcut: Option<Seq>,
        relu: Relu,
    },
    LinearResidual {
        main: Seq,
    },
}

/// A sequence of nodes.
struct Seq {
    nodes: Vec<Node>,
}

impl Seq {
    fn build(blocks: &[Block], rng: &mut impl Rng) -> Self {
        Seq {
            nodes: blocks.iter().map(|b| Node::build(b, rng)).collect(),
        }
    }

    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let mut h = x;
        for n in &mut self.nodes {
            h = n.forward(h, train);
        }
        h
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let mut g = dy;
        for n in self.nodes.iter_mut().rev() {
            g = n.backward(g);
        }
        g
    }

    fn visit(&self, v: &mut dyn ParamVisitor) {
        for n in &self.nodes {
            n.visit(v);
        }
    }

    fn visit_mut(&mut self, v: &mut dyn ParamVisitorMut) {
        for n in &mut self.nodes {
            n.visit_mut(v);
        }
    }

    fn zero_grads(&mut self) {
        for n in &mut self.nodes {
            n.zero_grads();
        }
    }
}

impl Node {
    fn build(block: &Block, rng: &mut impl Rng) -> Self {
        match block {
            Block::Conv(c) => Node::Conv {
                name: c.name.clone(),
                conv: if c.depthwise {
                    assert_eq!(
                        c.in_c, c.out_c,
                        "depthwise conv {} needs in_c == out_c",
                        c.name
                    );
                    ConvImpl::Depthwise(DepthwiseConv2d::new(c.out_c, c.k, c.stride, c.pad, rng))
                } else {
                    ConvImpl::Dense(Conv2d::new(c.in_c, c.out_c, c.k, c.stride, c.pad, rng))
                },
                bn: c.bn.then(|| BatchNorm2d::new(c.out_c)),
                relu: c.relu.then(Relu::new),
            },
            Block::Linear(l) => Node::Linear {
                name: l.name.clone(),
                fc: Linear::new(l.in_f, l.out_f, rng),
                relu: l.relu.then(Relu::new),
            },
            Block::MaxPool(w) => Node::MaxPool(MaxPool2d::new(*w)),
            Block::GlobalAvgPool => Node::Gap(GlobalAvgPool::new()),
            Block::Flatten => Node::Flatten(Flatten::new()),
            Block::Residual { main, shortcut } => Node::Residual {
                main: Seq::build(main, rng),
                shortcut: shortcut.as_ref().map(|sc| Seq::build(sc, rng)),
                relu: Relu::new(),
            },
            Block::LinearResidual { main } => Node::LinearResidual {
                main: Seq::build(main, rng),
            },
        }
    }

    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        match self {
            Node::Conv { conv, bn, relu, .. } => {
                let mut h = conv.forward(x, train);
                if let Some(bn) = bn {
                    h = bn.forward(h, train);
                }
                if let Some(relu) = relu {
                    h = relu.forward(h, train);
                }
                h
            }
            Node::Linear { fc, relu, .. } => {
                let mut h = fc.forward(x, train);
                if let Some(relu) = relu {
                    h = relu.forward(h, train);
                }
                h
            }
            Node::MaxPool(p) => p.forward(x, train),
            Node::Gap(g) => g.forward(x, train),
            Node::Flatten(f) => f.forward(x, train),
            Node::Residual {
                main,
                shortcut,
                relu,
            } => {
                let skip = match shortcut {
                    Some(sc) => sc.forward(x.clone(), train),
                    None => x.clone(),
                };
                let mut h = main.forward(x, train);
                h.add_assign(&skip);
                relu.forward(h, train)
            }
            Node::LinearResidual { main } => {
                let mut h = main.forward(x.clone(), train);
                h.add_assign(&x);
                h
            }
        }
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        match self {
            Node::Conv { conv, bn, relu, .. } => {
                let mut g = dy;
                if let Some(relu) = relu {
                    g = relu.backward(g);
                }
                if let Some(bn) = bn {
                    g = bn.backward(g);
                }
                conv.backward(g)
            }
            Node::Linear { fc, relu, .. } => {
                let mut g = dy;
                if let Some(relu) = relu {
                    g = relu.backward(g);
                }
                fc.backward(g)
            }
            Node::MaxPool(p) => p.backward(dy),
            Node::Gap(g) => g.backward(dy),
            Node::Flatten(f) => f.backward(dy),
            Node::Residual {
                main,
                shortcut,
                relu,
            } => {
                let g = relu.backward(dy);
                let mut dx = main.backward(g.clone());
                let dskip = match shortcut {
                    Some(sc) => sc.backward(g),
                    None => g,
                };
                dx.add_assign(&dskip);
                dx
            }
            Node::LinearResidual { main } => {
                let mut dx = main.backward(dy.clone());
                dx.add_assign(&dy);
                dx
            }
        }
    }

    fn visit(&self, v: &mut dyn ParamVisitor) {
        match self {
            Node::Conv { name, conv, bn, .. } => {
                conv.visit_params(name, v);
                if let Some(bn) = bn {
                    bn.visit_params(&format!("{name}.bn"), v);
                }
            }
            Node::Linear { name, fc, .. } => fc.visit_params(name, v),
            Node::Residual { main, shortcut, .. } => {
                main.visit(v);
                if let Some(sc) = shortcut {
                    sc.visit(v);
                }
            }
            Node::LinearResidual { main } => main.visit(v),
            _ => {}
        }
    }

    fn visit_mut(&mut self, v: &mut dyn ParamVisitorMut) {
        match self {
            Node::Conv { name, conv, bn, .. } => {
                conv.visit_params_mut(name, v);
                if let Some(bn) = bn {
                    bn.visit_params_mut(&format!("{name}.bn"), v);
                }
            }
            Node::Linear { name, fc, .. } => fc.visit_params_mut(name, v),
            Node::Residual { main, shortcut, .. } => {
                main.visit_mut(v);
                if let Some(sc) = shortcut {
                    sc.visit_mut(v);
                }
            }
            Node::LinearResidual { main } => main.visit_mut(v),
            _ => {}
        }
    }

    fn zero_grads(&mut self) {
        match self {
            Node::Conv { conv, bn, .. } => {
                conv.zero_grads();
                if let Some(bn) = bn {
                    bn.zero_grads();
                }
            }
            Node::Linear { fc, .. } => fc.zero_grads(),
            Node::Residual { main, shortcut, .. } => {
                main.zero_grads();
                if let Some(sc) = shortcut {
                    sc.zero_grads();
                }
            }
            Node::LinearResidual { main } => main.zero_grads(),
            _ => {}
        }
    }
}

/// An executable network with trunk segments and one or more exit
/// heads, built from a [`Blueprint`].
///
/// As a plain [`Layer`], `forward`/`backward` use only the final exit;
/// ScaleFL-style multi-exit training uses
/// [`Network::forward_multi`] / [`Network::backward_multi`].
pub struct Network {
    segments: Vec<Seq>,
    /// `(segment index, head)` for each active exit, ascending.
    exits: Vec<(usize, Seq)>,
}

impl Network {
    /// Instantiates a blueprint with freshly initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if the blueprint is structurally invalid.
    pub fn build(bp: &Blueprint, rng: &mut impl Rng) -> Self {
        bp.validate();
        let segments = bp.segments.iter().map(|s| Seq::build(s, rng)).collect();
        let mut active = bp.active_exits.clone();
        active.sort_unstable();
        let exits = active
            .into_iter()
            .map(|e| (e, Seq::build(&bp.exits[e], rng)))
            .collect();
        Network { segments, exits }
    }

    /// Number of trunk segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Segment indices of the active exits, ascending.
    pub fn exit_points(&self) -> Vec<usize> {
        self.exits.iter().map(|(e, _)| *e).collect()
    }

    /// Runs the trunk, evaluating every active exit; returns
    /// `(segment index, logits)` per exit in ascending order.
    pub fn forward_multi(&mut self, x: Tensor, train: bool) -> Vec<(usize, Tensor)> {
        let mut out = Vec::with_capacity(self.exits.len());
        let mut h = x;
        for (i, seg) in self.segments.iter_mut().enumerate() {
            h = seg.forward(h, train);
            if let Some((_, head)) = self.exits.iter_mut().find(|(e, _)| *e == i) {
                out.push((i, head.forward(h.clone(), train)));
            }
        }
        out
    }

    /// Back-propagates per-exit logit gradients through the heads and
    /// the trunk; returns the gradient w.r.t. the network input.
    ///
    /// # Panics
    ///
    /// Panics if `exit_grads` names an inactive exit or misses the
    /// final exit, or if called without a training-mode forward.
    pub fn backward_multi(&mut self, exit_grads: Vec<(usize, Tensor)>) -> Tensor {
        let mut grads: BTreeMap<usize, Tensor> = exit_grads.into_iter().collect();
        let last = self.segments.len() - 1;
        assert!(grads.contains_key(&last), "final exit gradient is required");
        let mut g: Option<Tensor> = None;
        for i in (0..self.segments.len()).rev() {
            if let Some(dl) = grads.remove(&i) {
                let (_, head) = self
                    .exits
                    .iter_mut()
                    .find(|(e, _)| *e == i)
                    .unwrap_or_else(|| panic!("exit {i} is not active"));
                let ge = head.backward(dl);
                g = Some(match g {
                    Some(mut t) => {
                        t.add_assign(&ge);
                        t
                    }
                    None => ge,
                });
            }
            let cur = g.take().expect("gradient must flow from the last segment");
            g = Some(self.segments[i].backward(cur));
        }
        assert!(grads.is_empty(), "gradients left for unknown exits");
        g.expect("network has segments")
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Network({} segments, exits at {:?})",
            self.segments.len(),
            self.exit_points()
        )
    }
}

impl Layer for Network {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let mut outs = self.forward_multi(x, train);
        outs.pop().expect("network has a final exit").1
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        assert_eq!(
            self.exits.len(),
            1,
            "use backward_multi for multi-exit networks"
        );
        let last = self.segments.len() - 1;
        self.backward_multi(vec![(last, dy)])
    }

    fn visit_params(&self, _prefix: &str, v: &mut dyn ParamVisitor) {
        for seg in &self.segments {
            seg.visit(v);
        }
        for (_, head) in &self.exits {
            head.visit(v);
        }
    }

    fn visit_params_mut(&mut self, _prefix: &str, v: &mut dyn ParamVisitorMut) {
        for seg in &mut self.segments {
            seg.visit_mut(v);
        }
        for (_, head) in &mut self.exits {
            head.visit_mut(v);
        }
    }

    fn zero_grads(&mut self) {
        for seg in &mut self.segments {
            seg.zero_grads();
        }
        for (_, head) in &mut self.exits {
            head.zero_grads();
        }
    }
}
