//! Width and depth plans: how `(r_w, I)` becomes per-unit channel
//! counts.

use serde::{Deserialize, Serialize};

/// The paper's fine-grained pruning configuration: a width ratio `r_w`
/// and the index `I` of the last unit kept at full width (1-based, as in
/// the paper; `start_unit = 0` prunes every unit).
///
/// # Example
///
/// ```
/// use adaptivefl_models::PruneSpec;
///
/// let m1 = PruneSpec::new(0.66, 8);
/// assert_eq!(m1.scaled_width(512, 9), 338);
/// assert_eq!(m1.scaled_width(512, 8), 512); // unit 8 ≤ I stays full
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PruneSpec {
    /// Width ratio applied to units deeper than `start_unit`.
    pub r_w: f32,
    /// Units with 1-based index `≤ start_unit` keep full width
    /// (the paper's `I`).
    pub start_unit: usize,
}

impl PruneSpec {
    /// Creates a prune spec.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < r_w ≤ 1`.
    pub fn new(r_w: f32, start_unit: usize) -> Self {
        assert!(r_w > 0.0 && r_w <= 1.0, "r_w must be in (0, 1], got {r_w}");
        PruneSpec { r_w, start_unit }
    }

    /// The identity spec (full model, `r_w = 1`).
    pub fn full() -> Self {
        PruneSpec {
            r_w: 1.0,
            start_unit: 0,
        }
    }

    /// Returns `true` if this spec leaves the model unchanged.
    pub fn is_full(&self) -> bool {
        self.r_w >= 1.0
    }

    /// Channel count of a unit with base width `base` at 1-based index
    /// `unit`.
    pub fn scaled_width(&self, base: usize, unit: usize) -> usize {
        if unit <= self.start_unit || self.is_full() {
            base
        } else {
            scale_width(base, self.r_w)
        }
    }
}

/// Rounds a base width by a ratio, never below 1 channel.
pub fn scale_width(base: usize, ratio: f32) -> usize {
    (((base as f64) * (ratio as f64)).round() as usize).max(1)
}

/// Per-unit channel counts for one concrete submodel, derived from a
/// [`PruneSpec`] and the family's base widths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WidthPlan {
    channels: Vec<usize>,
}

impl WidthPlan {
    /// Builds a plan from base widths and a prune spec.
    pub fn from_spec(base: &[usize], spec: &PruneSpec) -> Self {
        WidthPlan {
            channels: base
                .iter()
                .enumerate()
                .map(|(i, &b)| spec.scaled_width(b, i + 1))
                .collect(),
        }
    }

    /// A full-width plan.
    pub fn full(base: &[usize]) -> Self {
        WidthPlan {
            channels: base.to_vec(),
        }
    }

    /// Builds a plan from explicit channel counts.
    pub fn from_channels(channels: Vec<usize>) -> Self {
        WidthPlan { channels }
    }

    /// Channel count of the 0-based unit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn width(&self, i: usize) -> usize {
        self.channels[i]
    }

    /// All channel counts.
    pub fn channels(&self) -> &[usize] {
        &self.channels
    }

    /// Number of prunable units.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` if the plan has no units.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Elementwise `≤` against another plan — the nesting property that
    /// makes prefix-slice extraction and aggregation valid.
    pub fn nested_in(&self, other: &WidthPlan) -> bool {
        self.len() == other.len()
            && self
                .channels
                .iter()
                .zip(&other.channels)
                .all(|(&a, &b)| a <= b)
    }
}

/// Depth selection for two-dimensional (ScaleFL-style) scaling: how many
/// trunk segments are kept, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthSpec {
    /// Number of trunk segments kept (≥ 1).
    pub segments: usize,
}

impl DepthSpec {
    /// Creates a depth spec keeping `segments` segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    pub fn new(segments: usize) -> Self {
        assert!(segments > 0, "a model needs at least one segment");
        DepthSpec { segments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VGG_BASE: &[usize] = &[
        64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512, 4096, 4096,
    ];

    #[test]
    fn full_spec_keeps_everything() {
        let plan = WidthPlan::from_spec(VGG_BASE, &PruneSpec::full());
        assert_eq!(plan.channels(), VGG_BASE);
    }

    #[test]
    fn paper_m_level_widths() {
        // M-level: r_w = 0.66, I = 8 → units 9.. pruned.
        let plan = WidthPlan::from_spec(VGG_BASE, &PruneSpec::new(0.66, 8));
        assert_eq!(plan.width(7), 512); // unit 8 (1-based) kept
        assert_eq!(plan.width(8), 338); // unit 9 pruned
        assert_eq!(plan.width(13), 2703); // fc1 pruned
    }

    #[test]
    fn smaller_start_unit_prunes_more() {
        let p8 = WidthPlan::from_spec(VGG_BASE, &PruneSpec::new(0.4, 8));
        let p4 = WidthPlan::from_spec(VGG_BASE, &PruneSpec::new(0.4, 4));
        assert!(p4.nested_in(&p8));
        assert!(!p8.nested_in(&p4));
        let sum8: usize = p8.channels().iter().sum();
        let sum4: usize = p4.channels().iter().sum();
        assert!(sum4 < sum8);
    }

    #[test]
    fn nesting_across_levels() {
        let full = WidthPlan::full(VGG_BASE);
        let m = WidthPlan::from_spec(VGG_BASE, &PruneSpec::new(0.66, 8));
        let s = WidthPlan::from_spec(VGG_BASE, &PruneSpec::new(0.40, 8));
        assert!(s.nested_in(&m));
        assert!(m.nested_in(&full));
        assert!(s.nested_in(&full));
    }

    #[test]
    fn scale_width_never_zero() {
        assert_eq!(scale_width(1, 0.1), 1);
        assert_eq!(scale_width(512, 0.66), 338);
        assert_eq!(scale_width(512, 0.40), 205);
    }

    #[test]
    #[should_panic(expected = "r_w must be in")]
    fn rejects_zero_ratio() {
        PruneSpec::new(0.0, 0);
    }
}
