//! Analytic cost model: exact parameter and FLOP (multiply-accumulate)
//! counts for a blueprint, used to regenerate Table 1 and to drive the
//! device latency model.

use crate::block::{Block, Blueprint};

/// Symbolic activation shape while walking a blueprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Act {
    /// Spatial feature map `(channels, h, w)`.
    Map(usize, usize, usize),
    /// Flat feature vector.
    Vec(usize),
}

/// Cost of one model: parameters and multiply-accumulate operations for
/// a single input sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total parameter elements (incl. biases and BN parameters).
    pub params: u64,
    /// Multiply-accumulate operations per sample (the paper's #FLOPS
    /// column counts MACs).
    pub macs: u64,
}

impl Cost {
    fn add(&mut self, params: u64, macs: u64) {
        self.params += params;
        self.macs += macs;
    }
}

fn walk(blocks: &[Block], act: Act, cost: &mut Cost) -> Act {
    let mut a = act;
    for b in blocks {
        a = step(b, a, cost);
    }
    a
}

fn step(block: &Block, act: Act, cost: &mut Cost) -> Act {
    match block {
        Block::Conv(c) => {
            let (in_c, h, w) = match act {
                Act::Map(ch, h, w) => (ch, h, w),
                Act::Vec(_) => panic!("conv {} applied to flat activation", c.name),
            };
            assert_eq!(in_c, c.in_c, "conv {} input channel mismatch", c.name);
            let oh = (h + 2 * c.pad - c.k) / c.stride + 1;
            let ow = (w + 2 * c.pad - c.k) / c.stride + 1;
            let per_pixel = if c.depthwise {
                c.out_c * c.k * c.k
            } else {
                c.out_c * c.in_c * c.k * c.k
            };
            cost.add(c.num_params() as u64, per_pixel as u64 * (oh * ow) as u64);
            Act::Map(c.out_c, oh, ow)
        }
        Block::Linear(l) => {
            let in_f = match act {
                Act::Vec(f) => f,
                Act::Map(c, h, w) => c * h * w, // implicit flatten tolerated
            };
            assert_eq!(in_f, l.in_f, "linear {} input width mismatch", l.name);
            cost.add(l.num_params() as u64, (l.in_f * l.out_f) as u64);
            Act::Vec(l.out_f)
        }
        Block::MaxPool(win) => match act {
            Act::Map(c, h, w) => {
                assert!(h % win == 0 && w % win == 0, "pool window must divide map");
                Act::Map(c, h / win, w / win)
            }
            Act::Vec(_) => panic!("pool applied to flat activation"),
        },
        Block::GlobalAvgPool => match act {
            Act::Map(c, _, _) => Act::Vec(c),
            Act::Vec(_) => panic!("global pool applied to flat activation"),
        },
        Block::Flatten => match act {
            Act::Map(c, h, w) => Act::Vec(c * h * w),
            Act::Vec(f) => Act::Vec(f),
        },
        Block::Residual { main, shortcut } => {
            let out = walk(main, act, cost);
            if let Some(sc) = shortcut {
                let sc_out = walk(sc, act, cost);
                assert_eq!(sc_out, out, "residual branch shape mismatch");
            }
            out
        }
        Block::LinearResidual { main } => {
            let out = walk(main, act, cost);
            assert_eq!(out, act, "linear residual must preserve shape");
            out
        }
    }
}

/// Computes the cost of a blueprint for the given input `(c, h, w)`.
///
/// Also validates all inter-block shape constraints as a side effect,
/// so every test that counts costs doubles as an architecture check.
///
/// # Panics
///
/// Panics if the blueprint's blocks are not shape-consistent.
pub fn cost_of(bp: &Blueprint, input: (usize, usize, usize)) -> Cost {
    let mut cost = Cost::default();
    let mut act = Act::Map(input.0, input.1, input.2);
    let mut seg_out = Vec::with_capacity(bp.segments.len());
    for seg in &bp.segments {
        act = walk(seg, act, &mut cost);
        seg_out.push(act);
    }
    for &e in &bp.active_exits {
        walk(&bp.exits[e], seg_out[e], &mut cost);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{ConvSpec, LinearSpec};

    #[test]
    fn cost_of_simple_conv_net() {
        let bp = Blueprint {
            segments: vec![vec![
                Block::Conv(ConvSpec::dense("c0", 3, 8, 3, 1, 1, false, true)),
                Block::MaxPool(2),
                Block::GlobalAvgPool,
            ]],
            exits: vec![vec![Block::Linear(LinearSpec {
                name: "fc".into(),
                in_f: 8,
                out_f: 10,
                relu: false,
            })]],
            active_exits: vec![0],
        };
        let c = cost_of(&bp, (3, 8, 8));
        // Conv: 8·3·9 params + 8 bias; MACs 216·64. FC: 90 params, 80 MACs.
        assert_eq!(c.params, (8 * 3 * 9 + 8 + 8 * 10 + 10) as u64);
        assert_eq!(c.macs, (8 * 3 * 9 * 64 + 80) as u64);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn detects_inconsistent_channels() {
        let bp = Blueprint {
            segments: vec![vec![
                // wrong: input has 3 channels, spec says 4
                Block::Conv(ConvSpec::dense("c0", 4, 8, 3, 1, 1, false, true)),
                Block::GlobalAvgPool,
            ]],
            exits: vec![vec![Block::Linear(LinearSpec {
                name: "fc".into(),
                in_f: 8,
                out_f: 10,
                relu: false,
            })]],
            active_exits: vec![0],
        };
        cost_of(&bp, (3, 8, 8));
    }
}
