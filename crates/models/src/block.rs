//! Architecture blueprints: named block specifications from which both
//! the executable network and the parameter shape table are derived.

use adaptivefl_nn::ParamKind;
use serde::{Deserialize, Serialize};

/// Specification of a convolution (optionally followed by batch-norm
/// and ReLU, the ubiquitous conv-bn-relu unit).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Absolute parameter-name prefix, e.g. `"features.3"`.
    pub name: String,
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Square kernel size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Whether a batch-norm follows the convolution.
    pub bn: bool,
    /// Whether a ReLU follows.
    pub relu: bool,
    /// Depthwise convolution (one filter per channel; requires
    /// `in_c == out_c`, weight shape `[c, 1, k, k]`).
    #[serde(default)]
    pub depthwise: bool,
}

impl ConvSpec {
    /// Convenience constructor for a dense conv-bn-relu unit.
    #[allow(clippy::too_many_arguments)] // mirrors the conv hyper-parameter list
    pub fn dense(
        name: impl Into<String>,
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bn: bool,
        relu: bool,
    ) -> Self {
        ConvSpec {
            name: name.into(),
            in_c,
            out_c,
            k,
            stride,
            pad,
            bn,
            relu,
            depthwise: false,
        }
    }

    /// Convenience constructor for a depthwise conv-bn-relu unit.
    pub fn depthwise(
        name: impl Into<String>,
        c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bn: bool,
        relu: bool,
    ) -> Self {
        ConvSpec {
            name: name.into(),
            in_c: c,
            out_c: c,
            k,
            stride,
            pad,
            bn,
            relu,
            depthwise: true,
        }
    }

    /// Number of weight elements (excludes bias and BN).
    fn weight_numel(&self) -> usize {
        if self.depthwise {
            self.out_c * self.k * self.k
        } else {
            self.out_c * self.in_c * self.k * self.k
        }
    }

    /// Parameter count of this spec (conv weight+bias, plus BN γ/β and
    /// running stats when present; running stats are counted because
    /// they are transmitted in federated exchange).
    pub fn num_params(&self) -> usize {
        let conv = self.weight_numel() + self.out_c;
        let bn = if self.bn { 4 * self.out_c } else { 0 };
        conv + bn
    }

    /// Trainable parameter count (excludes BN running statistics).
    pub fn num_trainable(&self) -> usize {
        let conv = self.weight_numel() + self.out_c;
        let bn = if self.bn { 2 * self.out_c } else { 0 };
        conv + bn
    }
}

/// Specification of a fully connected layer (optionally with ReLU).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearSpec {
    /// Absolute parameter-name prefix, e.g. `"classifier.0"`.
    pub name: String,
    /// Input features.
    pub in_f: usize,
    /// Output features.
    pub out_f: usize,
    /// Whether a ReLU follows.
    pub relu: bool,
}

impl LinearSpec {
    /// Parameter count (weight + bias).
    pub fn num_params(&self) -> usize {
        self.out_f * self.in_f + self.out_f
    }
}

/// One architectural block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Block {
    /// Convolution (with optional BN/ReLU).
    Conv(ConvSpec),
    /// Fully connected layer.
    Linear(LinearSpec),
    /// Max pooling with the given window (= stride).
    MaxPool(usize),
    /// Global average pooling to `[n, c]`.
    GlobalAvgPool,
    /// Flatten to `[n, features]`.
    Flatten,
    /// Residual block: `relu(main(x) + shortcut(x))`, where the
    /// shortcut is identity when `None`.
    Residual {
        /// The main (residual) path.
        main: Vec<Block>,
        /// Optional projection shortcut (1×1 conv, used when channel
        /// counts or stride change).
        shortcut: Option<Vec<Block>>,
    },
    /// Additive skip without trailing ReLU (MobileNetV2-style linear
    /// bottleneck); identity shortcut only.
    LinearResidual {
        /// The main (bottleneck) path.
        main: Vec<Block>,
    },
}

impl Block {
    /// Visits every `(name, shape, kind)` parameter of this block.
    pub fn visit_shapes(&self, f: &mut impl FnMut(String, Vec<usize>, ParamKind)) {
        match self {
            Block::Conv(c) => {
                let w_shape = if c.depthwise {
                    vec![c.out_c, 1, c.k, c.k]
                } else {
                    vec![c.out_c, c.in_c, c.k, c.k]
                };
                f(format!("{}.weight", c.name), w_shape, ParamKind::Weight);
                f(format!("{}.bias", c.name), vec![c.out_c], ParamKind::Bias);
                if c.bn {
                    f(
                        format!("{}.bn.gamma", c.name),
                        vec![c.out_c],
                        ParamKind::Gamma,
                    );
                    f(
                        format!("{}.bn.beta", c.name),
                        vec![c.out_c],
                        ParamKind::Beta,
                    );
                    f(
                        format!("{}.bn.running_mean", c.name),
                        vec![c.out_c],
                        ParamKind::RunningMean,
                    );
                    f(
                        format!("{}.bn.running_var", c.name),
                        vec![c.out_c],
                        ParamKind::RunningVar,
                    );
                }
            }
            Block::Linear(l) => {
                f(
                    format!("{}.weight", l.name),
                    vec![l.out_f, l.in_f],
                    ParamKind::Weight,
                );
                f(format!("{}.bias", l.name), vec![l.out_f], ParamKind::Bias);
            }
            Block::Residual { main, shortcut } => {
                for b in main {
                    b.visit_shapes(f);
                }
                if let Some(sc) = shortcut {
                    for b in sc {
                        b.visit_shapes(f);
                    }
                }
            }
            Block::LinearResidual { main } => {
                for b in main {
                    b.visit_shapes(f);
                }
            }
            Block::MaxPool(_) | Block::GlobalAvgPool | Block::Flatten => {}
        }
    }
}

/// A complete architecture: trunk segments with an exit head attached
/// after each segment. The exit after the last kept segment is the
/// model's classifier; earlier exits exist only in ScaleFL-style
/// multi-exit submodels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Blueprint {
    /// Trunk segments, executed in order.
    pub segments: Vec<Vec<Block>>,
    /// `exits[i]` is the classifier head attached after `segments[i]`.
    /// Must have the same length as `segments`; entries for segments
    /// without a usable exit are empty and must not be selected.
    pub exits: Vec<Vec<Block>>,
    /// Which exits are actually instantiated in this model (always
    /// includes the last kept segment).
    pub active_exits: Vec<usize>,
}

impl Blueprint {
    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if exit bookkeeping is inconsistent.
    pub fn validate(&self) {
        assert_eq!(self.segments.len(), self.exits.len(), "exit per segment");
        assert!(!self.segments.is_empty(), "blueprint needs segments");
        assert!(!self.active_exits.is_empty(), "blueprint needs an exit");
        for &e in &self.active_exits {
            assert!(e < self.segments.len(), "active exit {e} out of range");
            assert!(!self.exits[e].is_empty(), "active exit {e} has no head");
        }
        let last = *self.active_exits.iter().max().expect("non-empty");
        assert_eq!(
            last,
            self.segments.len() - 1,
            "final exit must follow the last segment"
        );
    }

    /// Visits every `(name, shape, kind)` parameter of the whole model
    /// (trunk segments plus the active exits), in definition order.
    pub fn visit_shapes(&self, f: &mut impl FnMut(String, Vec<usize>, ParamKind)) {
        for seg in &self.segments {
            for b in seg {
                b.visit_shapes(f);
            }
        }
        for &e in &self.active_exits {
            for b in &self.exits[e] {
                b.visit_shapes(f);
            }
        }
    }

    /// Collects the parameter shape table.
    pub fn shapes(&self) -> Vec<(String, Vec<usize>, ParamKind)> {
        let mut out = Vec::new();
        self.visit_shapes(&mut |n, s, k| out.push((n, s, k)));
        out
    }

    /// Total parameter elements (including BN running statistics, which
    /// are part of the transmitted model).
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_shapes(&mut |_, s, _| n += s.iter().product::<usize>());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(name: &str, in_c: usize, out_c: usize, bn: bool) -> Block {
        Block::Conv(ConvSpec::dense(name, in_c, out_c, 3, 1, 1, bn, true))
    }

    #[test]
    fn conv_param_count() {
        if let Block::Conv(c) = conv("c", 3, 8, true) {
            assert_eq!(c.num_params(), 8 * 3 * 9 + 8 + 4 * 8);
            assert_eq!(c.num_trainable(), 8 * 3 * 9 + 8 + 2 * 8);
        } else {
            unreachable!()
        }
    }

    #[test]
    fn shapes_include_bn_stats() {
        let b = conv("features.0", 3, 4, true);
        let mut names = Vec::new();
        b.visit_shapes(&mut |n, _, _| names.push(n));
        assert_eq!(
            names,
            vec![
                "features.0.weight",
                "features.0.bias",
                "features.0.bn.gamma",
                "features.0.bn.beta",
                "features.0.bn.running_mean",
                "features.0.bn.running_var",
            ]
        );
    }

    #[test]
    fn residual_recurses_into_shortcut() {
        let b = Block::Residual {
            main: vec![conv("m.0", 4, 8, false)],
            shortcut: Some(vec![conv("sc", 4, 8, false)]),
        };
        let mut count = 0;
        b.visit_shapes(&mut |_, _, _| count += 1);
        assert_eq!(count, 4); // two convs × (weight, bias)
    }

    #[test]
    #[should_panic(expected = "final exit")]
    fn blueprint_requires_final_exit() {
        let bp = Blueprint {
            segments: vec![vec![conv("a", 3, 4, false)], vec![conv("b", 4, 4, false)]],
            exits: vec![
                vec![Block::Linear(LinearSpec {
                    name: "exit0".into(),
                    in_f: 4,
                    out_f: 10,
                    relu: false,
                })],
                vec![],
            ],
            active_exits: vec![0],
        };
        bp.validate();
    }
}
