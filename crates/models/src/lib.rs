//! Width-configurable model zoo for the AdaptiveFL reproduction.
//!
//! Every architecture (VGG16, ResNet18, MobileNetV2, and a fast
//! `TinyCnn`) is described by a [`Blueprint`]: a list
//! of named block specifications generated from a [`WidthPlan`]. From
//! one blueprint the crate derives, consistently by construction:
//!
//! * an executable [`Network`] (forward/backward),
//! * the named parameter shape table used by the federated engine for
//!   nested extraction and aggregation,
//! * exact `#params` / `#FLOPs` counts (Table 1 of the paper).
//!
//! The paper's fine-grained width-wise pruning maps onto
//! [`PruneSpec`]`{ r_w, start_unit }`: prunable units (conv layers /
//! residual blocks) with index `> start_unit` keep a `r_w` fraction of
//! their channels, everything up to and including `start_unit` stays at
//! full width.
//!
//! # Example
//!
//! ```
//! use adaptivefl_models::{ModelConfig, ModelKind, PruneSpec};
//!
//! let cfg = ModelConfig::vgg16_cifar();
//! let full = cfg.plan(&PruneSpec::full());
//! let small = cfg.plan(&PruneSpec::new(0.40, 8));
//! assert!(cfg.num_params(&small) < cfg.num_params(&full) / 3);
//! ```

pub mod block;
pub mod config;
pub mod cost;
pub mod families;
pub mod network;
pub mod plan;

pub use block::{Block, Blueprint, ConvSpec, LinearSpec};
pub use config::{ModelConfig, ModelKind};
pub use network::Network;
pub use plan::{DepthSpec, PruneSpec, WidthPlan};
