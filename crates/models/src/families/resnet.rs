//! ResNet18 (CIFAR-style stem) with width pruning at basic-block
//! granularity.
//!
//! Prunable units (1-based): unit 1 is the stem conv, units 2–9 are the
//! eight basic blocks (each block's two convs share the unit width).

use crate::block::{Block, Blueprint, ConvSpec, LinearSpec};
use crate::plan::WidthPlan;

/// Base widths: stem + 8 basic blocks.
pub const BASE_WIDTHS: [usize; 9] = [64, 64, 64, 128, 128, 256, 256, 512, 512];

/// Number of trunk segments (stem+stage1, stage2, stage3, stage4).
pub const MAX_DEPTH: usize = 4;

/// Stride of each basic block (1-based blocks 1..=8).
const BLOCK_STRIDES: [usize; 8] = [1, 1, 2, 1, 2, 1, 2, 1];

/// Blocks per segment: segment 0 holds the stem and blocks 1–2.
const SEG_BLOCKS: [std::ops::Range<usize>; 4] = [0..2, 2..4, 4..6, 6..8];

fn basic_block(name: &str, in_c: usize, out_c: usize, stride: usize) -> Block {
    let main = vec![
        Block::Conv(ConvSpec::dense(
            format!("{name}.conv1"),
            in_c,
            out_c,
            3,
            stride,
            1,
            true,
            true,
        )),
        Block::Conv(ConvSpec::dense(
            format!("{name}.conv2"),
            out_c,
            out_c,
            3,
            1,
            1,
            true,
            false,
        )),
    ];
    let shortcut = (stride != 1 || in_c != out_c).then(|| {
        vec![Block::Conv(ConvSpec::dense(
            format!("{name}.down"),
            in_c,
            out_c,
            1,
            stride,
            0,
            true,
            false,
        ))]
    });
    Block::Residual { main, shortcut }
}

/// Builds a ResNet18 blueprint.
///
/// # Panics
///
/// Panics if `plan` does not have 9 units or `depth` is out of range.
pub fn resnet18(
    input: (usize, usize, usize),
    classes: usize,
    plan: &WidthPlan,
    depth: usize,
    aux_exits: bool,
) -> Blueprint {
    assert_eq!(plan.len(), BASE_WIDTHS.len(), "ResNet18 plan needs 9 units");
    assert!((1..=MAX_DEPTH).contains(&depth), "depth must be 1..=4");
    let (in_c, _, _) = input;

    let mut segments = Vec::with_capacity(depth);
    let mut exits = Vec::with_capacity(depth);
    let mut prev_c = plan.width(0);

    for (si, range) in SEG_BLOCKS.iter().take(depth).enumerate() {
        let mut seg = Vec::new();
        if si == 0 {
            seg.push(Block::Conv(ConvSpec::dense(
                "stem", in_c, prev_c, 3, 1, 1, true, true,
            )));
        }
        for b in range.clone() {
            let out_c = plan.width(b + 1);
            seg.push(basic_block(
                &format!("layer{b}"),
                prev_c,
                out_c,
                BLOCK_STRIDES[b],
            ));
            prev_c = out_c;
        }
        segments.push(seg);

        // The name "classifier" is reserved for the family's true final
        // segment so depth-truncated submodels share their exit head with
        // the full multi-exit model.
        let head_name = if si + 1 == MAX_DEPTH {
            "classifier".to_string()
        } else {
            format!("exit{si}.fc")
        };
        exits.push(vec![
            Block::GlobalAvgPool,
            Block::Linear(LinearSpec {
                name: head_name,
                in_f: prev_c,
                out_f: classes,
                relu: false,
            }),
        ]);
    }

    let active_exits = if aux_exits {
        (0..depth).collect()
    } else {
        vec![depth - 1]
    };
    let bp = Blueprint {
        segments,
        exits,
        active_exits,
    };
    bp.validate();
    bp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_of;
    use crate::plan::{PruneSpec, WidthPlan};

    #[test]
    fn full_resnet18_param_count_is_standard() {
        // CIFAR ResNet18 ≈ 11.17M trainable params; ours counts BN
        // running stats too (+~0.02M).
        let plan = WidthPlan::full(&BASE_WIDTHS);
        let bp = resnet18((3, 32, 32), 10, &plan, 4, false);
        let c = cost_of(&bp, (3, 32, 32));
        let m = c.params as f64 / 1e6;
        assert!((m - 11.19).abs() < 0.15, "params {m}M");
    }

    #[test]
    fn pruned_plan_shrinks_model() {
        let full = WidthPlan::full(&BASE_WIDTHS);
        let half = WidthPlan::from_spec(&BASE_WIDTHS, &PruneSpec::new(0.5, 0));
        let cf = cost_of(&resnet18((3, 32, 32), 10, &full, 4, false), (3, 32, 32));
        let ch = cost_of(&resnet18((3, 32, 32), 10, &half, 4, false), (3, 32, 32));
        let ratio = ch.params as f64 / cf.params as f64;
        assert!((ratio - 0.25).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn boundary_block_gets_projection_shortcut() {
        // Pruning from unit 5 on makes block 4→5 change width, which
        // must introduce a projection shortcut; cost_of validates the
        // resulting shapes.
        let plan = WidthPlan::from_spec(&BASE_WIDTHS, &PruneSpec::new(0.4, 4));
        let bp = resnet18((3, 32, 32), 10, &plan, 4, false);
        let _ = cost_of(&bp, (3, 32, 32));
        assert!(bp
            .shapes()
            .iter()
            .any(|(n, _, _)| n == "layer3.down.weight"));
    }

    #[test]
    fn depth_two_has_two_segments() {
        let plan = WidthPlan::full(&BASE_WIDTHS);
        let bp = resnet18((3, 32, 32), 10, &plan, 2, true);
        assert_eq!(bp.segments.len(), 2);
        assert_eq!(bp.active_exits, vec![0, 1]);
        let _ = cost_of(&bp, (3, 32, 32));
    }
}
