//! VGG16 with a CIFAR-style two-4096-FC classifier — the architecture
//! of the paper's Table 1.
//!
//! Prunable units (1-based, the index space of the paper's `I`):
//! units 1–13 are the conv layers, units 14–15 are the two hidden FC
//! layers. The output classifier layer is never pruned.

use crate::block::{Block, Blueprint, ConvSpec, LinearSpec};
use crate::plan::WidthPlan;

/// Conv layers per stage; a 2×2 max-pool follows each stage while the
/// spatial size allows it.
pub const STAGE_CONVS: [usize; 5] = [2, 2, 3, 3, 3];

/// Base channel widths of the 13 conv units followed by the 2 hidden FC
/// units.
pub const BASE_WIDTHS: [usize; 15] = [
    64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512, 4096, 4096,
];

/// Number of trunk segments (one per conv stage).
pub const MAX_DEPTH: usize = 5;

/// Builds a VGG16 blueprint.
///
/// * `input` — `(channels, h, w)` of the input image.
/// * `classes` — output classes.
/// * `plan` — widths of the 15 prunable units.
/// * `depth` — trunk segments kept (1..=5); the two FC units exist only
///   at full depth.
/// * `aux_exits` — instantiate a GAP+Linear exit after every kept
///   segment (ScaleFL).
/// * `bn` — attach batch-norm to every conv (the paper's Table 1 counts
///   match `bn = false`).
///
/// # Panics
///
/// Panics if `plan` does not have 15 units or `depth` is out of range.
#[allow(clippy::too_many_arguments)]
pub fn vgg16(
    input: (usize, usize, usize),
    classes: usize,
    plan: &WidthPlan,
    depth: usize,
    aux_exits: bool,
    bn: bool,
) -> Blueprint {
    assert_eq!(plan.len(), BASE_WIDTHS.len(), "VGG16 plan needs 15 units");
    assert!((1..=MAX_DEPTH).contains(&depth), "depth must be 1..=5");

    let (in_c, mut h, mut w) = input;
    let mut segments = Vec::with_capacity(depth);
    let mut exits = Vec::with_capacity(depth);
    let mut prev_c = in_c;
    let mut unit = 0usize; // 0-based index into the plan

    for (stage, &n_convs) in STAGE_CONVS.iter().take(depth).enumerate() {
        let mut seg = Vec::new();
        for _ in 0..n_convs {
            let out_c = plan.width(unit);
            seg.push(Block::Conv(ConvSpec::dense(
                format!("features.{unit}"),
                prev_c,
                out_c,
                3,
                1,
                1,
                bn,
                true,
            )));
            prev_c = out_c;
            unit += 1;
        }
        if h >= 2 && w >= 2 && h % 2 == 0 && w % 2 == 0 {
            seg.push(Block::MaxPool(2));
            h /= 2;
            w /= 2;
        }
        segments.push(seg);

        let is_last = stage + 1 == depth;
        if is_last && depth == MAX_DEPTH {
            // Full-depth classifier: flatten + fc1 + fc2 + output.
            let flat = prev_c * h * w;
            let fc1 = plan.width(13);
            let fc2 = plan.width(14);
            exits.push(vec![
                Block::Flatten,
                Block::Linear(LinearSpec {
                    name: "classifier.0".into(),
                    in_f: flat,
                    out_f: fc1,
                    relu: true,
                }),
                Block::Linear(LinearSpec {
                    name: "classifier.1".into(),
                    in_f: fc1,
                    out_f: fc2,
                    relu: true,
                }),
                Block::Linear(LinearSpec {
                    name: "classifier.2".into(),
                    in_f: fc2,
                    out_f: classes,
                    relu: false,
                }),
            ]);
        } else {
            exits.push(vec![
                Block::GlobalAvgPool,
                Block::Linear(LinearSpec {
                    name: format!("exit{stage}.fc"),
                    in_f: prev_c,
                    out_f: classes,
                    relu: false,
                }),
            ]);
        }
    }

    let active_exits = if aux_exits {
        (0..depth).collect()
    } else {
        vec![depth - 1]
    };
    let bp = Blueprint {
        segments,
        exits,
        active_exits,
    };
    bp.validate();
    bp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_of;
    use crate::plan::PruneSpec;

    fn full_plan() -> WidthPlan {
        WidthPlan::full(&BASE_WIDTHS)
    }

    #[test]
    fn full_vgg16_matches_paper_table1_l1() {
        // Paper Table 1: L1 has 33.65M params and 333.22M FLOPs.
        let bp = vgg16((3, 32, 32), 10, &full_plan(), 5, false, false);
        let c = cost_of(&bp, (3, 32, 32));
        let params_m = c.params as f64 / 1e6;
        let macs_m = c.macs as f64 / 1e6;
        assert!((params_m - 33.65).abs() < 0.05, "params {params_m}M");
        assert!((macs_m - 333.22).abs() < 1.5, "macs {macs_m}M");
    }

    #[test]
    fn m1_ratio_matches_paper() {
        // M1: r_w = 0.66, I = 8 → 16.81M params (ratio 0.50).
        let plan = WidthPlan::from_spec(&BASE_WIDTHS, &PruneSpec::new(0.66, 8));
        let bp = vgg16((3, 32, 32), 10, &plan, 5, false, false);
        let c = cost_of(&bp, (3, 32, 32));
        let ratio = c.params as f64 / 33.65e6;
        assert!((ratio - 0.50).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn s1_ratio_matches_paper() {
        // S1: r_w = 0.40, I = 8 → 8.39M params (ratio 0.25).
        let plan = WidthPlan::from_spec(&BASE_WIDTHS, &PruneSpec::new(0.40, 8));
        let bp = vgg16((3, 32, 32), 10, &plan, 5, false, false);
        let c = cost_of(&bp, (3, 32, 32));
        let ratio = c.params as f64 / 33.65e6;
        assert!((ratio - 0.25).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn small_input_skips_late_pools() {
        // 16×16 input: only 4 pools fit; the architecture must still
        // be shape-consistent (cost_of validates).
        let bp = vgg16((3, 16, 16), 10, &full_plan(), 5, false, false);
        let _ = cost_of(&bp, (3, 16, 16));
    }

    #[test]
    fn aux_exits_add_heads() {
        let bp = vgg16((3, 32, 32), 10, &full_plan(), 5, true, false);
        assert_eq!(bp.active_exits, vec![0, 1, 2, 3, 4]);
        let plain = vgg16((3, 32, 32), 10, &full_plan(), 5, false, false);
        assert!(bp.num_params() > plain.num_params());
    }

    #[test]
    fn truncated_depth_uses_gap_head() {
        let bp = vgg16((3, 32, 32), 10, &full_plan(), 3, false, false);
        assert_eq!(bp.segments.len(), 3);
        // No classifier.* params at reduced depth.
        assert!(bp
            .shapes()
            .iter()
            .all(|(n, _, _)| !n.starts_with("classifier")));
    }
}
