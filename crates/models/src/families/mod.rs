//! Architecture families: VGG16, ResNet18, MobileNetV2 and the fast
//! `TinyCnn` used by reduced-scale experiments.
//!
//! Each family is a function from `(config, width plan, depth, aux
//! exits)` to a [`Blueprint`](crate::block::Blueprint); the blueprint is
//! the single source of truth for the executable network, the parameter
//! shape table, and the cost model.

pub mod mobilenet;
pub mod resnet;
pub mod tiny;
pub mod vgg;

pub use mobilenet::mobilenet_v2;
pub use resnet::resnet18;
pub use tiny::tiny_cnn;
pub use vgg::vgg16;
