//! `TinyCnn` — a small four-conv network used by the reduced-scale
//! training experiments (fast enough for CPU-only federated runs while
//! preserving the width-pruning structure of the large models).
//!
//! Prunable units (1-based): the four conv layers.

use crate::block::{Block, Blueprint, ConvSpec, LinearSpec};
use crate::plan::WidthPlan;

/// Base widths of the four conv units.
pub const BASE_WIDTHS: [usize; 4] = [16, 32, 32, 64];

/// Number of trunk segments.
pub const MAX_DEPTH: usize = 3;

/// Builds a TinyCnn blueprint: conv-conv-pool | conv-pool | conv, each
/// segment followed by a GAP+Linear exit head.
///
/// # Panics
///
/// Panics if `plan` does not have 4 units or `depth` is out of range.
pub fn tiny_cnn(
    input: (usize, usize, usize),
    classes: usize,
    plan: &WidthPlan,
    depth: usize,
    aux_exits: bool,
) -> Blueprint {
    assert_eq!(plan.len(), BASE_WIDTHS.len(), "TinyCnn plan needs 4 units");
    assert!((1..=MAX_DEPTH).contains(&depth), "depth must be 1..=3");
    let (in_c, mut h, mut w) = input;

    let conv = |unit: usize, in_c: usize, out_c: usize| {
        Block::Conv(ConvSpec::dense(
            format!("conv{unit}"),
            in_c,
            out_c,
            3,
            1,
            1,
            false,
            true,
        ))
    };

    // Segment layouts: unit indices per segment.
    let seg_units: [&[usize]; 3] = [&[0, 1], &[2], &[3]];
    let mut segments = Vec::with_capacity(depth);
    let mut exits = Vec::with_capacity(depth);
    let mut prev_c = in_c;

    for (si, units) in seg_units.iter().take(depth).enumerate() {
        let mut seg = Vec::new();
        for &u in *units {
            let out_c = plan.width(u);
            seg.push(conv(u, prev_c, out_c));
            prev_c = out_c;
        }
        if si < 2 && h % 2 == 0 && w % 2 == 0 && h >= 2 {
            seg.push(Block::MaxPool(2));
            h /= 2;
            w /= 2;
        }
        segments.push(seg);

        // "classifier" is reserved for the true final segment so
        // depth-truncated submodels share exit heads with the full model.
        let head_name = if si + 1 == MAX_DEPTH {
            "classifier".to_string()
        } else {
            format!("exit{si}.fc")
        };
        exits.push(vec![
            Block::GlobalAvgPool,
            Block::Linear(LinearSpec {
                name: head_name,
                in_f: prev_c,
                out_f: classes,
                relu: false,
            }),
        ]);
    }

    let active_exits = if aux_exits {
        (0..depth).collect()
    } else {
        vec![depth - 1]
    };
    let bp = Blueprint {
        segments,
        exits,
        active_exits,
    };
    bp.validate();
    bp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_of;
    use crate::plan::{PruneSpec, WidthPlan};

    #[test]
    fn tiny_cnn_is_small() {
        let plan = WidthPlan::full(&BASE_WIDTHS);
        let bp = tiny_cnn((3, 16, 16), 10, &plan, 3, false);
        let c = cost_of(&bp, (3, 16, 16));
        assert!(c.params < 60_000, "params {}", c.params);
        assert!(c.macs < 5_000_000, "macs {}", c.macs);
    }

    #[test]
    fn pruned_versions_nest() {
        let full = WidthPlan::full(&BASE_WIDTHS);
        let small = WidthPlan::from_spec(&BASE_WIDTHS, &PruneSpec::new(0.4, 1));
        assert!(small.nested_in(&full));
        let bp = tiny_cnn((3, 16, 16), 10, &small, 3, false);
        let _ = cost_of(&bp, (3, 16, 16));
    }

    #[test]
    fn all_depths_are_consistent() {
        let plan = WidthPlan::full(&BASE_WIDTHS);
        for depth in 1..=3 {
            for aux in [false, true] {
                let bp = tiny_cnn((3, 16, 16), 10, &plan, depth, aux);
                let _ = cost_of(&bp, (3, 16, 16));
            }
        }
    }
}
