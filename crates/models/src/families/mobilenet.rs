//! MobileNetV2 (CIFAR/AIoT-adapted strides) with width pruning at
//! inverted-residual-block granularity — the model of the paper's real
//! test-bed experiment (Widar).
//!
//! Prunable units (1-based): unit 1 is the stem conv, units 2–18 the 17
//! inverted residual blocks, unit 19 the final 1×1 conv.

use crate::block::{Block, Blueprint, ConvSpec, LinearSpec};
use crate::plan::WidthPlan;

/// Base widths: stem, 17 block outputs, last conv.
pub const BASE_WIDTHS: [usize; 19] = [
    32, 16, 24, 24, 32, 32, 32, 64, 64, 64, 64, 96, 96, 96, 160, 160, 160, 320, 1280,
];

/// Expansion factor per block (same order as blocks in
/// [`BASE_WIDTHS`]).
const EXPANSIONS: [usize; 17] = [1, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6, 6];

/// Stride per block (AIoT-adapted: fewer downsamples for small inputs).
const STRIDES: [usize; 17] = [1, 1, 1, 2, 1, 1, 2, 1, 1, 1, 1, 1, 1, 2, 1, 1, 1];

/// Blocks per segment (0-based block indices).
const SEG_BLOCKS: [std::ops::Range<usize>; 4] = [0..3, 3..6, 6..13, 13..17];

/// Number of trunk segments.
pub const MAX_DEPTH: usize = 4;

fn inverted_residual(name: &str, in_c: usize, out_c: usize, t: usize, stride: usize) -> Block {
    let hidden = in_c * t;
    let mut main = Vec::new();
    if t > 1 {
        main.push(Block::Conv(ConvSpec::dense(
            format!("{name}.expand"),
            in_c,
            hidden,
            1,
            1,
            0,
            true,
            true,
        )));
    }
    main.push(Block::Conv(ConvSpec::depthwise(
        format!("{name}.dw"),
        hidden,
        3,
        stride,
        1,
        true,
        true,
    )));
    main.push(Block::Conv(ConvSpec::dense(
        format!("{name}.project"),
        hidden,
        out_c,
        1,
        1,
        0,
        true,
        false,
    )));
    if stride == 1 && in_c == out_c {
        Block::LinearResidual { main }
    } else {
        // No skip when the shape changes (standard MobileNetV2).
        Block::Residual {
            main,
            shortcut: Some(vec![Block::Conv(ConvSpec::dense(
                format!("{name}.down"),
                in_c,
                out_c,
                1,
                stride,
                0,
                true,
                false,
            ))]),
        }
    }
}

/// Builds a MobileNetV2 blueprint.
///
/// # Panics
///
/// Panics if `plan` does not have 19 units or `depth` is out of range.
pub fn mobilenet_v2(
    input: (usize, usize, usize),
    classes: usize,
    plan: &WidthPlan,
    depth: usize,
    aux_exits: bool,
) -> Blueprint {
    assert_eq!(
        plan.len(),
        BASE_WIDTHS.len(),
        "MobileNetV2 plan needs 19 units"
    );
    assert!((1..=MAX_DEPTH).contains(&depth), "depth must be 1..=4");
    let (in_c, _, _) = input;

    let mut segments = Vec::with_capacity(depth);
    let mut exits = Vec::with_capacity(depth);
    let mut prev_c = plan.width(0);

    for (si, range) in SEG_BLOCKS.iter().take(depth).enumerate() {
        let mut seg = Vec::new();
        if si == 0 {
            seg.push(Block::Conv(ConvSpec::dense(
                "stem", in_c, prev_c, 3, 1, 1, true, true,
            )));
        }
        for b in range.clone() {
            let out_c = plan.width(b + 1);
            seg.push(inverted_residual(
                &format!("block{b}"),
                prev_c,
                out_c,
                EXPANSIONS[b],
                STRIDES[b],
            ));
            prev_c = out_c;
        }
        let is_last_seg = si + 1 == depth;
        if is_last_seg && depth == MAX_DEPTH {
            let last_c = plan.width(18);
            seg.push(Block::Conv(ConvSpec::dense(
                "last", prev_c, last_c, 1, 1, 0, true, true,
            )));
            prev_c = last_c;
        }
        segments.push(seg);

        // "classifier" is reserved for the true final segment so
        // depth-truncated submodels share exit heads with the full model.
        let head_name = if si + 1 == MAX_DEPTH {
            "classifier".to_string()
        } else {
            format!("exit{si}.fc")
        };
        exits.push(vec![
            Block::GlobalAvgPool,
            Block::Linear(LinearSpec {
                name: head_name,
                in_f: prev_c,
                out_f: classes,
                relu: false,
            }),
        ]);
    }

    let active_exits = if aux_exits {
        (0..depth).collect()
    } else {
        vec![depth - 1]
    };
    let bp = Blueprint {
        segments,
        exits,
        active_exits,
    };
    bp.validate();
    bp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_of;
    use crate::plan::{PruneSpec, WidthPlan};

    #[test]
    fn full_mobilenet_param_count_is_plausible() {
        // Torchvision MobileNetV2 (1000 classes) has 3.5M params; with
        // 22 classes and our shortcut handling we expect 2.2–3.2M.
        let plan = WidthPlan::full(&BASE_WIDTHS);
        let bp = mobilenet_v2((3, 32, 32), 22, &plan, 4, false);
        let c = cost_of(&bp, (3, 32, 32));
        let m = c.params as f64 / 1e6;
        assert!((2.0..3.6).contains(&m), "params {m}M");
    }

    #[test]
    fn pruned_plan_is_shape_consistent() {
        for start in [0usize, 4, 9, 14] {
            let plan = WidthPlan::from_spec(&BASE_WIDTHS, &PruneSpec::new(0.4, start));
            let bp = mobilenet_v2((3, 32, 32), 22, &plan, 4, false);
            let _ = cost_of(&bp, (3, 32, 32)); // validates shapes
        }
    }

    #[test]
    fn depthwise_macs_are_much_cheaper_than_dense() {
        let plan = WidthPlan::full(&BASE_WIDTHS);
        let bp = mobilenet_v2((3, 32, 32), 22, &plan, 4, false);
        let c = cost_of(&bp, (3, 32, 32));
        // A dense 3×3 conv stack of this size would be >1 GMAC; the
        // depthwise design keeps it well under 400 MMACs at 32×32.
        assert!(c.macs < 400_000_000, "macs {}", c.macs);
    }

    #[test]
    fn reduced_depth_with_aux_exits() {
        let plan = WidthPlan::full(&BASE_WIDTHS);
        let bp = mobilenet_v2((3, 16, 16), 22, &plan, 2, true);
        assert_eq!(bp.active_exits, vec![0, 1]);
        let _ = cost_of(&bp, (3, 16, 16));
    }
}
