//! [`ModelConfig`] — one handle over a model family, its input shape
//! and class count, with optional width scaling for CPU-budget
//! experiments.

use adaptivefl_nn::ParamKind;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::block::Blueprint;
use crate::cost::{cost_of, Cost};
use crate::families;
use crate::network::Network;
use crate::plan::{scale_width, PruneSpec, WidthPlan};

/// The architecture families of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// VGG16 with the CIFAR classifier of Table 1.
    Vgg16,
    /// ResNet18 (CIFAR stem).
    ResNet18,
    /// MobileNetV2 (test-bed experiment).
    MobileNetV2,
    /// Fast four-conv CNN for reduced-scale runs.
    TinyCnn,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ModelKind::Vgg16 => "VGG16",
            ModelKind::ResNet18 => "ResNet18",
            ModelKind::MobileNetV2 => "MobileNetV2",
            ModelKind::TinyCnn => "TinyCnn",
        };
        f.write_str(s)
    }
}

/// A fully specified model: family, input shape, classes and width
/// multiplier.
///
/// # Example
///
/// ```
/// use adaptivefl_models::{ModelConfig, PruneSpec};
///
/// let cfg = ModelConfig::resnet18_fast(10);
/// let plan = cfg.plan(&PruneSpec::new(0.5, 2));
/// assert_eq!(plan.len(), cfg.num_units());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture family.
    pub kind: ModelKind,
    /// Input `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Number of output classes.
    pub classes: usize,
    /// Uniform width multiplier applied to the family's base widths
    /// (1.0 = the paper's full-size architecture).
    pub width_mult: f32,
}

impl ModelConfig {
    /// Full-size VGG16 on 32×32×3 input, 10 classes (Table 1).
    pub fn vgg16_cifar() -> Self {
        ModelConfig {
            kind: ModelKind::Vgg16,
            input: (3, 32, 32),
            classes: 10,
            width_mult: 1.0,
        }
    }

    /// Reduced VGG16 for CPU-budget training runs.
    pub fn vgg16_fast(classes: usize) -> Self {
        ModelConfig {
            kind: ModelKind::Vgg16,
            input: (3, 8, 8),
            classes,
            width_mult: 1.0 / 8.0,
        }
    }

    /// Full-size ResNet18 on 32×32×3 input.
    pub fn resnet18_cifar() -> Self {
        ModelConfig {
            kind: ModelKind::ResNet18,
            input: (3, 32, 32),
            classes: 10,
            width_mult: 1.0,
        }
    }

    /// Reduced ResNet18 for CPU-budget training runs.
    pub fn resnet18_fast(classes: usize) -> Self {
        ModelConfig {
            kind: ModelKind::ResNet18,
            input: (3, 8, 8),
            classes,
            width_mult: 1.0 / 8.0,
        }
    }

    /// Full-size MobileNetV2 on Widar-like input (22 gesture classes).
    pub fn mobilenet_v2_widar() -> Self {
        ModelConfig {
            kind: ModelKind::MobileNetV2,
            input: (1, 16, 16),
            classes: 22,
            width_mult: 1.0,
        }
    }

    /// Reduced MobileNetV2 for CPU-budget training runs.
    pub fn mobilenet_v2_fast(classes: usize) -> Self {
        ModelConfig {
            kind: ModelKind::MobileNetV2,
            input: (1, 8, 8),
            classes,
            width_mult: 0.25,
        }
    }

    /// TinyCnn on 16×16×3 input.
    pub fn tiny(classes: usize) -> Self {
        ModelConfig {
            kind: ModelKind::TinyCnn,
            input: (3, 16, 16),
            classes,
            width_mult: 1.0,
        }
    }

    /// Base widths of every prunable unit after applying `width_mult`.
    pub fn base_widths(&self) -> Vec<usize> {
        let base: &[usize] = match self.kind {
            ModelKind::Vgg16 => &families::vgg::BASE_WIDTHS,
            ModelKind::ResNet18 => &families::resnet::BASE_WIDTHS,
            ModelKind::MobileNetV2 => &families::mobilenet::BASE_WIDTHS,
            ModelKind::TinyCnn => &families::tiny::BASE_WIDTHS,
        };
        if (self.width_mult - 1.0).abs() < f32::EPSILON {
            base.to_vec()
        } else {
            base.iter()
                .map(|&b| scale_width(b, self.width_mult))
                .collect()
        }
    }

    /// Number of prunable units (the range of the paper's `I`).
    pub fn num_units(&self) -> usize {
        self.base_widths().len()
    }

    /// The valid values of the starting prune unit `I`, ascending.
    ///
    /// Two constraints apply: the paper's threshold `τ` (shallow layers
    /// are never pruned), and — for residual families — the unit after
    /// `I` must start at a block that already carries a projection
    /// shortcut in the full model (a stage-transition block), so that a
    /// width boundary never introduces parameters absent from the
    /// global model.
    pub fn allowed_start_units(&self) -> Vec<usize> {
        match self.kind {
            // Plain feed-forward stacks: any unit from τ up to the
            // second-to-last (starting at the last unit would be a
            // no-op duplicate of L_1).
            ModelKind::Vgg16 => (4..self.num_units()).collect(),
            ModelKind::TinyCnn => (1..self.num_units()).collect(),
            // Units 4/6/8 are the stride-2 stage-transition blocks, so
            // the boundary block after I ∈ {3,5,7} has a `down`
            // projection in the full model.
            ModelKind::ResNet18 => vec![3, 5, 7],
            // Units 5/8/12/15/18 are blocks whose in/out channels (or
            // stride) differ in the full model.
            ModelKind::MobileNetV2 => vec![4, 7, 11, 14, 17],
        }
    }

    /// The threshold `τ`: the smallest allowed starting prune unit, so
    /// shallow layers are never pruned (paper §3.2).
    pub fn min_start_unit(&self) -> usize {
        self.allowed_start_units()[0]
    }

    /// Maximum trunk depth (number of segments).
    pub fn max_depth(&self) -> usize {
        match self.kind {
            ModelKind::Vgg16 => families::vgg::MAX_DEPTH,
            ModelKind::ResNet18 => families::resnet::MAX_DEPTH,
            ModelKind::MobileNetV2 => families::mobilenet::MAX_DEPTH,
            ModelKind::TinyCnn => families::tiny::MAX_DEPTH,
        }
    }

    /// Derives a width plan from a prune spec.
    pub fn plan(&self, spec: &PruneSpec) -> WidthPlan {
        WidthPlan::from_spec(&self.base_widths(), spec)
    }

    /// The full-width plan.
    pub fn full_plan(&self) -> WidthPlan {
        WidthPlan::full(&self.base_widths())
    }

    /// Builds the blueprint for a width plan at the given depth.
    ///
    /// # Panics
    ///
    /// Panics if the plan length or depth does not fit the family.
    pub fn blueprint(&self, plan: &WidthPlan, depth: usize, aux_exits: bool) -> Blueprint {
        match self.kind {
            ModelKind::Vgg16 => {
                // The paper's Table 1 parameter counts correspond to a
                // BN-free VGG16, so the full-size config stays BN-free;
                // reduced-width training variants get batch-norm, which
                // a 13-conv stack needs to train at small width.
                let bn = self.width_mult < 1.0;
                families::vgg16(self.input, self.classes, plan, depth, aux_exits, bn)
            }
            ModelKind::ResNet18 => {
                families::resnet18(self.input, self.classes, plan, depth, aux_exits)
            }
            ModelKind::MobileNetV2 => {
                families::mobilenet_v2(self.input, self.classes, plan, depth, aux_exits)
            }
            ModelKind::TinyCnn => {
                families::tiny_cnn(self.input, self.classes, plan, depth, aux_exits)
            }
        }
    }

    /// Full-depth blueprint without auxiliary exits.
    pub fn full_blueprint(&self, plan: &WidthPlan) -> Blueprint {
        self.blueprint(plan, self.max_depth(), false)
    }

    /// Instantiates an executable network for a plan (full depth, no
    /// aux exits).
    pub fn build(&self, plan: &WidthPlan, rng: &mut impl Rng) -> Network {
        Network::build(&self.full_blueprint(plan), rng)
    }

    /// Exact cost (params + MACs) of a plan at full depth.
    pub fn cost(&self, plan: &WidthPlan) -> Cost {
        cost_of(&self.full_blueprint(plan), self.input)
    }

    /// Parameter-element count of a plan at full depth.
    pub fn num_params(&self, plan: &WidthPlan) -> u64 {
        self.cost(plan).params
    }

    /// Parameter shape table of a plan at full depth (no aux exits).
    pub fn shapes(&self, plan: &WidthPlan) -> Vec<(String, Vec<usize>, ParamKind)> {
        self.full_blueprint(plan).shapes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_configs_are_actually_small() {
        for cfg in [
            ModelConfig::vgg16_fast(10),
            ModelConfig::resnet18_fast(10),
            ModelConfig::mobilenet_v2_fast(10),
            ModelConfig::tiny(10),
        ] {
            let n = cfg.num_params(&cfg.full_plan());
            assert!(n < 600_000, "{:?} has {n} params", cfg.kind);
        }
    }

    #[test]
    fn plan_length_matches_units() {
        let cfg = ModelConfig::vgg16_cifar();
        assert_eq!(cfg.num_units(), 15);
        assert_eq!(cfg.plan(&PruneSpec::full()).len(), 15);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::Vgg16.to_string(), "VGG16");
        assert_eq!(ModelKind::TinyCnn.to_string(), "TinyCnn");
    }
}
