//! Procedural classification tasks standing in for CIFAR-10/100,
//! FEMNIST and Widar.
//!
//! Each class is a smooth random prototype field; a sample is its class
//! prototype plus a per-sample smooth distortion and white noise, with
//! an optional *group transform* (per-writer for FEMNIST, per-device
//! for Widar) that makes data naturally non-IID across groups.

use adaptivefl_tensor::Tensor;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::dataset::InMemoryDataset;

/// Generator parameters for a synthetic classification task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Input shape `(c, h, w)`.
    pub input: (usize, usize, usize),
    /// Number of classes.
    pub classes: usize,
    /// Amplitude of the class prototype signal.
    pub signal: f32,
    /// Std-dev of white pixel noise.
    pub noise: f32,
    /// Amplitude of the smooth per-sample distortion field.
    pub distortion: f32,
    /// Strength of the per-group (writer/device) transform; 0 disables.
    pub group_shift: f32,
    /// Resolution of the coarse grid the smooth fields are upsampled
    /// from (lower = smoother).
    pub grid: usize,
}

impl SynthSpec {
    /// CIFAR-10-like: 3×16×16, 10 classes.
    pub fn cifar10_like() -> Self {
        SynthSpec {
            input: (3, 16, 16),
            classes: 10,
            signal: 1.0,
            noise: 0.45,
            distortion: 0.35,
            group_shift: 0.0,
            grid: 4,
        }
    }

    /// CIFAR-100-like: 3×16×16, 100 classes (harder: weaker signal).
    pub fn cifar100_like() -> Self {
        SynthSpec {
            input: (3, 16, 16),
            classes: 100,
            signal: 1.0,
            noise: 0.55,
            distortion: 0.40,
            group_shift: 0.0,
            grid: 4,
        }
    }

    /// FEMNIST-like: 1×16×16, 62 classes, strong writer transform.
    pub fn femnist_like() -> Self {
        SynthSpec {
            input: (1, 16, 16),
            classes: 62,
            signal: 1.2,
            noise: 0.40,
            distortion: 0.30,
            group_shift: 0.6,
            grid: 4,
        }
    }

    /// Widar-like: 1×16×16 body-velocity profiles, 22 gestures, strong
    /// device/environment transform.
    pub fn widar_like() -> Self {
        SynthSpec {
            input: (1, 16, 16),
            classes: 22,
            signal: 1.1,
            noise: 0.50,
            distortion: 0.35,
            group_shift: 0.8,
            grid: 4,
        }
    }

    /// A tiny spec for unit tests.
    pub fn test_spec(classes: usize) -> Self {
        SynthSpec {
            input: (3, 8, 8),
            classes,
            signal: 1.5,
            noise: 0.3,
            distortion: 0.2,
            group_shift: 0.0,
            grid: 2,
        }
    }
}

/// A smooth random field: a `grid×grid` Gaussian lattice bilinearly
/// upsampled to `h×w`, one lattice per channel.
fn smooth_field(spec: &SynthSpec, amplitude: f32, rng: &mut impl Rng) -> Vec<f32> {
    let (c, h, w) = spec.input;
    let g = spec.grid.max(1);
    let normal = Normal::new(0.0f32, 1.0).expect("valid normal");
    let mut out = vec![0.0f32; c * h * w];
    for ci in 0..c {
        let lattice: Vec<f32> = (0..g * g).map(|_| normal.sample(rng) * amplitude).collect();
        for yi in 0..h {
            for xi in 0..w {
                // Bilinear interpolation over the lattice.
                let fy = yi as f32 / h as f32 * (g - 1).max(1) as f32;
                let fx = xi as f32 / w as f32 * (g - 1).max(1) as f32;
                let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                let (y1, x1) = ((y0 + 1).min(g - 1), (x0 + 1).min(g - 1));
                let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                let v = lattice[y0 * g + x0] * (1.0 - dy) * (1.0 - dx)
                    + lattice[y0 * g + x1] * (1.0 - dy) * dx
                    + lattice[y1 * g + x0] * dy * (1.0 - dx)
                    + lattice[y1 * g + x1] * dy * dx;
                out[ci * h * w + yi * w + xi] = v;
            }
        }
    }
    out
}

/// Fixed per-task structures: class prototypes and group transforms.
#[derive(Debug, Clone)]
pub struct SynthTask {
    spec: SynthSpec,
    prototypes: Vec<Vec<f32>>, // one field per class
    groups: Vec<Vec<f32>>,     // one additive field per group
}

impl SynthTask {
    /// Draws the fixed task structure (prototypes, group transforms).
    pub fn new(spec: SynthSpec, num_groups: usize, rng: &mut impl Rng) -> Self {
        let prototypes = (0..spec.classes)
            .map(|_| smooth_field(&spec, spec.signal, rng))
            .collect();
        let groups = (0..num_groups.max(1))
            .map(|_| smooth_field(&spec, spec.group_shift, rng))
            .collect();
        SynthTask {
            spec,
            prototypes,
            groups,
        }
    }

    /// The generator spec.
    pub fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Number of group transforms.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Draws one sample of class `y` under group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `y` or `g` are out of range.
    pub fn sample(&self, y: usize, g: usize, rng: &mut impl Rng) -> Vec<f32> {
        let proto = &self.prototypes[y];
        let group = &self.groups[g];
        let distort = smooth_field(&self.spec, self.spec.distortion, rng);
        let normal =
            Normal::new(0.0f32, self.spec.noise.max(f32::MIN_POSITIVE)).expect("valid normal");
        proto
            .iter()
            .zip(group)
            .zip(distort)
            .map(|((&p, &gr), d)| p + gr + d + normal.sample(rng))
            .collect()
    }

    /// Generates a dataset of `n` samples with the given labels drawn
    /// uniformly (group 0).
    pub fn dataset_uniform(&self, n: usize, rng: &mut impl Rng) -> InMemoryDataset {
        let labels: Vec<usize> = (0..n)
            .map(|_| rng.gen_range(0..self.spec.classes))
            .collect();
        self.dataset_with_labels(&labels, 0, rng)
    }

    /// Generates a dataset with explicit labels under one group.
    pub fn dataset_with_labels(
        &self,
        labels: &[usize],
        group: usize,
        rng: &mut impl Rng,
    ) -> InMemoryDataset {
        let per = self.spec.input.0 * self.spec.input.1 * self.spec.input.2;
        let mut data = Vec::with_capacity(labels.len() * per);
        for &y in labels {
            data.extend(self.sample(y, group, rng));
        }
        InMemoryDataset::new(self.spec.input, self.spec.classes, data, labels.to_vec())
    }

    /// The noiseless class prototype as a tensor (useful in tests).
    pub fn prototype(&self, y: usize) -> Tensor {
        let (c, h, w) = self.spec.input;
        Tensor::from_vec(self.prototypes[y].clone(), &[c, h, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::rng;

    #[test]
    fn prototypes_are_distinct() {
        let mut r = rng::seeded(10);
        let task = SynthTask::new(SynthSpec::test_spec(4), 1, &mut r);
        let a = task.prototype(0);
        let b = task.prototype(1);
        assert!(a.zip_map(&b, |x, y| (x - y).abs()).sum() > 1.0);
    }

    #[test]
    fn samples_cluster_near_their_prototype() {
        let mut r = rng::seeded(11);
        let task = SynthTask::new(SynthSpec::test_spec(3), 1, &mut r);
        // A sample of class 0 should be closer to prototype 0 than to
        // prototype 1 on average.
        let mut closer = 0;
        for _ in 0..20 {
            let s = task.sample(0, 0, &mut r);
            let d0: f32 = s
                .iter()
                .zip(task.prototype(0).as_slice())
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            let d1: f32 = s
                .iter()
                .zip(task.prototype(1).as_slice())
                .map(|(a, b)| (a - b).powi(2))
                .sum();
            if d0 < d1 {
                closer += 1;
            }
        }
        assert!(closer >= 16, "only {closer}/20 samples near own prototype");
    }

    #[test]
    fn dataset_generation_is_deterministic() {
        let spec = SynthSpec::test_spec(5);
        let mk = || {
            let mut r = rng::seeded(12);
            let task = SynthTask::new(spec, 2, &mut r);
            task.dataset_uniform(10, &mut r)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn group_transform_shifts_data() {
        let mut spec = SynthSpec::test_spec(2);
        spec.group_shift = 2.0;
        let mut r = rng::seeded(13);
        let task = SynthTask::new(spec, 2, &mut r);
        // Same class, different groups → systematically different data.
        let mut r1 = rng::seeded(14);
        let mut r2 = rng::seeded(14);
        let a = task.sample(0, 0, &mut r1);
        let b = task.sample(0, 1, &mut r2);
        let diff: f32 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1.0);
    }
}
