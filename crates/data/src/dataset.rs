//! In-memory labelled image datasets and batching.

use adaptivefl_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One mini-batch: inputs `[b, c, h, w]` and integer labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Input tensor `[b, c, h, w]`.
    pub x: Tensor,
    /// Labels, length `b`.
    pub y: Vec<usize>,
}

/// A dense, in-memory labelled dataset with fixed input shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InMemoryDataset {
    input: (usize, usize, usize),
    classes: usize,
    /// Row-major sample data, `len = n · c · h · w`.
    data: Vec<f32>,
    labels: Vec<usize>,
}

impl InMemoryDataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if data length or any label is inconsistent.
    pub fn new(
        input: (usize, usize, usize),
        classes: usize,
        data: Vec<f32>,
        labels: Vec<usize>,
    ) -> Self {
        let per = input.0 * input.1 * input.2;
        assert_eq!(data.len(), labels.len() * per, "data/label size mismatch");
        assert!(labels.iter().all(|&y| y < classes), "label out of range");
        InMemoryDataset {
            input,
            classes,
            data,
            labels,
        }
    }

    /// An empty dataset with the given geometry.
    pub fn empty(input: (usize, usize, usize), classes: usize) -> Self {
        InMemoryDataset {
            input,
            classes,
            data: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Input shape `(c, h, w)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.input
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Materialises the samples at `indices` as one batch.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> Batch {
        let (c, h, w) = self.input;
        let per = c * h * w;
        let mut x = Vec::with_capacity(indices.len() * per);
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of bounds");
            x.extend_from_slice(&self.data[i * per..(i + 1) * per]);
            y.push(self.labels[i]);
        }
        Batch {
            x: Tensor::from_vec(x, &[indices.len(), c, h, w]),
            y,
        }
    }

    /// The whole dataset as one batch.
    pub fn full_batch(&self) -> Batch {
        let idx: Vec<usize> = (0..self.len()).collect();
        self.batch(&idx)
    }

    /// Builds a subset from sample indices.
    pub fn subset(&self, indices: &[usize]) -> InMemoryDataset {
        let b = self.batch(indices);
        InMemoryDataset::new(self.input, self.classes, b.x.into_vec(), b.y)
    }

    /// Iterates over shuffled mini-batches of size `batch_size` (last
    /// batch may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn shuffled_batches<'a, R: Rng>(
        &'a self,
        batch_size: usize,
        rng: &mut R,
    ) -> impl Iterator<Item = Batch> + 'a {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        BatchIter {
            ds: self,
            order,
            pos: 0,
            batch_size,
        }
    }

    /// Per-class sample counts (length = classes).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.classes];
        for &y in &self.labels {
            h[y] += 1;
        }
        h
    }
}

struct BatchIter<'a> {
    ds: &'a InMemoryDataset,
    order: Vec<usize>,
    pos: usize,
    batch_size: usize,
}

impl Iterator for BatchIter<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let b = self.ds.batch(&self.order[self.pos..end]);
        self.pos = end;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::rng;

    fn tiny() -> InMemoryDataset {
        let data: Vec<f32> = (0..5 * 2 * 2 * 2).map(|v| v as f32).collect();
        InMemoryDataset::new((2, 2, 2), 3, data, vec![0, 1, 2, 0, 1])
    }

    #[test]
    fn batch_gathers_samples() {
        let ds = tiny();
        let b = ds.batch(&[1, 3]);
        assert_eq!(b.x.shape(), &[2, 2, 2, 2]);
        assert_eq!(b.y, vec![1, 0]);
        assert_eq!(b.x.as_slice()[0], 8.0); // sample 1 starts at 8
    }

    #[test]
    fn shuffled_batches_cover_everything_once() {
        let ds = tiny();
        let mut r = rng::seeded(9);
        let mut seen = 0;
        for b in ds.shuffled_batches(2, &mut r) {
            seen += b.y.len();
            assert!(b.y.len() <= 2);
        }
        assert_eq!(seen, 5);
    }

    #[test]
    fn subset_preserves_geometry() {
        let ds = tiny();
        let sub = ds.subset(&[0, 4]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.input_shape(), (2, 2, 2));
        assert_eq!(sub.labels(), &[0, 1]);
    }

    #[test]
    fn class_histogram_counts() {
        assert_eq!(tiny().class_histogram(), vec![2, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        InMemoryDataset::new((1, 1, 1), 2, vec![0.0], vec![5]);
    }
}
