//! Synthetic federated datasets and non-IID partitioners.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100, FEMNIST and Widar. Those
//! datasets cannot be shipped here, so this crate provides procedural
//! stand-ins with the *same federation topology*: controllable class
//! structure (smooth class prototypes + noise + per-sample distortion),
//! IID and Dirichlet-α label partitions, a writer-style naturally
//! non-IID split (FEMNIST), and a device-conditioned gesture set
//! (Widar). The FL methods under study only interact with the data
//! through loss gradients and label skew, which these generators
//! reproduce.
//!
//! # Example
//!
//! ```
//! use adaptivefl_data::{FederatedDataset, SynthSpec, Partition};
//!
//! let fed = FederatedDataset::synthesize(
//!     &SynthSpec::cifar10_like(),
//!     20,                    // clients
//!     30,                    // train samples per client
//!     200,                   // test samples
//!     Partition::Dirichlet(0.6),
//!     42,
//! );
//! assert_eq!(fed.num_clients(), 20);
//! assert!(fed.client(0).len() > 0);
//! ```

mod dataset;
mod federated;
mod partition;
pub mod synth;

pub use dataset::{Batch, InMemoryDataset};
pub use federated::FederatedDataset;
pub use partition::{dirichlet_partition, iid_partition, shard_histogram, Partition};
pub use synth::{SynthSpec, SynthTask};
