//! [`FederatedDataset`]: per-client training shards plus a global test
//! set, assembled from a synthetic task and a partition strategy.

use rand::Rng;

use crate::dataset::InMemoryDataset;
use crate::partition::{dirichlet_partition, iid_partition, Partition};
use crate::synth::{SynthSpec, SynthTask};

/// Per-client training shards and a shared held-out test set.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    clients: Vec<InMemoryDataset>,
    test: InMemoryDataset,
}

impl FederatedDataset {
    /// Assembles a federation from explicit pieces.
    ///
    /// # Panics
    ///
    /// Panics if there are no clients.
    pub fn new(clients: Vec<InMemoryDataset>, test: InMemoryDataset) -> Self {
        assert!(!clients.is_empty(), "need at least one client");
        FederatedDataset { clients, test }
    }

    /// Synthesises a federation:
    ///
    /// * For [`Partition::Iid`] / [`Partition::Dirichlet`], one global
    ///   pool of `clients · samples_per_client` samples is generated
    ///   (group 0) and split by the partitioner — matching how the
    ///   paper splits CIFAR.
    /// * For [`Partition::ByGroup`], each client is its own group with
    ///   its own transform and a client-specific class preference —
    ///   matching FEMNIST's writer split / Widar's device split.
    pub fn synthesize(
        spec: &SynthSpec,
        clients: usize,
        samples_per_client: usize,
        test_samples: usize,
        partition: Partition,
        seed: u64,
    ) -> Self {
        let mut rng = adaptivefl_tensor::rng::derived(seed, "federated-data");
        let groups = match partition {
            Partition::ByGroup => clients,
            _ => 1,
        };
        let task = SynthTask::new(*spec, groups, &mut rng);

        let client_sets = match partition {
            Partition::Iid | Partition::Dirichlet(_) => {
                let n = clients * samples_per_client;
                let pool = task.dataset_uniform(n, &mut rng);
                let shards = match partition {
                    Partition::Iid => iid_partition(n, clients, &mut rng),
                    Partition::Dirichlet(a) => {
                        dirichlet_partition(pool.labels(), spec.classes, clients, a, &mut rng)
                    }
                    Partition::ByGroup => unreachable!(),
                };
                shards.iter().map(|s| pool.subset(s)).collect()
            }
            Partition::ByGroup => (0..clients)
                .map(|c| {
                    // Each group/writer covers a random subset of
                    // classes (half of them), like a writer who only
                    // produces some symbols.
                    let mut classes: Vec<usize> = (0..spec.classes).collect();
                    for i in (1..classes.len()).rev() {
                        classes.swap(i, rng.gen_range(0..=i));
                    }
                    classes.truncate((spec.classes / 2).max(1));
                    let labels: Vec<usize> = (0..samples_per_client)
                        .map(|_| classes[rng.gen_range(0..classes.len())])
                        .collect();
                    task.dataset_with_labels(&labels, c, &mut rng)
                })
                .collect(),
        };

        // Test data: group 0 for pooled partitions; mixed groups for
        // the group split (so the global model is tested across all
        // environments).
        let test = match partition {
            Partition::ByGroup => {
                let per = spec.input.0 * spec.input.1 * spec.input.2;
                let mut data = Vec::with_capacity(test_samples * per);
                let mut labels = Vec::with_capacity(test_samples);
                for i in 0..test_samples {
                    let y = rng.gen_range(0..spec.classes);
                    let g = i % clients;
                    data.extend(task.sample(y, g, &mut rng));
                    labels.push(y);
                }
                InMemoryDataset::new(spec.input, spec.classes, data, labels)
            }
            _ => task.dataset_uniform(test_samples, &mut rng),
        };

        FederatedDataset::new(client_sets, test)
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The training shard of client `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn client(&self, c: usize) -> &InMemoryDataset {
        &self.clients[c]
    }

    /// The shared test set.
    pub fn test(&self) -> &InMemoryDataset {
        &self.test
    }

    /// Per-client training sample counts (the aggregation weights
    /// `|d_c|`).
    pub fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(InMemoryDataset::len).collect()
    }

    /// Input shape of the task.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        self.test.input_shape()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.test.classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::shard_histogram;

    #[test]
    fn iid_federation_shapes() {
        let fed =
            FederatedDataset::synthesize(&SynthSpec::test_spec(4), 8, 10, 40, Partition::Iid, 1);
        assert_eq!(fed.num_clients(), 8);
        assert_eq!(fed.client_sizes(), vec![10; 8]);
        assert_eq!(fed.test().len(), 40);
        assert_eq!(fed.classes(), 4);
    }

    #[test]
    fn dirichlet_federation_is_skewed() {
        let fed = FederatedDataset::synthesize(
            &SynthSpec::test_spec(10),
            10,
            40,
            50,
            Partition::Dirichlet(0.1),
            2,
        );
        // At α=0.1 at least one client must be strongly class-skewed.
        let any_skewed = (0..fed.num_clients()).any(|c| {
            let ds = fed.client(c);
            if ds.is_empty() {
                return false;
            }
            let h = ds.class_histogram();
            *h.iter().max().expect("classes") as f32 > 0.6 * ds.len() as f32
        });
        assert!(any_skewed);
    }

    #[test]
    fn by_group_clients_have_partial_class_coverage() {
        let fed = FederatedDataset::synthesize(
            &SynthSpec::femnist_like(),
            6,
            30,
            60,
            Partition::ByGroup,
            3,
        );
        for c in 0..6 {
            let h = fed.client(c).class_histogram();
            let covered = h.iter().filter(|&&n| n > 0).count();
            assert!(covered <= 31, "client {c} covers {covered} classes");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            FederatedDataset::synthesize(
                &SynthSpec::test_spec(3),
                4,
                5,
                10,
                Partition::Dirichlet(0.6),
                7,
            )
        };
        let a = mk();
        let b = mk();
        for c in 0..4 {
            assert_eq!(a.client(c), b.client(c));
        }
        assert_eq!(a.test(), b.test());
    }

    #[test]
    fn histograms_line_up_with_labels() {
        let fed =
            FederatedDataset::synthesize(&SynthSpec::test_spec(5), 3, 20, 10, Partition::Iid, 9);
        let ds = fed.client(1);
        let idx: Vec<usize> = (0..ds.len()).collect();
        assert_eq!(ds.class_histogram(), shard_histogram(&idx, ds.labels(), 5));
    }
}
