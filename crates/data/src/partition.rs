//! Client partitioning: IID and Dirichlet-α label skew (the paper's
//! non-IID control) plus a group/writer split.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, Gamma};
use serde::{Deserialize, Serialize};

/// How training data is split across clients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Independent and identically distributed.
    Iid,
    /// Dirichlet label skew with concentration α (smaller = more
    /// heterogeneous), as in the paper's non-IID scenarios.
    Dirichlet(f32),
    /// Each client is one natural group (FEMNIST writer / Widar
    /// device); the generator assigns group-specific classes and
    /// transforms.
    ByGroup,
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partition::Iid => write!(f, "IID"),
            Partition::Dirichlet(a) => write!(f, "alpha={a}"),
            Partition::ByGroup => write!(f, "by-group"),
        }
    }
}

/// Splits `n` samples IID across `clients`, near-equally.
pub fn iid_partition(n: usize, clients: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    assert!(clients > 0, "need at least one client");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut shards = vec![Vec::new(); clients];
    for (i, s) in idx.into_iter().enumerate() {
        shards[i % clients].push(s);
    }
    shards
}

/// Dirichlet label-skew partition: for each class, sample a Dirichlet(α)
/// vector over clients and allocate that class's samples accordingly.
///
/// # Panics
///
/// Panics if `alpha <= 0` or `clients == 0`.
pub fn dirichlet_partition(
    labels: &[usize],
    classes: usize,
    clients: usize,
    alpha: f32,
    rng: &mut impl Rng,
) -> Vec<Vec<usize>> {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(clients > 0, "need at least one client");
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &y) in labels.iter().enumerate() {
        by_class[y].push(i);
    }
    let gamma = Gamma::new(alpha as f64, 1.0).expect("valid gamma");
    let mut shards = vec![Vec::new(); clients];
    for mut idxs in by_class {
        if idxs.is_empty() {
            continue;
        }
        idxs.shuffle(rng);
        // Dirichlet via normalised Gamma draws.
        let mut weights: Vec<f64> = (0..clients).map(|_| gamma.sample(rng).max(1e-12)).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        // Cumulative allocation.
        let n = idxs.len();
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (c, &w) in weights.iter().enumerate() {
            acc += w;
            let end = if c + 1 == clients {
                n
            } else {
                (acc * n as f64).round() as usize
            }
            .min(n);
            shards[c].extend_from_slice(&idxs[start..end.max(start)]);
            start = end.max(start);
        }
    }
    shards
}

/// Class histogram of one shard against a label array.
pub fn shard_histogram(shard: &[usize], labels: &[usize], classes: usize) -> Vec<usize> {
    let mut h = vec![0usize; classes];
    for &i in shard {
        h[labels[i]] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::rng;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn iid_covers_all_samples_evenly() {
        let mut r = rng::seeded(15);
        let shards = iid_partition(103, 10, &mut r);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, 103);
        for s in &shards {
            assert!(s.len() == 10 || s.len() == 11);
        }
    }

    #[test]
    fn dirichlet_covers_all_samples() {
        let mut r = rng::seeded(16);
        let l = labels(500, 10);
        let shards = dirichlet_partition(&l, 10, 20, 0.3, &mut r);
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        let mut seen = vec![false; 500];
        for s in &shards {
            for &i in s {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
    }

    #[test]
    fn small_alpha_is_more_skewed_than_large() {
        let l = labels(2000, 10);
        let skew = |alpha: f32, seed: u64| -> f64 {
            let mut r = rng::seeded(seed);
            let shards = dirichlet_partition(&l, 10, 20, alpha, &mut r);
            // Mean across clients of (max class share).
            let mut acc = 0.0;
            let mut cnt = 0;
            for s in &shards {
                if s.is_empty() {
                    continue;
                }
                let h = shard_histogram(s, &l, 10);
                let max = *h.iter().max().expect("classes") as f64;
                acc += max / s.len() as f64;
                cnt += 1;
            }
            acc / cnt as f64
        };
        let tight = skew(100.0, 17);
        let loose = skew(0.1, 18);
        assert!(
            loose > tight + 0.15,
            "alpha=0.1 skew {loose} should exceed alpha=100 skew {tight}"
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Partition::Iid.to_string(), "IID");
        assert_eq!(Partition::Dirichlet(0.6).to_string(), "alpha=0.6");
    }
}
