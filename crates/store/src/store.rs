//! The on-disk snapshot store: a directory of `.afs` files with
//! atomic writes, a retention policy, and corruption-tolerant loading.
//!
//! Each snapshot is written as `snap-r{round:06}.afs` via a temp file
//! and a rename, so a crash mid-write can never clobber an existing good
//! snapshot — at worst it leaves a stale `.tmp` that the next save
//! overwrites. Loading validates magic, version and CRC;
//! [`SnapshotStore::latest_valid`] walks snapshots newest-first and
//! falls back past corrupt files to the newest one that still decodes.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use adaptivefl_core::checkpoint::{ServerSnapshot, SnapshotSink};
use adaptivefl_core::CoreError;

use crate::format::{decode_snapshot, encode_snapshot};

/// Snapshot file extension.
pub const EXTENSION: &str = "afs";

/// A directory of snapshots for one run.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    /// Always keep the newest `keep_last` snapshots.
    keep_last: usize,
    /// Additionally keep every snapshot whose round is a multiple of
    /// this (0 = no periodic keeps).
    keep_every: usize,
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> CoreError {
    CoreError::Snapshot(format!("{what} {}: {e}", path.display()))
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory with the
    /// default retention: keep the last 3 snapshots.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("creating", &dir, e))?;
        Ok(SnapshotStore {
            dir,
            keep_last: 3,
            keep_every: 0,
        })
    }

    /// Sets the retention policy: always keep the newest `keep_last`
    /// snapshots, plus every snapshot whose completed-round count is a
    /// multiple of `keep_every` (0 disables the periodic keeps).
    ///
    /// # Panics
    ///
    /// Panics if `keep_last` is 0 — a store that deletes everything it
    /// writes cannot support resume.
    pub fn with_retention(mut self, keep_last: usize, keep_every: usize) -> Self {
        assert!(keep_last > 0, "retention must keep at least one snapshot");
        self.keep_last = keep_last;
        self.keep_every = keep_every;
        self
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, completed_rounds: usize) -> PathBuf {
        self.dir
            .join(format!("snap-r{completed_rounds:06}.{EXTENSION}"))
    }

    /// Writes one snapshot atomically (temp file + rename) and applies
    /// the retention policy. Returns the final path.
    pub fn save_snapshot(&self, snap: &ServerSnapshot) -> Result<PathBuf, CoreError> {
        let bytes = encode_snapshot(snap);
        let path = self.path_for(snap.completed_rounds);
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
            f.write_all(&bytes)
                .map_err(|e| io_err("writing", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err("renaming", &tmp, e))?;
        self.prune()?;
        Ok(path)
    }

    /// Decodes one snapshot file, validating magic, version and CRC.
    pub fn load(&self, path: impl AsRef<Path>) -> Result<ServerSnapshot, CoreError> {
        let path = path.as_ref();
        let bytes = fs::read(path).map_err(|e| io_err("reading", path, e))?;
        decode_snapshot(&bytes)
    }

    /// All snapshot paths in the directory, ascending by round.
    pub fn snapshots(&self) -> Result<Vec<PathBuf>, CoreError> {
        let mut paths = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("listing", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing", &self.dir, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(EXTENSION) {
                paths.push(path);
            }
        }
        // The zero-padded round in the name makes lexicographic order
        // round order.
        paths.sort();
        Ok(paths)
    }

    /// The newest snapshot that still decodes cleanly, with its path.
    /// Corrupt or truncated files are skipped (not deleted — they may
    /// be evidence worth keeping); returns `Ok(None)` for an empty or
    /// fully corrupt directory.
    pub fn latest_valid(&self) -> Result<Option<(PathBuf, ServerSnapshot)>, CoreError> {
        for path in self.snapshots()?.into_iter().rev() {
            if let Ok(snap) = self.load(&path) {
                return Ok(Some((path, snap)));
            }
        }
        Ok(None)
    }

    fn round_of(path: &Path) -> Option<usize> {
        path.file_stem()?
            .to_str()?
            .strip_prefix("snap-r")?
            .parse()
            .ok()
    }

    fn prune(&self) -> Result<(), CoreError> {
        let paths = self.snapshots()?;
        if paths.len() <= self.keep_last {
            return Ok(());
        }
        let cutoff = paths.len() - self.keep_last;
        for path in &paths[..cutoff] {
            let keep_periodic = self.keep_every > 0
                && Self::round_of(path).is_some_and(|r| r % self.keep_every == 0);
            if !keep_periodic {
                fs::remove_file(path).map_err(|e| io_err("pruning", path, e))?;
            }
        }
        Ok(())
    }
}

impl SnapshotSink for SnapshotStore {
    fn save(&mut self, snap: &ServerSnapshot) -> Result<(), CoreError> {
        self.save_snapshot(snap).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_core::checkpoint::MethodState;

    fn snap(completed_rounds: usize) -> ServerSnapshot {
        ServerSnapshot {
            kind: None,
            method_name: "x".into(),
            completed_rounds,
            rng_words: vec![7; 33],
            method: MethodState::default(),
            rounds: Vec::new(),
            evals: Vec::new(),
            cfg_fingerprint: "cfg".into(),
            pool_p: 1,
            pool_params: vec![1],
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("afl-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        let s = snap(3);
        let path = store.save_snapshot(&s).unwrap();
        assert_eq!(store.load(&path).unwrap(), s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_last_n_plus_periodic() {
        let dir = temp_dir("retention");
        let store = SnapshotStore::open(&dir).unwrap().with_retention(2, 5);
        for r in 1..=12 {
            store.save_snapshot(&snap(r)).unwrap();
        }
        let rounds: Vec<usize> = store
            .snapshots()
            .unwrap()
            .iter()
            .map(|p| SnapshotStore::round_of(p).unwrap())
            .collect();
        // Last 2 (11, 12) plus multiples of 5 (5, 10).
        assert_eq!(rounds, vec![5, 10, 11, 12]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_skips_corrupt_newest() {
        let dir = temp_dir("fallback");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save_snapshot(&snap(1)).unwrap();
        let newest = store.save_snapshot(&snap(2)).unwrap();
        // Corrupt the newest file in place.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();

        let (path, loaded) = store.latest_valid().unwrap().expect("fallback exists");
        assert_eq!(loaded.completed_rounds, 1);
        assert!(path.to_string_lossy().contains("snap-r000001"));

        // Fully corrupt directory → None.
        let older = path;
        let mut bytes = fs::read(&older).unwrap();
        bytes.truncate(6);
        fs::write(&older, &bytes).unwrap();
        assert!(store.latest_valid().unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_mid_write_leaves_previous_snapshot_intact() {
        let dir = temp_dir("atomic");
        let store = SnapshotStore::open(&dir).unwrap();
        let good = snap(4);
        store.save_snapshot(&good).unwrap();
        // Simulate a crash mid-write: a partial temp file next to the
        // good snapshot. latest_valid must ignore it entirely.
        fs::write(dir.join("snap-r000005.tmp"), b"partial").unwrap();
        let (_, loaded) = store.latest_valid().unwrap().expect("good snapshot");
        assert_eq!(loaded, good);
        fs::remove_dir_all(&dir).unwrap();
    }
}
