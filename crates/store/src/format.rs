//! The `.afs` (AdaptiveFL Snapshot) binary format.
//!
//! A file is `MAGIC u32 | VERSION u8 | payload_len u64 | payload |
//! crc32 u32`, big-endian throughout. The CRC covers exactly the
//! payload bytes, so truncation, bit rot and partial writes are all
//! caught before any field is interpreted.
//!
//! The payload is a sequence of tagged sections, each `tag u8 |
//! body_len u64 | body`. Readers skip unknown tags by length, so newer
//! writers can append sections without breaking older readers; the
//! five sections below are all required and may appear in any order.
//!
//! | tag | section  | contents                                        |
//! |-----|----------|-------------------------------------------------|
//! | 1   | config   | cfg fingerprint, method kind + name             |
//! | 2   | progress | completed rounds, pool shape                    |
//! | 3   | rng      | the run RNG's reconstruction words              |
//! | 4   | method   | named parameter maps, RL tables, opaque extras  |
//! | 5   | history  | accumulated round + eval records                |
//!
//! Parameter maps reuse the dense layout of
//! [`adaptivefl_comm::wire::encode_param_map`] (raw `f32` bit patterns
//! — lossless); floats elsewhere are stored as raw bits too, so a
//! decoded snapshot is bit-identical to the encoded one.

use adaptivefl_comm::wire::{decode_param_map, encode_param_map};
use adaptivefl_core::checkpoint::{MethodState, ServerSnapshot};
use adaptivefl_core::compress::FrameReader;
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::metrics::{EvalRecord, RoundRecord};
use adaptivefl_core::rl::RlState;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::CoreError;
use bytes::{BufMut, BytesMut};

use crate::crc::crc32;

/// File magic: `AFS1` in ASCII.
pub const MAGIC: u32 = 0x4146_5331;
/// Format version. Bump on any incompatible layout change; readers
/// refuse other versions.
pub const VERSION: u8 = 1;

const SEC_CONFIG: u8 = 1;
const SEC_PROGRESS: u8 = 2;
const SEC_RNG: u8 = 3;
const SEC_METHOD: u8 = 4;
const SEC_HISTORY: u8 = 5;

fn bad(msg: impl Into<String>) -> CoreError {
    CoreError::Snapshot(msg.into())
}

/// Serialises a snapshot into a complete `.afs` file image.
pub fn encode_snapshot(snap: &ServerSnapshot) -> Vec<u8> {
    let mut payload = BytesMut::new();
    put_section(&mut payload, SEC_CONFIG, |b| {
        put_str32(b, &snap.cfg_fingerprint);
        encode_kind(b, snap.kind);
        put_str16(b, &snap.method_name);
    });
    put_section(&mut payload, SEC_PROGRESS, |b| {
        b.put_u64(snap.completed_rounds as u64);
        b.put_u32(snap.pool_p as u32);
        b.put_u32(snap.pool_params.len() as u32);
        for &p in &snap.pool_params {
            b.put_u64(p);
        }
    });
    put_section(&mut payload, SEC_RNG, |b| {
        b.put_u32(snap.rng_words.len() as u32);
        for &w in &snap.rng_words {
            b.put_u32(w);
        }
    });
    put_section(&mut payload, SEC_METHOD, |b| {
        encode_method_state(b, &snap.method);
    });
    put_section(&mut payload, SEC_HISTORY, |b| {
        b.put_u32(snap.rounds.len() as u32);
        for r in &snap.rounds {
            r.encode(b);
        }
        b.put_u32(snap.evals.len() as u32);
        for e in &snap.evals {
            e.encode(b);
        }
    });

    let mut out = BytesMut::with_capacity(payload.len() + 17);
    out.put_u32(MAGIC);
    out.put_u8(VERSION);
    out.put_u64(payload.len() as u64);
    out.put_slice(&payload);
    out.put_u32(crc32(&payload));
    out.to_vec()
}

/// Parses and validates a `.afs` file image. Any corruption — bad
/// magic, wrong version, truncation, CRC mismatch, malformed section —
/// yields [`CoreError::Snapshot`]; decoding never panics.
pub fn decode_snapshot(file: &[u8]) -> Result<ServerSnapshot, CoreError> {
    let mut r = FrameReader::new(file);
    let magic = r.u32().map_err(|_| bad("file too short for header"))?;
    if magic != MAGIC {
        return Err(bad(format!("bad magic {magic:#010x}")));
    }
    let version = r.u8().map_err(|_| bad("file too short for header"))?;
    if version != VERSION {
        return Err(bad(format!("unsupported snapshot version {version}")));
    }
    let payload_len = r.u64().map_err(|_| bad("file too short for header"))? as usize;
    if r.remaining() < payload_len + 4 {
        return Err(bad(format!(
            "payload declares {payload_len} bytes, file holds {}",
            r.remaining().saturating_sub(4)
        )));
    }
    let payload = r
        .bytes(payload_len)
        .map_err(|_| bad("truncated payload"))?
        .to_vec();
    let stored_crc = r.u32().map_err(|_| bad("missing checksum"))?;
    let actual_crc = crc32(&payload);
    if stored_crc != actual_crc {
        return Err(bad(format!(
            "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    if !r.is_empty() {
        return Err(bad("trailing bytes after checksum"));
    }
    decode_payload(&payload)
}

fn decode_payload(payload: &[u8]) -> Result<ServerSnapshot, CoreError> {
    let mut config = None;
    let mut progress = None;
    let mut rng_words = None;
    let mut method = None;
    let mut history = None;

    let mut r = FrameReader::new(payload);
    while !r.is_empty() {
        let tag = r.u8().map_err(|_| bad("truncated section tag"))?;
        let len = r.u64().map_err(|_| bad("truncated section length"))? as usize;
        let body = r
            .bytes(len)
            .map_err(|_| bad(format!("section {tag} truncated")))?;
        let mut s = FrameReader::new(body);
        match tag {
            SEC_CONFIG => {
                let fp = get_str32(&mut s)?;
                let kind = decode_kind(&mut s)?;
                let name = get_str16(&mut s)?;
                config = Some((fp, kind, name));
            }
            SEC_PROGRESS => {
                let completed = s.u64().map_err(|_| bad("progress: rounds"))? as usize;
                let pool_p = s.u32().map_err(|_| bad("progress: p"))? as usize;
                let n = s.u32().map_err(|_| bad("progress: pool count"))? as usize;
                if s.remaining() < n * 8 {
                    return Err(bad("progress: pool entries exceed section"));
                }
                let mut pool_params = Vec::with_capacity(n);
                for _ in 0..n {
                    pool_params.push(s.u64().map_err(|_| bad("progress: pool entry"))?);
                }
                progress = Some((completed, pool_p, pool_params));
            }
            SEC_RNG => {
                let n = s.u32().map_err(|_| bad("rng: count"))? as usize;
                if s.remaining() < n * 4 {
                    return Err(bad("rng: words exceed section"));
                }
                let mut words = Vec::with_capacity(n);
                for _ in 0..n {
                    words.push(s.u32().map_err(|_| bad("rng: word"))?);
                }
                rng_words = Some(words);
            }
            SEC_METHOD => {
                method = Some(decode_method_state(&mut s)?);
            }
            SEC_HISTORY => {
                let nr = s.u32().map_err(|_| bad("history: round count"))? as usize;
                let mut rounds = Vec::with_capacity(nr.min(s.remaining()));
                for _ in 0..nr {
                    rounds.push(RoundRecord::decode(&mut s)?);
                }
                let ne = s.u32().map_err(|_| bad("history: eval count"))? as usize;
                let mut evals = Vec::with_capacity(ne.min(s.remaining()));
                for _ in 0..ne {
                    evals.push(EvalRecord::decode(&mut s)?);
                }
                history = Some((rounds, evals));
            }
            // Unknown section from a newer writer: skipped by length.
            _ => continue,
        }
        if !s.is_empty() {
            return Err(bad(format!("section {tag}: trailing bytes")));
        }
    }

    let (cfg_fingerprint, kind, method_name) =
        config.ok_or_else(|| bad("missing config section"))?;
    let (completed_rounds, pool_p, pool_params) =
        progress.ok_or_else(|| bad("missing progress section"))?;
    let rng_words = rng_words.ok_or_else(|| bad("missing rng section"))?;
    let method = method.ok_or_else(|| bad("missing method section"))?;
    let (rounds, evals) = history.ok_or_else(|| bad("missing history section"))?;
    Ok(ServerSnapshot {
        kind,
        method_name,
        completed_rounds,
        rng_words,
        method,
        rounds,
        evals,
        cfg_fingerprint,
        pool_p,
        pool_params,
    })
}

fn put_section(buf: &mut BytesMut, tag: u8, fill: impl FnOnce(&mut BytesMut)) {
    let mut body = BytesMut::new();
    fill(&mut body);
    buf.put_u8(tag);
    buf.put_u64(body.len() as u64);
    buf.put_slice(&body);
}

fn put_str16(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_str32(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str16(r: &mut FrameReader<'_>) -> Result<String, CoreError> {
    let len = r.u16().map_err(|_| bad("truncated string length"))? as usize;
    let bytes = r.bytes(len).map_err(|_| bad("truncated string"))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-utf8 string"))
}

fn get_str32(r: &mut FrameReader<'_>) -> Result<String, CoreError> {
    let len = r.u32().map_err(|_| bad("truncated string length"))? as usize;
    if r.remaining() < len {
        return Err(bad("string exceeds section"));
    }
    let bytes = r.bytes(len).map_err(|_| bad("truncated string"))?;
    String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-utf8 string"))
}

/// Encodes an optional [`MethodKind`] as a stable tag pair (flag byte,
/// then kind tag, then for variants a strategy tag). The numeric tags
/// are part of the on-disk format: append-only, never reassign.
fn encode_kind(buf: &mut BytesMut, kind: Option<MethodKind>) {
    let Some(kind) = kind else {
        buf.put_u8(0);
        return;
    };
    buf.put_u8(1);
    match kind {
        MethodKind::AdaptiveFl => buf.put_u8(0),
        MethodKind::AdaptiveFlVariant(s) => {
            buf.put_u8(1);
            buf.put_u8(match s {
                SelectionStrategy::Random => 0,
                SelectionStrategy::CuriosityOnly => 1,
                SelectionStrategy::ResourceOnly => 2,
                SelectionStrategy::CuriosityAndResource => 3,
            });
        }
        MethodKind::AdaptiveFlGreedy => buf.put_u8(2),
        MethodKind::AllLarge => buf.put_u8(3),
        MethodKind::Decoupled => buf.put_u8(4),
        MethodKind::HeteroFl => buf.put_u8(5),
        MethodKind::ScaleFl => buf.put_u8(6),
    }
}

fn decode_kind(r: &mut FrameReader<'_>) -> Result<Option<MethodKind>, CoreError> {
    match r.u8().map_err(|_| bad("truncated kind flag"))? {
        0 => return Ok(None),
        1 => {}
        f => return Err(bad(format!("bad kind flag {f}"))),
    }
    let kind = match r.u8().map_err(|_| bad("truncated kind tag"))? {
        0 => MethodKind::AdaptiveFl,
        1 => {
            let s = match r.u8().map_err(|_| bad("truncated strategy tag"))? {
                0 => SelectionStrategy::Random,
                1 => SelectionStrategy::CuriosityOnly,
                2 => SelectionStrategy::ResourceOnly,
                3 => SelectionStrategy::CuriosityAndResource,
                t => return Err(bad(format!("unknown selection strategy tag {t}"))),
            };
            MethodKind::AdaptiveFlVariant(s)
        }
        2 => MethodKind::AdaptiveFlGreedy,
        3 => MethodKind::AllLarge,
        4 => MethodKind::Decoupled,
        5 => MethodKind::HeteroFl,
        6 => MethodKind::ScaleFl,
        t => return Err(bad(format!("unknown method kind tag {t}"))),
    };
    Ok(Some(kind))
}

fn encode_method_state(buf: &mut BytesMut, state: &MethodState) {
    buf.put_u32(state.params.len() as u32);
    for (name, map) in &state.params {
        put_str16(buf, name);
        encode_param_map(buf, map);
    }
    match &state.rl {
        None => buf.put_u8(0),
        Some(rl) => {
            buf.put_u8(1);
            rl.encode(buf);
        }
    }
    buf.put_u32(state.extra.len() as u32);
    for (key, bytes) in &state.extra {
        put_str16(buf, key);
        buf.put_u64(bytes.len() as u64);
        buf.put_slice(bytes);
    }
}

fn decode_method_state(r: &mut FrameReader<'_>) -> Result<MethodState, CoreError> {
    let np = r.u32().map_err(|_| bad("method: map count"))? as usize;
    let mut params = Vec::with_capacity(np.min(r.remaining()));
    for _ in 0..np {
        let name = get_str16(r)?;
        let map = decode_param_map(r)?;
        params.push((name, map));
    }
    let rl = match r.u8().map_err(|_| bad("method: rl flag"))? {
        0 => None,
        1 => Some(RlState::decode(r)?),
        f => return Err(bad(format!("method: bad rl flag {f}"))),
    };
    let ne = r.u32().map_err(|_| bad("method: extra count"))? as usize;
    let mut extra = Vec::with_capacity(ne.min(r.remaining()));
    for _ in 0..ne {
        let key = get_str16(r)?;
        let len = r.u64().map_err(|_| bad("method: extra length"))? as usize;
        if r.remaining() < len {
            return Err(bad("method: extra exceeds section"));
        }
        extra.push((
            key,
            r.bytes(len)
                .map_err(|_| bad("method: extra body"))?
                .to_vec(),
        ));
    }
    Ok(MethodState { params, rl, extra })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_nn::ParamMap;
    use adaptivefl_tensor::Tensor;

    fn sample_snapshot() -> ServerSnapshot {
        let mut map = ParamMap::new();
        map.insert(
            "w",
            Tensor::from_vec(vec![1.5, -0.25, f32::MIN_POSITIVE], &[3]),
        );
        map.insert("b", Tensor::zeros(&[2, 2]));
        ServerSnapshot {
            kind: Some(MethodKind::AdaptiveFlVariant(
                SelectionStrategy::CuriosityOnly,
            )),
            method_name: "AdaptiveFL+C".into(),
            completed_rounds: 7,
            rng_words: (0..33).collect(),
            method: MethodState {
                params: vec![("global".into(), map)],
                rl: Some(RlState::new(2, 5)),
                extra: vec![("blob".into(), vec![1, 2, 3])],
            },
            rounds: Vec::new(),
            evals: Vec::new(),
            cfg_fingerprint: "SimConfig { .. }".into(),
            pool_p: 2,
            pool_params: vec![10, 20, 30, 40, 50],
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = sample_snapshot();
        let file = encode_snapshot(&snap);
        let back = decode_snapshot(&file).expect("valid file decodes");
        assert_eq!(snap, back);
    }

    #[test]
    fn kind_tags_roundtrip_for_every_variant() {
        let kinds = [
            None,
            Some(MethodKind::AdaptiveFl),
            Some(MethodKind::AdaptiveFlVariant(SelectionStrategy::Random)),
            Some(MethodKind::AdaptiveFlVariant(
                SelectionStrategy::CuriosityOnly,
            )),
            Some(MethodKind::AdaptiveFlVariant(
                SelectionStrategy::ResourceOnly,
            )),
            Some(MethodKind::AdaptiveFlVariant(
                SelectionStrategy::CuriosityAndResource,
            )),
            Some(MethodKind::AdaptiveFlGreedy),
            Some(MethodKind::AllLarge),
            Some(MethodKind::Decoupled),
            Some(MethodKind::HeteroFl),
            Some(MethodKind::ScaleFl),
        ];
        for kind in kinds {
            let mut buf = BytesMut::new();
            encode_kind(&mut buf, kind);
            let mut r = FrameReader::new(&buf);
            assert_eq!(decode_kind(&mut r).expect("valid tag"), kind);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn every_corrupting_byte_flip_is_detected() {
        let snap = sample_snapshot();
        let mut file = encode_snapshot(&snap);
        // Flip one bit in every byte; decode must either fail or (never)
        // silently return a different snapshot.
        for i in 0..file.len() {
            file[i] ^= 0x40;
            match decode_snapshot(&file) {
                Err(_) => {}
                Ok(back) => panic!("flip at byte {i} survived decode (equal: {})", back == snap),
            }
            file[i] ^= 0x40;
        }
        assert_eq!(decode_snapshot(&file).expect("restored"), snap);
    }

    #[test]
    fn truncation_is_detected() {
        let file = encode_snapshot(&sample_snapshot());
        for cut in [0, 1, 4, 12, file.len() / 2, file.len() - 1] {
            assert!(decode_snapshot(&file[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_trailing_section_is_skipped() {
        let snap = sample_snapshot();
        let file = encode_snapshot(&snap);
        // Rebuild the file with an extra unknown section appended to the
        // payload (as a newer writer would produce).
        let payload_len = u64::from_be_bytes(file[5..13].try_into().unwrap()) as usize;
        let mut payload = file[13..13 + payload_len].to_vec();
        payload.push(200); // unknown tag
        payload.extend_from_slice(&3u64.to_be_bytes());
        payload.extend_from_slice(&[9, 9, 9]);
        let mut rebuilt = Vec::new();
        rebuilt.extend_from_slice(&MAGIC.to_be_bytes());
        rebuilt.push(VERSION);
        rebuilt.extend_from_slice(&(payload.len() as u64).to_be_bytes());
        rebuilt.extend_from_slice(&payload);
        rebuilt.extend_from_slice(&crc32(&payload).to_be_bytes());
        assert_eq!(decode_snapshot(&rebuilt).expect("skips unknown"), snap);
    }
}
