//! `adaptivefl-store`: crash-safe checkpoint persistence and
//! deterministic resume for AdaptiveFL experiment runs.
//!
//! The simulator (`adaptivefl-core`) freezes a run into a
//! [`ServerSnapshot`](adaptivefl_core::checkpoint::ServerSnapshot);
//! this crate owns everything about putting that snapshot on disk and
//! getting it back intact:
//!
//! * [`format`] — the versioned `.afs` binary layout: magic, tagged
//!   sections, raw float bits (lossless), CRC-32 over the payload.
//! * [`crc`] — the CRC-32 (IEEE) implementation guarding each file.
//! * [`store`] — [`SnapshotStore`]: a snapshot directory with atomic
//!   temp-file + rename writes, a keep-last-N-plus-every-K-th
//!   retention policy, and corruption-tolerant fallback to the newest
//!   snapshot that still decodes.
//!
//! The determinism contract is inherited from core: resuming from any
//! snapshot replays the remaining rounds with the exact RNG stream and
//! server state of the uninterrupted run, so accuracies, RL tables and
//! communication statistics match to the last bit at any thread count.
//!
//! [`run_or_resume`] is the one-call entry point the benchmark
//! binaries use: continue from the newest valid snapshot in a
//! directory if one exists, otherwise start fresh — checkpointing
//! either way.

pub mod crc;
pub mod format;
pub mod store;

pub use format::{decode_snapshot, encode_snapshot, MAGIC, VERSION};
pub use store::{SnapshotStore, EXTENSION};

use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::metrics::RunResult;
use adaptivefl_core::sim::{RunHooks, Simulation};
use adaptivefl_core::trace::{Phase, PhaseTimer, TraceEvent};
use adaptivefl_core::transport::Transport;
use adaptivefl_core::CoreError;

/// Runs `kind` to completion, checkpointing into `store` every
/// `every` rounds — resuming from the newest valid snapshot in the
/// store if one exists (corrupt snapshots are skipped), starting
/// fresh otherwise.
///
/// The store directory must be dedicated to this one run: snapshots
/// of a different method or configuration in the same directory fail
/// resume validation with [`CoreError::Snapshot`].
pub fn run_or_resume(
    sim: &mut Simulation,
    kind: MethodKind,
    transport: &mut dyn Transport,
    store: &mut SnapshotStore,
    every: usize,
) -> Result<RunResult, CoreError> {
    let load_timer = PhaseTimer::start(sim.env().tracer(), Phase::Checkpoint);
    let resume_point = store.latest_valid()?;
    load_timer.stop(sim.env().tracer());
    if let Some((_, snap)) = &resume_point {
        if sim.env().tracer().enabled() {
            sim.env().tracer().event(TraceEvent::CheckpointLoad {
                round: snap.completed_rounds,
            });
        }
    }
    let hooks = RunHooks {
        checkpoint_every: every,
        sink: store,
        halt_after: None,
    };
    let result = match &resume_point {
        Some((_, snap)) => sim.resume_with_hooks(snap, transport, hooks)?,
        None => sim.run_with_hooks(kind, transport, hooks)?,
    };
    Ok(result.expect("no halt configured, so the run completes"))
}
