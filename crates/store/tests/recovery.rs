//! End-to-end crash/recovery: for every method kind, under both the
//! lossless sequential transport and a faulty parallel one, a run
//! checkpointed to disk mid-way and resumed in a fresh process-like
//! simulation reproduces the uninterrupted run bit-for-bit — same
//! accuracies, same simulated times, same [`CommStats`]. Plus the
//! corruption story: a damaged newest snapshot falls back to the
//! previous valid one, and resume still converges to the same result.

use std::fs;
use std::path::PathBuf;

use adaptivefl_comm::{FaultPlan, SimTransport};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::sim::{SimConfig, Simulation};
use adaptivefl_core::transport::{PerfectTransport, Transport};
use adaptivefl_data::{Partition, SynthSpec};
use adaptivefl_store::{run_or_resume, SnapshotStore};

fn spec() -> SynthSpec {
    let mut s = SynthSpec::test_spec(4);
    s.input = (3, 8, 8);
    s
}

fn prepare(seed: u64) -> Simulation {
    let mut cfg = SimConfig::quick_test(seed);
    cfg.rounds = 5;
    Simulation::prepare(&cfg, &spec(), Partition::Dirichlet(0.5))
}

fn faulty_transport() -> SimTransport {
    SimTransport::new()
        .with_threads(2)
        .with_faults(FaultPlan {
            upload_drop: 0.2,
            straggler_prob: 0.2,
            crash_prob: 0.1,
            ..Default::default()
        })
        .with_deadline(400.0)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afl-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn all_kinds() -> [MethodKind; 7] {
    [
        MethodKind::AdaptiveFl,
        MethodKind::AdaptiveFlGreedy,
        MethodKind::AdaptiveFlVariant(SelectionStrategy::Random),
        MethodKind::AllLarge,
        MethodKind::Decoupled,
        MethodKind::HeteroFl,
        MethodKind::ScaleFl,
    ]
}

/// Checkpoint at round 2 via the disk store, then resume from the file
/// in a fresh simulation; the result must equal the uninterrupted run.
fn assert_recovers(kind: MethodKind, make_transport: &dyn Fn() -> Box<dyn Transport>, tag: &str) {
    let control = prepare(700).run_with_transport(kind, &mut *make_transport());

    let dir = temp_dir(&format!("{tag}-{kind}"));
    let mut store = SnapshotStore::open(&dir).unwrap();
    let mut sim = prepare(700);
    sim.run_with_hooks(
        kind,
        &mut *make_transport(),
        adaptivefl_core::sim::RunHooks {
            checkpoint_every: 0,
            sink: &mut store,
            halt_after: Some(2),
        },
    )
    .unwrap();

    // Everything in-memory is gone; only the snapshot file survives.
    let (_, snap) = store
        .latest_valid()
        .unwrap()
        .expect("halt wrote a snapshot");
    assert_eq!(snap.completed_rounds, 2, "{kind}");
    let resumed = prepare(700)
        .resume_with_transport(&snap, &mut *make_transport())
        .unwrap();
    assert_eq!(control, resumed, "{kind} over {tag} diverged after resume");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_kind_recovers_over_perfect_transport() {
    for kind in all_kinds() {
        assert_recovers(kind, &|| Box::new(PerfectTransport), "perfect");
    }
}

#[test]
fn every_kind_recovers_over_faulty_parallel_transport() {
    for kind in all_kinds() {
        assert_recovers(kind, &|| Box::new(faulty_transport()), "faulty");
    }
}

#[test]
fn faulty_transport_resume_is_thread_count_invariant() {
    // Checkpoint under a 2-thread transport, resume under 1 and 3
    // threads: all identical (the executor derives client RNG and
    // faults from (seed, round, client), not from scheduling).
    let kind = MethodKind::AdaptiveFl;
    let control = prepare(701).run_with_transport(kind, &mut faulty_transport());

    let dir = temp_dir("threads");
    let mut store = SnapshotStore::open(&dir).unwrap();
    prepare(701)
        .run_with_hooks(
            kind,
            &mut faulty_transport(),
            adaptivefl_core::sim::RunHooks {
                checkpoint_every: 0,
                sink: &mut store,
                halt_after: Some(3),
            },
        )
        .unwrap();
    let (_, snap) = store.latest_valid().unwrap().expect("snapshot saved");
    for threads in [1usize, 3] {
        let mut transport = faulty_transport().with_threads(threads);
        let resumed = prepare(701)
            .resume_with_transport(&snap, &mut transport)
            .unwrap();
        assert_eq!(control, resumed, "{threads}-thread resume diverged");
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_or_resume_restarts_and_finishes_after_a_crash() {
    let kind = MethodKind::AdaptiveFl;
    let control = prepare(702).run_with_transport(kind, &mut PerfectTransport);

    let dir = temp_dir("run-or-resume");
    // "Process 1" crashes after 3 rounds (checkpointing every round).
    {
        let mut store = SnapshotStore::open(&dir).unwrap();
        let halted = prepare(702)
            .run_with_hooks(
                kind,
                &mut PerfectTransport,
                adaptivefl_core::sim::RunHooks {
                    checkpoint_every: 1,
                    sink: &mut store,
                    halt_after: Some(3),
                },
            )
            .unwrap();
        assert!(halted.is_none());
    }
    // "Process 2" picks up from disk and completes.
    let mut store = SnapshotStore::open(&dir).unwrap();
    let mut sim = prepare(702);
    let resumed = run_or_resume(&mut sim, kind, &mut PerfectTransport, &mut store, 1).unwrap();
    assert_eq!(control, resumed);

    // A third call resumes from the last pre-final checkpoint and
    // reproduces the same completed result again.
    let mut sim = prepare(702);
    let again = run_or_resume(&mut sim, kind, &mut PerfectTransport, &mut store, 1).unwrap();
    assert_eq!(control, again);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_newest_snapshot_falls_back_and_still_matches() {
    let kind = MethodKind::HeteroFl;
    let control = prepare(703).run_with_transport(kind, &mut PerfectTransport);

    let dir = temp_dir("corrupt-fallback");
    let mut store = SnapshotStore::open(&dir).unwrap();
    let mut sim = prepare(703);
    // Full run, checkpointing every round (snapshots after rounds 1-4).
    sim.run_with_checkpoints(kind, &mut PerfectTransport, 1, &mut store)
        .unwrap();
    let paths = store.snapshots().unwrap();
    assert_eq!(paths.len(), 3, "retention keeps the last 3");

    // Bit-rot the newest snapshot on disk.
    let newest = paths.last().unwrap();
    let mut bytes = fs::read(newest).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x10;
    fs::write(newest, &bytes).unwrap();

    // The store skips it and resumes from the older valid snapshot —
    // re-running one extra round, landing on the identical result.
    let (path, snap) = store.latest_valid().unwrap().expect("fallback found");
    assert_ne!(&path, newest, "corrupt newest must be skipped");
    let resumed = prepare(703).resume_from(&snap).unwrap();
    assert_eq!(control, resumed);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_rejects_snapshot_from_other_run() {
    let dir = temp_dir("mismatch");
    let mut store = SnapshotStore::open(&dir).unwrap();
    prepare(704)
        .run_with_checkpoints(MethodKind::AdaptiveFl, &mut PerfectTransport, 2, &mut store)
        .unwrap();
    let (_, snap) = store.latest_valid().unwrap().expect("snapshot saved");

    // Same config, different method.
    assert!(prepare(704)
        .resume_with_transport(&snap, &mut PerfectTransport)
        .is_ok());
    let mut wrong = snap.clone();
    wrong.kind = Some(MethodKind::ScaleFl);
    assert!(prepare(704).resume_from(&wrong).is_err());

    // Different configuration entirely.
    assert!(prepare(705).resume_from(&snap).is_err());
    fs::remove_dir_all(&dir).unwrap();
}
