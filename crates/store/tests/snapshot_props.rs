//! Property tests for the `.afs` format: every snapshot section
//! round-trips bit-exactly through encode/decode, and corruption —
//! random byte damage, truncation anywhere — is always detected, never
//! a panic or a silently different snapshot.

use adaptivefl_core::checkpoint::{MethodState, ServerSnapshot};
use adaptivefl_core::methods::MethodKind;
use adaptivefl_core::metrics::{EvalRecord, RoundRecord, RunResult};
use adaptivefl_core::pool::{ModelPool, DEFAULT_RATIOS};
use adaptivefl_core::rl::RlState;
use adaptivefl_core::select::SelectionStrategy;
use adaptivefl_core::transport::CommStats;
use adaptivefl_models::ModelConfig;
use adaptivefl_nn::ParamMap;
use adaptivefl_store::{decode_snapshot, encode_snapshot};
use adaptivefl_tensor::Tensor;
use proptest::prelude::*;

/// SplitMix64 step — a cheap deterministic value stream per drawn seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A parameter map of `n` tensors filled with arbitrary `f32` bit
/// patterns (NaNs and infinities included — the format must carry
/// them unchanged).
fn arbitrary_map(n: usize, seed: u64) -> ParamMap {
    let mut state = seed;
    let mut map = ParamMap::new();
    for i in 0..n {
        let d0 = 1 + (splitmix(&mut state) % 4) as usize;
        let d1 = 1 + (splitmix(&mut state) % 6) as usize;
        let data: Vec<f32> = (0..d0 * d1)
            .map(|_| f32::from_bits(splitmix(&mut state) as u32))
            .collect();
        map.insert(format!("layer{i}.w"), Tensor::from_vec(data, &[d0, d1]));
    }
    map
}

/// An RL state driven through a drawn sequence of Algorithm-1 updates,
/// so the tables carry non-trivial trained values.
fn trained_rl(pool: &ModelPool, clients: usize, ops: u64, seed: u64) -> RlState {
    let mut state = seed;
    let mut rl = RlState::new(pool.p(), clients);
    for _ in 0..ops {
        let client = (splitmix(&mut state) as usize) % clients;
        let sent = (splitmix(&mut state) as usize) % pool.len();
        let returned = match splitmix(&mut state) % 3 {
            0 => None,
            1 => Some(sent),
            _ => Some((splitmix(&mut state) as usize) % (sent + 1)),
        };
        rl.update_on_return(pool, sent, returned, client);
    }
    rl
}

fn arbitrary_rounds(n: usize, seed: u64) -> Vec<RoundRecord> {
    let mut state = seed;
    (0..n)
        .map(|round| RoundRecord {
            round,
            sent_params: splitmix(&mut state) % 1_000_000,
            returned_params: splitmix(&mut state) % 1_000_000,
            train_loss: f32::from_bits(splitmix(&mut state) as u32),
            sim_secs: (splitmix(&mut state) % 10_000) as f64 / 7.0,
            failures: (splitmix(&mut state) % 11) as usize,
            comm: CommStats {
                bytes_down: splitmix(&mut state) % 1_000_000,
                bytes_up: splitmix(&mut state) % 1_000_000,
                drops: (splitmix(&mut state) % 5) as usize,
                stragglers: (splitmix(&mut state) % 5) as usize,
                deadline_misses: (splitmix(&mut state) % 5) as usize,
                crashes: (splitmix(&mut state) % 5) as usize,
            },
        })
        .collect()
}

fn arbitrary_evals(n: usize, seed: u64) -> Vec<EvalRecord> {
    let mut state = seed;
    (0..n)
        .map(|i| EvalRecord {
            round: i * 2 + 1,
            full: f32::from_bits(splitmix(&mut state) as u32),
            levels: (0..(splitmix(&mut state) % 4) as usize)
                .map(|l| {
                    (
                        format!("L{l}"),
                        (splitmix(&mut state) % 1000) as f32 / 1000.0,
                    )
                })
                .collect(),
        })
        .collect()
}

fn build_snapshot(
    maps: usize,
    rl_ops: u64,
    history: usize,
    kind_draw: u64,
    seed: u64,
) -> ServerSnapshot {
    let pool = ModelPool::split(&ModelConfig::tiny(10), 2, DEFAULT_RATIOS);
    let kinds = [
        None,
        Some(MethodKind::AdaptiveFl),
        Some(MethodKind::AdaptiveFlVariant(SelectionStrategy::Random)),
        Some(MethodKind::AdaptiveFlGreedy),
        Some(MethodKind::AllLarge),
        Some(MethodKind::Decoupled),
        Some(MethodKind::HeteroFl),
        Some(MethodKind::ScaleFl),
    ];
    let mut state = seed ^ 0xD1F7;
    ServerSnapshot {
        kind: kinds[(kind_draw as usize) % kinds.len()],
        method_name: format!("method-{}", seed % 97),
        completed_rounds: history,
        rng_words: (0..33).map(|_| splitmix(&mut state) as u32).collect(),
        method: MethodState {
            params: (0..maps)
                .map(|i| (format!("map{i}"), arbitrary_map(1 + i % 3, seed ^ i as u64)))
                .collect(),
            rl: if rl_ops > 0 {
                Some(trained_rl(&pool, 6, rl_ops, seed))
            } else {
                None
            },
            extra: vec![("opaque".into(), seed.to_be_bytes().to_vec())],
        },
        rounds: arbitrary_rounds(history, seed ^ 0xABCD),
        evals: arbitrary_evals(history / 2, seed ^ 0x1234),
        cfg_fingerprint: format!("SimConfig {{ seed: {seed}, .. }}"),
        pool_p: 2,
        pool_params: (1..=5).map(|i| i * 1000 + seed % 13).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshots_roundtrip_bit_exactly(
        maps in 0usize..4,
        rl_ops in 0u64..40,
        history in 0usize..8,
        kind_draw in 0u64..1000,
        seed in 0u64..u64::MAX,
    ) {
        let snap = build_snapshot(maps, rl_ops, history, kind_draw, seed);
        let file = encode_snapshot(&snap);
        let back = decode_snapshot(&file).expect("intact file decodes");
        // PartialEq on f32/f64 would reject preserved NaNs, so compare
        // through a second encode: bit-identical files mean
        // bit-identical snapshots.
        prop_assert_eq!(file, encode_snapshot(&back));
        prop_assert_eq!(snap.completed_rounds, back.completed_rounds);
        prop_assert_eq!(snap.kind, back.kind);
        prop_assert_eq!(snap.rng_words, back.rng_words);
    }

    #[test]
    fn decoded_history_reproduces_derived_metrics(
        history in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        // The summarize path: a RunResult reassembled from a decoded
        // snapshot history yields the same waste rate / totals as the
        // original (guarding the comm_waste_rate fix end to end).
        let snap = build_snapshot(1, 5, history, 1, seed);
        let back = decode_snapshot(&encode_snapshot(&snap)).expect("decodes");
        let a = RunResult::from_history("m", snap.rounds, snap.evals);
        let b = RunResult::from_history("m", back.rounds, back.evals);
        prop_assert_eq!(a.comm_waste_rate().to_bits(), b.comm_waste_rate().to_bits());
        prop_assert_eq!(a.total_sim_secs().to_bits(), b.total_sim_secs().to_bits());
        prop_assert_eq!(a.total_comm(), b.total_comm());
        prop_assert_eq!(
            a.best_full_accuracy().to_bits(),
            b.best_full_accuracy().to_bits()
        );
    }

    #[test]
    fn random_byte_damage_is_always_detected(
        seed in 0u64..u64::MAX,
        pos_draw in 0u64..u64::MAX,
        xor in 1u8..=255,
    ) {
        let snap = build_snapshot(2, 10, 4, 2, seed);
        let mut file = encode_snapshot(&snap);
        let pos = (pos_draw as usize) % file.len();
        file[pos] ^= xor;
        match decode_snapshot(&file) {
            Err(_) => {}
            // A flip inside a string/extra byte could in principle decode;
            // it must then still differ from the original only in ways the
            // CRC would have caught — i.e. this must be unreachable.
            Ok(_) => prop_assert!(false, "corruption at byte {pos} (^{xor:#04x}) went undetected"),
        }
    }

    #[test]
    fn truncation_is_always_detected(
        seed in 0u64..u64::MAX,
        frac in 0.0f64..1.0,
    ) {
        let snap = build_snapshot(1, 5, 3, 3, seed);
        let file = encode_snapshot(&snap);
        let cut = (((file.len() as f64) * frac) as usize).min(file.len() - 1);
        prop_assert!(
            decode_snapshot(&file[..cut]).is_err(),
            "prefix of {} / {} bytes decoded",
            cut,
            file.len()
        );
    }
}
