//! Exhaustive central finite-difference gradient checks: every layer
//! type, every trainable parameter coordinate, every input coordinate,
//! plus both losses. Complements `layer_gradients.rs` (randomised
//! shapes, spot-checked coordinates) with full-coverage fixed shapes.
//!
//! Loss is `forward(x, train=true).sum()`, so `dy = ones` and the
//! analytic gradients come straight from one `backward` call. All
//! checks run in train mode — batch-norm's train-mode output depends
//! only on the current batch, so repeated FD forwards are safe.

use adaptivefl_nn::layer::{Layer, ParamKind};
use adaptivefl_nn::layers::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
};
use adaptivefl_nn::loss::{distillation_loss, softmax_cross_entropy};
use adaptivefl_tensor::{init, rng, Tensor};

/// Central-difference step. f32 FD noise scales like eps² for the
/// truncation term plus EPSILON/eps for round-off; 1e-2 balances both.
const EPS: f32 = 1e-2;

/// Relative tolerance for f32 central differences: ~64·√EPSILON ≈ 0.022.
fn tol() -> f32 {
    64.0 * f32::EPSILON.sqrt()
}

fn loss_of(layer: &mut dyn Layer, x: &Tensor) -> f32 {
    layer.forward(x.clone(), true).sum()
}

fn assert_close(num: f32, ana: f32, tol: f32, what: &str) {
    let scale = 1.0 + ana.abs().max(num.abs());
    assert!(
        (num - ana).abs() <= tol * scale,
        "{what}: numeric {num} vs analytic {ana} (tol {tol}, scale {scale})"
    );
}

/// Checks EVERY input coordinate and EVERY trainable parameter
/// coordinate of `layer` against central finite differences.
fn check_all_coordinates(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
    layer.zero_grads();
    let y = layer.forward(x.clone(), true);
    let dx = layer.backward(Tensor::ones(y.shape()));
    assert_eq!(dx.shape(), x.shape(), "backward must mirror input shape");

    // Every input coordinate.
    for idx in 0..x.numel() {
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += EPS;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= EPS;
        let num = (loss_of(layer, &xp) - loss_of(layer, &xm)) / (2.0 * EPS);
        assert_close(num, dx.as_slice()[idx], tol, &format!("input[{idx}]"));
    }

    // Every coordinate of every trainable parameter. Snapshot the
    // analytic grads first (bumping params below reruns forward only).
    let mut params: Vec<(String, usize, Vec<f32>)> = Vec::new();
    layer.visit_params("", &mut |name: &str,
                                 kind: ParamKind,
                                 v: &Tensor,
                                 g: &Tensor| {
        if kind.is_trainable() {
            params.push((name.to_string(), v.numel(), g.as_slice().to_vec()));
        }
    });
    for (name, numel, grads) in &params {
        assert_eq!(*numel, grads.len());
        for (i, &ana) in grads.iter().enumerate() {
            let bump = |delta: f32, layer: &mut dyn Layer| {
                layer.visit_params_mut(
                    "",
                    &mut |n: &str, _: ParamKind, v: &mut Tensor, _: &mut Tensor| {
                        if n == name {
                            v.as_mut_slice()[i] += delta;
                        }
                    },
                );
            };
            bump(EPS, layer);
            let lp = loss_of(layer, x);
            bump(-2.0 * EPS, layer);
            let lm = loss_of(layer, x);
            bump(EPS, layer); // restore
            let num = (lp - lm) / (2.0 * EPS);
            assert_close(num, ana, tol, &format!("{name}[{i}]"));
        }
    }
}

#[test]
fn linear_full_gradient_check() {
    let mut r = rng::seeded(100);
    let mut fc = Linear::new(3, 4, &mut r);
    let x = init::normal(&[2, 3], 1.0, &mut r);
    check_all_coordinates(&mut fc, &x, tol());
}

#[test]
fn conv2d_padded_full_gradient_check() {
    let mut r = rng::seeded(101);
    let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut r);
    let x = init::normal(&[2, 2, 5, 5], 1.0, &mut r);
    check_all_coordinates(&mut conv, &x, tol());
}

#[test]
fn conv2d_strided_unpadded_full_gradient_check() {
    // Stride 2, no padding: exercises the non-unit-stride index math
    // and output cells whose receptive fields don't tile the input.
    let mut r = rng::seeded(102);
    let mut conv = Conv2d::new(1, 2, 3, 2, 0, &mut r);
    let x = init::normal(&[1, 1, 7, 7], 1.0, &mut r);
    check_all_coordinates(&mut conv, &x, tol());
}

#[test]
fn depthwise_conv_full_gradient_check() {
    let mut r = rng::seeded(103);
    let mut dw = DepthwiseConv2d::new(3, 3, 1, 1, &mut r);
    let x = init::normal(&[2, 3, 5, 5], 1.0, &mut r);
    check_all_coordinates(&mut dw, &x, tol());
}

#[test]
fn batchnorm_full_gradient_check() {
    // Train-mode BN normalises by batch statistics, so every input
    // coordinate influences every output in its channel — the FD
    // signal is small relative to the values, hence the looser bound.
    let mut r = rng::seeded(104);
    let mut bn = BatchNorm2d::new(2);
    let x = init::normal(&[3, 2, 4, 4], 1.0, &mut r);
    check_all_coordinates(&mut bn, &x, 4.0 * tol());
}

#[test]
fn relu_full_gradient_check() {
    // Push every value away from the kink at 0 so the ±EPS stencil
    // never straddles it.
    let mut r = rng::seeded(105);
    let x = init::normal(&[3, 7], 1.0, &mut r).map(|v| {
        let v = if v.abs() < 0.1 { v + 0.25 } else { v };
        debug_assert!(v.abs() > 2.0 * EPS);
        v
    });
    check_all_coordinates(&mut Relu::new(), &x, tol());
}

#[test]
fn flatten_full_gradient_check() {
    let mut r = rng::seeded(106);
    let x = init::normal(&[2, 3, 2, 2], 1.0, &mut r);
    check_all_coordinates(&mut Flatten::new(), &x, tol());
}

#[test]
fn maxpool_full_gradient_check() {
    // Values spaced ≥ 0.5 apart so a ±EPS bump can never flip an
    // argmax and break FD.
    let n = 2 * 4 * 4;
    let mut vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    // Shuffle deterministically so winners aren't always last-in-window.
    for i in 0..n {
        vals.swap(i, (i * 13 + 5) % n);
    }
    let x = Tensor::from_vec(vals, &[1, 2, 4, 4]);
    check_all_coordinates(&mut MaxPool2d::new(2), &x, tol());
}

#[test]
fn global_avg_pool_full_gradient_check() {
    let mut r = rng::seeded(107);
    let x = init::normal(&[2, 3, 3, 3], 1.0, &mut r);
    check_all_coordinates(&mut GlobalAvgPool::new(), &x, tol());
}

#[test]
fn cross_entropy_full_gradient_check() {
    let mut r = rng::seeded(108);
    let logits = init::normal(&[3, 4], 1.0, &mut r);
    let labels = [2usize, 0, 3];
    let ana = softmax_cross_entropy(&logits, &labels).dlogits;
    for idx in 0..logits.numel() {
        let mut lp = logits.clone();
        lp.as_mut_slice()[idx] += EPS;
        let mut lm = logits.clone();
        lm.as_mut_slice()[idx] -= EPS;
        let num = (softmax_cross_entropy(&lp, &labels).loss
            - softmax_cross_entropy(&lm, &labels).loss)
            / (2.0 * EPS);
        assert_close(num, ana.as_slice()[idx], tol(), &format!("logits[{idx}]"));
    }
}

#[test]
fn distillation_full_gradient_check() {
    let mut r = rng::seeded(109);
    let student = init::normal(&[2, 3], 1.0, &mut r);
    let teacher = init::normal(&[2, 3], 1.0, &mut r);
    const T: f32 = 2.5;
    let ana = distillation_loss(&student, &teacher, T).dlogits;
    for idx in 0..student.numel() {
        let mut sp = student.clone();
        sp.as_mut_slice()[idx] += EPS;
        let mut sm = student.clone();
        sm.as_mut_slice()[idx] -= EPS;
        let num = (distillation_loss(&sp, &teacher, T).loss
            - distillation_loss(&sm, &teacher, T).loss)
            / (2.0 * EPS);
        assert_close(num, ana.as_slice()[idx], tol(), &format!("student[{idx}]"));
    }
}

#[test]
fn gradient_checks_cover_kernel_dispatch() {
    // The checks above run with the blocked kernels (default). Assert
    // the analytic gradients themselves are bit-identical under
    // TENSOR_NAIVE by comparing backward outputs across a fresh layer
    // pair — the kernels promise bit-identity, so grads must match
    // exactly, not just within FD tolerance.
    let build = || {
        let mut r = rng::seeded(110);
        let fc = Linear::new(5, 4, &mut r);
        let x = init::normal(&[3, 5], 1.0, &mut r);
        (fc, x)
    };
    let (mut a, xa) = build();
    let (mut b, xb) = build();
    assert_eq!(xa, xb);
    let ya = a.forward(xa.clone(), true);
    let yb = b.forward(xb.clone(), true);
    assert_eq!(ya, yb);
    let da = a.backward(Tensor::ones(ya.shape()));
    let db = b.backward(Tensor::ones(yb.shape()));
    for (ga, gb) in da.as_slice().iter().zip(db.as_slice()) {
        assert_eq!(ga.to_bits(), gb.to_bits());
    }
}
