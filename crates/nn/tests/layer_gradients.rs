//! Randomised finite-difference gradient checks for every layer type,
//! over randomly drawn shapes (proptest). Complements the fixed-shape
//! unit tests inside each layer module.

use adaptivefl_nn::layer::{Layer, ParamKind};
use adaptivefl_nn::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Linear, MaxPool2d, Relu};
use adaptivefl_tensor::{init, rng, Tensor};
use proptest::prelude::*;

/// Sum-of-outputs loss; dy = ones.
fn loss_of(layer: &mut dyn Layer, x: &Tensor) -> f32 {
    layer.forward(x.clone(), false).sum()
}

/// Checks one weight coordinate and one input coordinate of `layer`
/// against central finite differences.
fn check_layer(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
    layer.zero_grads();
    let y = layer.forward(x.clone(), true);
    let dx = layer.backward(Tensor::ones(y.shape()));

    // Input gradient at the middle coordinate.
    let eps = 1e-2f32;
    let idx = x.numel() / 2;
    let mut xp = x.clone();
    xp.as_mut_slice()[idx] += eps;
    let mut xm = x.clone();
    xm.as_mut_slice()[idx] -= eps;
    let num = (loss_of(layer, &xp) - loss_of(layer, &xm)) / (2.0 * eps);
    let ana = dx.as_slice()[idx];
    assert!(
        (num - ana).abs() <= tol * (1.0 + ana.abs().max(num.abs())),
        "input grad: numeric {num} vs analytic {ana}"
    );

    // One trainable parameter coordinate (if any).
    let mut target: Option<(String, usize, f32)> = None;
    layer.visit_params("", &mut |name: &str,
                                 kind: ParamKind,
                                 v: &Tensor,
                                 g: &Tensor| {
        if target.is_none() && kind == ParamKind::Weight && v.numel() > 0 {
            let i = v.numel() / 2;
            target = Some((name.to_string(), i, g.as_slice()[i]));
        }
    });
    if let Some((name, i, ana)) = target {
        let bump = |delta: f32, layer: &mut dyn Layer| {
            layer.visit_params_mut(
                "",
                &mut |n: &str, _: ParamKind, v: &mut Tensor, _: &mut Tensor| {
                    if n == name {
                        v.as_mut_slice()[i] += delta;
                    }
                },
            );
        };
        bump(eps, layer);
        let lp = loss_of(layer, x);
        bump(-2.0 * eps, layer);
        let lm = loss_of(layer, x);
        bump(eps, layer);
        let num = (lp - lm) / (2.0 * eps);
        assert!(
            (num - ana).abs() <= tol * (1.0 + ana.abs().max(num.abs())),
            "weight grad {name}[{i}]: numeric {num} vs analytic {ana}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conv2d_gradients(in_c in 1usize..4, out_c in 1usize..5, hw in 3usize..7, seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let mut conv = Conv2d::new(in_c, out_c, 3, 1, 1, &mut r);
        let x = init::normal(&[2, in_c, hw, hw], 1.0, &mut r);
        check_layer(&mut conv, &x, 0.05);
    }

    #[test]
    fn depthwise_gradients(c in 1usize..5, hw in 3usize..7, seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let mut dw = DepthwiseConv2d::new(c, 3, 1, 1, &mut r);
        let x = init::normal(&[2, c, hw, hw], 1.0, &mut r);
        check_layer(&mut dw, &x, 0.05);
    }

    #[test]
    fn linear_gradients(in_f in 1usize..8, out_f in 1usize..6, n in 1usize..5, seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let mut fc = Linear::new(in_f, out_f, &mut r);
        let x = init::normal(&[n, in_f], 1.0, &mut r);
        check_layer(&mut fc, &x, 0.05);
    }

    #[test]
    fn relu_gradients(n in 2usize..40, seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let mut relu = Relu::new();
        // Keep values away from the kink at 0 where FD is undefined.
        let x = init::normal(&[n], 1.0, &mut r)
            .map(|v| if v.abs() < 0.1 { v + 0.2 } else { v });
        check_layer(&mut relu, &x, 0.05);
    }

    #[test]
    fn maxpool_gradients(c in 1usize..4, seed in 0u64..1000) {
        let _r = rng::seeded(seed);
        let mut pool = MaxPool2d::new(2);
        // Distinct values so the argmax is FD-stable.
        let n = c * 4 * 4;
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.731 + seed as f32).sin() * 3.0).collect();
        let x = Tensor::from_vec(data, &[1, c, 4, 4]);
        check_layer(&mut pool, &x, 0.05);
    }

    /// BN in eval mode is an affine map; its gradients are exact.
    #[test]
    fn batchnorm_train_gradients(c in 1usize..4, seed in 0u64..1000) {
        let mut r = rng::seeded(seed);
        let mut bn = BatchNorm2d::new(c);
        let x = init::normal(&[3, c, 3, 3], 1.0, &mut r);
        // Train-mode loss for FD must also be train mode; use a
        // bespoke check since `check_layer` evaluates in eval mode and
        // BN's train/eval outputs differ.
        bn.zero_grads();
        let y = bn.forward(x.clone(), true);
        let dx = bn.backward(Tensor::ones(y.shape()));
        let eps = 1e-2f32;
        let idx = x.numel() / 2;
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        let lp = bn.forward(xp, true).sum();
        let lm = bn.forward(xm, true).sum();
        let num = (lp - lm) / (2.0 * eps);
        let ana = dx.as_slice()[idx];
        prop_assert!(
            (num - ana).abs() <= 0.08 * (1.0 + ana.abs().max(num.abs())),
            "bn input grad: numeric {} vs analytic {}", num, ana
        );
    }
}
