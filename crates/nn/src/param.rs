//! [`ParamMap`] — the unit of federated exchange: an ordered map from
//! hierarchical parameter names to tensors.

use std::collections::BTreeMap;

use adaptivefl_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An ordered (deterministically iterable) map of named parameters.
///
/// This is what the server dispatches to clients and what clients
/// upload back; its [`ParamMap::numel`] is the "model size" the paper's
/// resource model and communication-waste metric are defined over.
///
/// # Example
///
/// ```
/// use adaptivefl_nn::ParamMap;
/// use adaptivefl_tensor::Tensor;
///
/// let mut m = ParamMap::new();
/// m.insert("fc.weight", Tensor::zeros(&[2, 3]));
/// m.insert("fc.bias", Tensor::zeros(&[2]));
/// assert_eq!(m.numel(), 8);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParamMap {
    entries: BTreeMap<String, Tensor>,
}

impl ParamMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a named tensor, returning the previous
    /// value if any.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) -> Option<Tensor> {
        self.entries.insert(name.into(), value)
    }

    /// Looks up a parameter by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Tensor> {
        self.entries.get_mut(name)
    }

    /// Returns `true` if a parameter with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of named parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the map holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar elements across all parameters — the
    /// model size used by the paper's resource model.
    pub fn numel(&self) -> usize {
        self.entries.values().map(Tensor::numel).sum()
    }

    /// Size in bytes when transmitted as dense `f32` (communication
    /// accounting).
    pub fn byte_size(&self) -> usize {
        self.numel() * std::mem::size_of::<f32>()
    }

    /// Iterates over `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates mutably over `(name, tensor)` pairs in name order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&str, &mut Tensor)> {
        self.entries.iter_mut().map(|(k, v)| (k.as_str(), v))
    }

    /// Parameter names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Squared L2 distance to another map over the shared names
    /// (useful in tests for convergence/aggregation checks).
    ///
    /// # Panics
    ///
    /// Panics if a shared name has mismatched shapes.
    pub fn sq_distance(&self, other: &ParamMap) -> f32 {
        let mut acc = 0.0f32;
        for (name, a) in self.iter() {
            if let Some(b) = other.get(name) {
                assert_eq!(a.shape(), b.shape(), "shape mismatch at {name}");
                for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                    acc += (x - y) * (x - y);
                }
            }
        }
        acc
    }
}

impl FromIterator<(String, Tensor)> for ParamMap {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        ParamMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Tensor)> for ParamMap {
    fn extend<I: IntoIterator<Item = (String, Tensor)>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl IntoIterator for ParamMap {
    type Item = (String, Tensor);
    type IntoIter = std::collections::btree_map::IntoIter<String, Tensor>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl std::fmt::Display for ParamMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ParamMap({} params, {} elements)",
            self.len(),
            self.numel()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParamMap {
        let mut m = ParamMap::new();
        m.insert("b", Tensor::ones(&[2]));
        m.insert("a", Tensor::zeros(&[3]));
        m
    }

    #[test]
    fn iteration_is_name_ordered() {
        let m = sample();
        let names: Vec<&str> = m.names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn numel_and_bytes() {
        let m = sample();
        assert_eq!(m.numel(), 5);
        assert_eq!(m.byte_size(), 20);
    }

    #[test]
    fn sq_distance_over_shared_names() {
        let m = sample();
        let mut other = ParamMap::new();
        other.insert("b", Tensor::zeros(&[2]));
        other.insert("c", Tensor::ones(&[100])); // not shared with m
        assert_eq!(m.sq_distance(&other), 2.0);
    }

    #[test]
    fn collect_from_iterator() {
        let m: ParamMap = vec![("x".to_string(), Tensor::ones(&[1]))]
            .into_iter()
            .collect();
        assert!(m.contains("x"));
    }
}
