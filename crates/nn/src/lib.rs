//! Neural-network substrate: layers with manual backprop, losses, an
//! SGD optimizer, and the named-parameter map that federated learning
//! exchanges between server and clients.
//!
//! The design is deliberately simple — each [`Layer`]
//! caches what its backward pass needs during `forward`, and parameters
//! are addressed by hierarchical string names (`"features.3.weight"`),
//! which is the identity the AdaptiveFL aggregation algorithm operates
//! on.
//!
//! # Example
//!
//! ```
//! use adaptivefl_nn::layers::{Linear, Relu};
//! use adaptivefl_nn::{layer::Layer, Sequential};
//! use adaptivefl_tensor::{rng, Tensor};
//!
//! let mut r = rng::seeded(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, &mut r)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 2, &mut r)),
//! ]);
//! let x = Tensor::zeros(&[3, 4]);
//! let y = net.forward(x, false);
//! assert_eq!(y.shape(), &[3, 2]);
//! ```

pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod optim;
pub mod param;
mod sequential;

pub use layer::{Layer, ParamKind, ParamVisitor, ParamVisitorMut};
pub use param::ParamMap;
pub use sequential::Sequential;
