//! The [`Layer`] trait: forward, backward, and named-parameter visits.

use adaptivefl_tensor::Tensor;

use crate::param::ParamMap;

/// Semantic role of a parameter; used by the federated engine to decide
/// how a parameter participates in width slicing and aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Trainable weight matrix/kernel.
    Weight,
    /// Trainable bias vector.
    Bias,
    /// Trainable per-channel scale (batch-norm γ).
    Gamma,
    /// Trainable per-channel shift (batch-norm β).
    Beta,
    /// Non-trainable batch-norm running mean (aggregated, not SGD-updated).
    RunningMean,
    /// Non-trainable batch-norm running variance.
    RunningVar,
}

impl ParamKind {
    /// Whether SGD should update this parameter (running statistics are
    /// updated by the batch-norm layer itself).
    pub fn is_trainable(self) -> bool {
        !matches!(self, ParamKind::RunningMean | ParamKind::RunningVar)
    }
}

/// Read-only parameter visitor.
pub trait ParamVisitor {
    /// Called once per parameter with its full hierarchical name.
    fn visit(&mut self, name: &str, kind: ParamKind, value: &Tensor, grad: &Tensor);
}

/// Mutable parameter visitor (used by the optimizer and by weight
/// loading).
pub trait ParamVisitorMut {
    /// Called once per parameter with its full hierarchical name.
    fn visit(&mut self, name: &str, kind: ParamKind, value: &mut Tensor, grad: &mut Tensor);
}

impl<F: FnMut(&str, ParamKind, &Tensor, &Tensor)> ParamVisitor for F {
    fn visit(&mut self, name: &str, kind: ParamKind, value: &Tensor, grad: &Tensor) {
        self(name, kind, value, grad)
    }
}

impl<F: FnMut(&str, ParamKind, &mut Tensor, &mut Tensor)> ParamVisitorMut for F {
    fn visit(&mut self, name: &str, kind: ParamKind, value: &mut Tensor, grad: &mut Tensor) {
        self(name, kind, value, grad)
    }
}

/// A differentiable network module.
///
/// `forward` must cache whatever the matching `backward` needs;
/// `backward` accumulates parameter gradients (it does **not** zero
/// them) and returns the gradient w.r.t. the input.
pub trait Layer: Send {
    /// Runs the layer on `x`. `train` selects training-mode behaviour
    /// (batch-norm statistics, caching for backward).
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor;

    /// Back-propagates `dy` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients, and returns the gradient
    /// w.r.t. the layer input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding
    /// training-mode `forward`.
    fn backward(&mut self, dy: Tensor) -> Tensor;

    /// Visits every parameter, prefixing names with `prefix`.
    fn visit_params(&self, prefix: &str, v: &mut dyn ParamVisitor);

    /// Visits every parameter mutably, prefixing names with `prefix`.
    fn visit_params_mut(&mut self, prefix: &str, v: &mut dyn ParamVisitorMut);

    /// Sets all parameter gradients to zero.
    fn zero_grads(&mut self);
}

/// Extension helpers available on every `Layer`.
pub trait LayerExt: Layer {
    /// Snapshots all parameter values into a [`ParamMap`].
    fn param_map(&self) -> ParamMap {
        let mut map = ParamMap::new();
        self.visit_params(
            "",
            &mut |name: &str, _kind: ParamKind, value: &Tensor, _grad: &Tensor| {
                map.insert(name, value.clone());
            },
        );
        map
    }

    /// Loads parameter values from a [`ParamMap`].
    ///
    /// # Panics
    ///
    /// Panics if a parameter is missing from the map or has the wrong
    /// shape — loading is all-or-nothing by design so silent partial
    /// loads cannot corrupt an experiment.
    fn load_param_map(&mut self, map: &ParamMap) {
        self.visit_params_mut(
            "",
            &mut |name: &str, _kind: ParamKind, value: &mut Tensor, _grad: &mut Tensor| {
                let src = map
                    .get(name)
                    .unwrap_or_else(|| panic!("parameter {name} missing from map"));
                assert_eq!(
                    src.shape(),
                    value.shape(),
                    "parameter {name} shape mismatch"
                );
                *value = src.clone();
            },
        );
    }

    /// Total number of parameter elements.
    fn num_params(&self) -> usize {
        let mut n = 0usize;
        self.visit_params("", &mut |_: &str,
                                    _: ParamKind,
                                    value: &Tensor,
                                    _: &Tensor| {
            n += value.numel();
        });
        n
    }
}

impl<L: Layer + ?Sized> LayerExt for L {}

/// Joins a name prefix and a local parameter/child name.
pub fn join_name(prefix: &str, local: &str) -> String {
    if prefix.is_empty() {
        local.to_string()
    } else {
        format!("{prefix}.{local}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_name_handles_empty_prefix() {
        assert_eq!(join_name("", "weight"), "weight");
        assert_eq!(join_name("features.0", "weight"), "features.0.weight");
    }

    #[test]
    fn param_kind_trainability() {
        assert!(ParamKind::Weight.is_trainable());
        assert!(ParamKind::Gamma.is_trainable());
        assert!(!ParamKind::RunningMean.is_trainable());
        assert!(!ParamKind::RunningVar.is_trainable());
    }
}
