//! Evaluation metrics.

use adaptivefl_tensor::Tensor;

/// Top-1 accuracy of `logits` (`[n, classes]`) against integer labels.
///
/// Returns a value in `[0, 1]`; 0 for an empty batch.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "logits must be [n, classes]");
    let (n, k) = (s[0], s[1]);
    assert_eq!(labels.len(), n, "label count mismatch");
    if n == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        let row = &logits.as_slice()[r * k..(r + 1) * k];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        if best == y {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

/// Streaming mean of a scalar metric (used to average loss/accuracy
/// over many mini-batches without storing them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    weight: f64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation with the given weight (e.g. batch size).
    pub fn add(&mut self, value: f32, weight: f32) {
        self.sum += f64::from(value) * f64::from(weight);
        self.weight += f64::from(weight);
    }

    /// Current mean; 0.0 when nothing has been added.
    pub fn mean(&self) -> f32 {
        if self.weight == 0.0 {
            0.0
        } else {
            (self.sum / self.weight) as f32
        }
    }

    /// Total accumulated weight.
    pub fn total_weight(&self) -> f32 {
        self.weight as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 5.0, 1.0, 1.5], &[3, 2]);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 2.0 / 3.0);
    }

    #[test]
    fn accuracy_empty_batch_is_zero() {
        let logits = Tensor::zeros(&[0, 4]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }

    #[test]
    fn running_mean_is_weighted() {
        let mut m = RunningMean::new();
        m.add(1.0, 1.0);
        m.add(0.0, 3.0);
        assert!((m.mean() - 0.25).abs() < 1e-6);
        assert_eq!(m.total_weight(), 4.0);
    }
}
