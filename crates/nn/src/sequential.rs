//! Sequential container.

use adaptivefl_tensor::Tensor;

use crate::layer::{join_name, Layer, ParamVisitor, ParamVisitorMut};

/// A chain of layers executed in order. Children are named by their
/// index, so a parameter of the second layer is e.g. `"1.weight"` (or
/// `"<prefix>.1.weight"` when nested).
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty container (use [`Sequential::push`]).
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs only the layers in `range` (used by early-exit models).
    pub fn forward_range(
        &mut self,
        x: Tensor,
        range: std::ops::Range<usize>,
        train: bool,
    ) -> Tensor {
        let mut h = x;
        for layer in &mut self.layers[range] {
            h = layer.forward(h, train);
        }
        h
    }

    /// Back-propagates only through the layers in `range`, in reverse.
    pub fn backward_range(&mut self, dy: Tensor, range: std::ops::Range<usize>) -> Tensor {
        let mut g = dy;
        for layer in self.layers[range].iter_mut().rev() {
            g = layer.backward(g);
        }
        g
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let n = self.layers.len();
        self.forward_range(x, 0..n, train)
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let n = self.layers.len();
        self.backward_range(dy, 0..n)
    }

    fn visit_params(&self, prefix: &str, v: &mut dyn ParamVisitor) {
        for (i, layer) in self.layers.iter().enumerate() {
            layer.visit_params(&join_name(prefix, &i.to_string()), v);
        }
    }

    fn visit_params_mut(&mut self, prefix: &str, v: &mut dyn ParamVisitorMut) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.visit_params_mut(&join_name(prefix, &i.to_string()), v);
        }
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerExt;
    use crate::layers::{Linear, Relu};
    use adaptivefl_tensor::rng;

    fn net() -> Sequential {
        let mut r = rng::seeded(11);
        Sequential::new(vec![
            Box::new(Linear::new(4, 6, &mut r)),
            Box::new(Relu::new()),
            Box::new(Linear::new(6, 2, &mut r)),
        ])
    }

    #[test]
    fn names_are_indexed() {
        let n = net();
        let names: Vec<String> = n.param_map().names().map(String::from).collect();
        assert_eq!(names, vec!["0.bias", "0.weight", "2.bias", "2.weight"]);
    }

    #[test]
    fn param_map_roundtrip() {
        let n = net();
        let snap = n.param_map();
        let mut other = net();
        other.load_param_map(&snap);
        assert_eq!(other.param_map(), snap);
    }

    #[test]
    fn forward_backward_shapes() {
        let mut n = net();
        let y = n.forward(Tensor::ones(&[5, 4]), true);
        assert_eq!(y.shape(), &[5, 2]);
        let dx = n.backward(Tensor::ones(&[5, 2]));
        assert_eq!(dx.shape(), &[5, 4]);
    }

    #[test]
    fn num_params_counts_everything() {
        let n = net();
        // (4*6 + 6) + (6*2 + 2) = 44.
        assert_eq!(n.num_params(), 44);
    }
}
