//! Fully connected layer.

use adaptivefl_tensor::ops::{matmul_a_bt, matmul_at_b};
use adaptivefl_tensor::{init, Tensor};
use rand::Rng;

use crate::layer::{join_name, Layer, ParamKind, ParamVisitor, ParamVisitorMut};

/// A fully connected layer `y = x · Wᵀ + b` with weight `[out, in]`.
///
/// # Example
///
/// ```
/// use adaptivefl_nn::layers::Linear;
/// use adaptivefl_nn::layer::Layer;
/// use adaptivefl_tensor::{rng, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut fc = Linear::new(10, 4, &mut r);
/// let y = fc.forward(Tensor::zeros(&[5, 10]), false);
/// assert_eq!(y.shape(), &[5, 4]);
/// ```
#[derive(Debug)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a layer `in_f → out_f` with Kaiming-uniform weights and
    /// zero bias.
    pub fn new(in_f: usize, out_f: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: init::kaiming_uniform(&[out_f, in_f], in_f, rng),
            bias: Tensor::zeros(&[out_f]),
            dweight: Tensor::zeros(&[out_f, in_f]),
            dbias: Tensor::zeros(&[out_f]),
            cache: None,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects [batch, features]");
        assert_eq!(
            x.shape()[1],
            self.in_features(),
            "Linear input width mismatch"
        );
        // y = x · Wᵀ
        let mut y = matmul_a_bt(&x, &self.weight);
        let (n, o) = (y.shape()[0], y.shape()[1]);
        let b = self.bias.as_slice().to_vec();
        let yv = y.as_mut_slice();
        for r in 0..n {
            for c in 0..o {
                yv[r * o + c] += b[c];
            }
        }
        self.cache = train.then_some(x);
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let x = self.cache.take().expect("linear backward without forward");
        // dW = dyᵀ · x ; dx = dy · W ; db = column sums of dy.
        let dw = matmul_at_b(&dy, &x);
        self.dweight.add_assign(&dw);
        let (n, o) = (dy.shape()[0], dy.shape()[1]);
        let dyv = dy.as_slice();
        let dbv = self.dbias.as_mut_slice();
        for r in 0..n {
            for c in 0..o {
                dbv[c] += dyv[r * o + c];
            }
        }
        dy.matmul(&self.weight)
    }

    fn visit_params(&self, prefix: &str, v: &mut dyn ParamVisitor) {
        v.visit(
            &join_name(prefix, "weight"),
            ParamKind::Weight,
            &self.weight,
            &self.dweight,
        );
        v.visit(
            &join_name(prefix, "bias"),
            ParamKind::Bias,
            &self.bias,
            &self.dbias,
        );
    }

    fn visit_params_mut(&mut self, prefix: &str, v: &mut dyn ParamVisitorMut) {
        v.visit(
            &join_name(prefix, "weight"),
            ParamKind::Weight,
            &mut self.weight,
            &mut self.dweight,
        );
        v.visit(
            &join_name(prefix, "bias"),
            ParamKind::Bias,
            &mut self.bias,
            &mut self.dbias,
        );
    }

    fn zero_grads(&mut self) {
        self.dweight.fill(0.0);
        self.dbias.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::rng;

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng::seeded(4);
        let mut fc = Linear::new(3, 2, &mut r);
        let x = init::normal(&[4, 3], 1.0, &mut r);
        let y = fc.forward(x.clone(), true);
        let dx = fc.backward(Tensor::ones(y.shape()));

        let eps = 1e-2f32;
        let loss = |fc: &mut Linear, x: &Tensor| fc.forward(x.clone(), false).sum();
        // Weight grads.
        for idx in 0..6 {
            let orig = fc.weight.as_slice()[idx];
            fc.weight.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&mut fc, &x);
            fc.weight.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&mut fc, &x);
            fc.weight.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = fc.dweight.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.02 * (1.0 + ana.abs()),
                "{num} vs {ana}"
            );
        }
        // Input grads.
        for idx in 0..12 {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(&mut fc, &xp) - loss(&mut fc, &xm)) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!((num - ana).abs() < 0.02 * (1.0 + ana.abs()));
        }
        // Bias grad = batch size for sum loss.
        assert!(fc.dbias.as_slice().iter().all(|&g| (g - 4.0).abs() < 1e-4));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_input_width() {
        let mut r = rng::seeded(5);
        let mut fc = Linear::new(3, 2, &mut r);
        fc.forward(Tensor::zeros(&[1, 4]), false);
    }
}
