//! Concrete layers: convolution, linear, batch-norm, activations,
//! pooling and shape plumbing.

mod batchnorm;
mod conv;
mod depthwise;
mod flatten;
mod linear;
mod pool;
mod relu;

pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use depthwise::DepthwiseConv2d;
pub use flatten::Flatten;
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2d};
pub use relu::Relu;
