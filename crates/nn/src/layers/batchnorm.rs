//! 2-D batch normalisation.
//!
//! Running statistics are exposed as (non-trainable) named parameters so
//! the federated aggregation can average them across clients exactly as
//! HeteroFL-style systems do.

use adaptivefl_tensor::Tensor;

use crate::layer::{join_name, Layer, ParamKind, ParamVisitor, ParamVisitorMut};

/// Batch normalisation over the channel axis of NCHW input.
///
/// Training mode normalises with batch statistics and updates the
/// running estimates; evaluation mode uses the running estimates.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    dgamma: Tensor,
    dbeta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    /// Exponential-moving-average momentum of the running statistics.
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    in_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates batch-norm for `c` channels with γ=1, β=0.
    pub fn new(c: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::ones(&[c]),
            beta: Tensor::zeros(&[c]),
            dgamma: Tensor::zeros(&[c]),
            dbeta: Tensor::zeros(&[c]),
            running_mean: Tensor::zeros(&[c]),
            running_var: Tensor::ones(&[c]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.numel()
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)] // per-channel loops index several buffers at once
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "BatchNorm2d expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.channels(), "BatchNorm2d channel mismatch");
        let cnt = (n * h * w) as f32;
        let xv = x.as_slice();

        let (mean, var): (Vec<f32>, Vec<f32>) = if train {
            let mut mean = vec![0.0f32; c];
            let mut var = vec![0.0f32; c];
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for &v in &xv[base..base + h * w] {
                        mean[ci] += v;
                    }
                }
            }
            for m in &mut mean {
                *m /= cnt;
            }
            for ni in 0..n {
                for ci in 0..c {
                    let base = (ni * c + ci) * h * w;
                    for &v in &xv[base..base + h * w] {
                        let d = v - mean[ci];
                        var[ci] += d * d;
                    }
                }
            }
            for v in &mut var {
                *v /= cnt;
            }
            // Update running stats.
            for ci in 0..c {
                let rm = &mut self.running_mean.as_mut_slice()[ci];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[ci];
                let rv = &mut self.running_var.as_mut_slice()[ci];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var[ci];
            }
            (mean, var)
        } else {
            (
                self.running_mean.as_slice().to_vec(),
                self.running_var.as_slice().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut x_hat = vec![0.0f32; xv.len()];
        let mut y = vec![0.0f32; xv.len()];
        let g = self.gamma.as_slice();
        let b = self.beta.as_slice();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    let xh = (xv[i] - mean[ci]) * inv_std[ci];
                    x_hat[i] = xh;
                    y[i] = g[ci] * xh + b[ci];
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, &s),
                inv_std,
                in_shape: s.clone(),
            });
        }
        Tensor::from_vec(y, &s)
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("batchnorm backward without forward");
        let s = cache.in_shape.clone();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let cnt = (n * h * w) as f32;
        let dyv = dy.as_slice();
        let xh = cache.x_hat.as_slice();

        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xh = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    sum_dy[ci] += dyv[i];
                    sum_dy_xh[ci] += dyv[i] * xh[i];
                }
            }
        }
        for ci in 0..c {
            self.dbeta.as_mut_slice()[ci] += sum_dy[ci];
            self.dgamma.as_mut_slice()[ci] += sum_dy_xh[ci];
        }

        let g = self.gamma.as_slice();
        let mut dx = vec![0.0f32; dyv.len()];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                let k = g[ci] * cache.inv_std[ci] / cnt;
                for i in base..base + h * w {
                    dx[i] = k * (cnt * dyv[i] - sum_dy[ci] - xh[i] * sum_dy_xh[ci]);
                }
            }
        }
        Tensor::from_vec(dx, &s)
    }

    fn visit_params(&self, prefix: &str, v: &mut dyn ParamVisitor) {
        v.visit(
            &join_name(prefix, "gamma"),
            ParamKind::Gamma,
            &self.gamma,
            &self.dgamma,
        );
        v.visit(
            &join_name(prefix, "beta"),
            ParamKind::Beta,
            &self.beta,
            &self.dbeta,
        );
        v.visit(
            &join_name(prefix, "running_mean"),
            ParamKind::RunningMean,
            &self.running_mean,
            &self.dgamma, // grad slot unused for running stats
        );
        v.visit(
            &join_name(prefix, "running_var"),
            ParamKind::RunningVar,
            &self.running_var,
            &self.dbeta,
        );
    }

    fn visit_params_mut(&mut self, prefix: &str, v: &mut dyn ParamVisitorMut) {
        v.visit(
            &join_name(prefix, "gamma"),
            ParamKind::Gamma,
            &mut self.gamma,
            &mut self.dgamma,
        );
        v.visit(
            &join_name(prefix, "beta"),
            ParamKind::Beta,
            &mut self.beta,
            &mut self.dbeta,
        );
        // Running statistics get dummy grad slots; the optimizer skips
        // non-trainable kinds.
        let mut dummy_m = Tensor::zeros(&[self.running_mean.numel()]);
        let mut dummy_v = Tensor::zeros(&[self.running_var.numel()]);
        v.visit(
            &join_name(prefix, "running_mean"),
            ParamKind::RunningMean,
            &mut self.running_mean,
            &mut dummy_m,
        );
        v.visit(
            &join_name(prefix, "running_var"),
            ParamKind::RunningVar,
            &mut self.running_var,
            &mut dummy_v,
        );
    }

    fn zero_grads(&mut self) {
        self.dgamma.fill(0.0);
        self.dbeta.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::{init, rng};

    #[test]
    fn train_output_is_normalised() {
        let mut r = rng::seeded(6);
        let mut bn = BatchNorm2d::new(3);
        let x = init::normal(&[4, 3, 5, 5], 3.0, &mut r).map(|v| v + 10.0);
        let y = bn.forward(x, true);
        // Per-channel mean ≈ 0, std ≈ 1.
        let (n, c, h, w) = (4, 3, 5, 5);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                vals.extend_from_slice(&y.as_slice()[base..base + h * w]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-3, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        // Without any training, running stats are (0, 1): identity.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = bn.forward(x.clone(), false);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_matches_finite_differences_on_gamma() {
        let mut r = rng::seeded(7);
        let mut bn = BatchNorm2d::new(2);
        let x = init::normal(&[2, 2, 3, 3], 1.0, &mut r);
        let y = bn.forward(x.clone(), true);
        let _ = bn.backward(Tensor::ones(y.shape()));
        let ana = bn.dgamma.clone();

        let eps = 1e-2f32;
        for ci in 0..2 {
            let orig = bn.gamma.as_slice()[ci];
            bn.gamma.as_mut_slice()[ci] = orig + eps;
            let lp = bn.forward(x.clone(), true).sum();
            bn.gamma.as_mut_slice()[ci] = orig - eps;
            let lm = bn.forward(x.clone(), true).sum();
            bn.gamma.as_mut_slice()[ci] = orig;
            bn.cache = None;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana.as_slice()[ci]).abs() < 0.05 * (1.0 + ana.as_slice()[ci].abs()),
                "dgamma[{ci}]: {num} vs {}",
                ana.as_slice()[ci]
            );
        }
    }

    #[test]
    fn backward_dx_sums_to_zero_per_channel() {
        // BN output is invariant to a constant shift of the batch, so
        // the per-channel sum of dx must vanish.
        let mut r = rng::seeded(8);
        let mut bn = BatchNorm2d::new(2);
        let x = init::normal(&[3, 2, 4, 4], 1.0, &mut r);
        let y = bn.forward(x, true);
        let dy = init::normal(y.shape(), 1.0, &mut r);
        let dx = bn.backward(dy);
        let (n, c, h, w) = (3, 2, 4, 4);
        for ci in 0..c {
            let mut s = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                s += dx.as_slice()[base..base + h * w].iter().sum::<f32>();
            }
            assert!(s.abs() < 1e-2, "channel {ci} dx sum {s}");
        }
    }

    #[test]
    fn exposes_running_stats_as_params() {
        let bn = BatchNorm2d::new(4);
        let mut names = Vec::new();
        bn.visit_params("bn", &mut |n: &str,
                                    k: ParamKind,
                                    _: &Tensor,
                                    _: &Tensor| {
            names.push((n.to_string(), k));
        });
        assert_eq!(names.len(), 4);
        assert!(names
            .iter()
            .any(|(n, k)| n == "bn.running_mean" && !k.is_trainable()));
    }
}
