//! Depthwise 2-D convolution (one filter per channel), needed by
//! MobileNetV2's inverted residual blocks.

use adaptivefl_tensor::{init, Tensor};
use rand::Rng;

use crate::layer::{join_name, Layer, ParamKind, ParamVisitor, ParamVisitorMut};

/// Depthwise convolution: channel `c` of the output is the correlation
/// of channel `c` of the input with its own `k×k` filter. Weight shape
/// is `[c, 1, k, k]` so the channel axis is the leading axis, exactly
/// like a dense conv — which keeps prefix-slice width pruning uniform.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    k: usize,
    stride: usize,
    pad: usize,
    cache: Option<Tensor>,
}

impl DepthwiseConv2d {
    /// Creates a depthwise convolution over `c` channels with a `k×k`
    /// kernel.
    pub fn new(c: usize, k: usize, stride: usize, pad: usize, rng: &mut impl Rng) -> Self {
        let shape = [c, 1, k, k];
        DepthwiseConv2d {
            weight: init::kaiming_uniform(&shape, k * k, rng),
            bias: Tensor::zeros(&[c]),
            dweight: Tensor::zeros(&shape),
            dbias: Tensor::zeros(&[c]),
            k,
            stride,
            pad,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.weight.shape()[0]
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "depthwise conv expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.channels(), "depthwise channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let mut out = vec![0.0f32; n * c * oh * ow];
        let xv = x.as_slice();
        let wv = self.weight.as_slice();
        let bv = self.bias.as_slice();
        let kk = self.k * self.k;
        for ni in 0..n {
            for ci in 0..c {
                let xin = &xv[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                let ker = &wv[ci * kk..(ci + 1) * kk];
                let dst = &mut out[(ni * c + ci) * oh * ow..(ni * c + ci + 1) * oh * ow];
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = bv[ci];
                        for ki in 0..self.k {
                            let ii = (oi * self.stride + ki) as isize - self.pad as isize;
                            if ii < 0 || ii as usize >= h {
                                continue;
                            }
                            for kj in 0..self.k {
                                let jj = (oj * self.stride + kj) as isize - self.pad as isize;
                                if jj < 0 || jj as usize >= w {
                                    continue;
                                }
                                acc += ker[ki * self.k + kj] * xin[ii as usize * w + jj as usize];
                            }
                        }
                        dst[oi * ow + oj] = acc;
                    }
                }
            }
        }
        if train {
            self.cache = Some(x);
        }
        Tensor::from_vec(out, &[n, c, oh, ow])
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let x = self
            .cache
            .take()
            .expect("depthwise backward without forward");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.out_hw(h, w);
        let mut dx = vec![0.0f32; n * c * h * w];
        let xv = x.as_slice();
        let dyv = dy.as_slice();
        let wv = self.weight.as_slice();
        let dwv = self.dweight.as_mut_slice();
        let dbv = self.dbias.as_mut_slice();
        let kk = self.k * self.k;
        for ni in 0..n {
            for ci in 0..c {
                let xin = &xv[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                let g = &dyv[(ni * c + ci) * oh * ow..(ni * c + ci + 1) * oh * ow];
                let ker = &wv[ci * kk..(ci + 1) * kk];
                let dker = &mut dwv[ci * kk..(ci + 1) * kk];
                let dxi = &mut dx[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
                for oi in 0..oh {
                    for oj in 0..ow {
                        let gy = g[oi * ow + oj];
                        if gy == 0.0 {
                            continue;
                        }
                        dbv[ci] += gy;
                        for ki in 0..self.k {
                            let ii = (oi * self.stride + ki) as isize - self.pad as isize;
                            if ii < 0 || ii as usize >= h {
                                continue;
                            }
                            for kj in 0..self.k {
                                let jj = (oj * self.stride + kj) as isize - self.pad as isize;
                                if jj < 0 || jj as usize >= w {
                                    continue;
                                }
                                let xi = ii as usize * w + jj as usize;
                                dker[ki * self.k + kj] += gy * xin[xi];
                                dxi[xi] += gy * ker[ki * self.k + kj];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(dx, x.shape())
    }

    fn visit_params(&self, prefix: &str, v: &mut dyn ParamVisitor) {
        v.visit(
            &join_name(prefix, "weight"),
            ParamKind::Weight,
            &self.weight,
            &self.dweight,
        );
        v.visit(
            &join_name(prefix, "bias"),
            ParamKind::Bias,
            &self.bias,
            &self.dbias,
        );
    }

    fn visit_params_mut(&mut self, prefix: &str, v: &mut dyn ParamVisitorMut) {
        v.visit(
            &join_name(prefix, "weight"),
            ParamKind::Weight,
            &mut self.weight,
            &mut self.dweight,
        );
        v.visit(
            &join_name(prefix, "bias"),
            ParamKind::Bias,
            &mut self.bias,
            &mut self.dbias,
        );
    }

    fn zero_grads(&mut self) {
        self.dweight.fill(0.0);
        self.dbias.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::rng;

    #[test]
    fn forward_is_per_channel() {
        let mut r = rng::seeded(30);
        let mut dw = DepthwiseConv2d::new(2, 1, 1, 0, &mut r);
        // 1x1 depthwise = per-channel scaling + bias.
        dw.weight = Tensor::from_vec(vec![2.0, 3.0], &[2, 1, 1, 1]);
        dw.bias = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]);
        let y = dw.forward(x, false);
        assert_eq!(y.as_slice(), &[2.5, 2.5, 2.5, 2.5, 5.5, 5.5, 5.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng::seeded(31);
        let mut dw = DepthwiseConv2d::new(2, 3, 1, 1, &mut r);
        let x = init::normal(&[1, 2, 4, 4], 1.0, &mut r);
        let y = dw.forward(x.clone(), true);
        let dx = dw.backward(Tensor::ones(y.shape()));
        let eps = 1e-2f32;
        for idx in [0usize, 5, 9, 17] {
            let orig = dw.weight.as_slice()[idx];
            dw.weight.as_mut_slice()[idx] = orig + eps;
            let lp = dw.forward(x.clone(), false).sum();
            dw.weight.as_mut_slice()[idx] = orig - eps;
            let lm = dw.forward(x.clone(), false).sum();
            dw.weight.as_mut_slice()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dw.dweight.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 * (1.0 + ana.abs()),
                "{num} vs {ana}"
            );
        }
        for idx in [0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (dw.forward(xp, false).sum() - dw.forward(xm, false).sum()) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!((num - ana).abs() < 0.05 * (1.0 + ana.abs()));
        }
    }

    #[test]
    fn stride_two_halves_output() {
        let mut r = rng::seeded(32);
        let mut dw = DepthwiseConv2d::new(3, 3, 2, 1, &mut r);
        let y = dw.forward(Tensor::zeros(&[1, 3, 8, 8]), false);
        assert_eq!(y.shape(), &[1, 3, 4, 4]);
    }
}
