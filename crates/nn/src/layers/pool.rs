//! Pooling layers.

use adaptivefl_tensor::ops::{
    global_avg_pool_backward, global_avg_pool_forward, max_pool2d_backward, max_pool2d_forward,
};
use adaptivefl_tensor::Tensor;

use crate::layer::{Layer, ParamVisitor, ParamVisitorMut};

/// Max pooling with a square window (window == stride).
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, in_shape)
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window/stride.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        MaxPool2d {
            window,
            cache: None,
        }
    }

    /// The pooling window size.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let in_shape = x.shape().to_vec();
        let (y, arg) = max_pool2d_forward(&x, self.window);
        self.cache = train.then_some((arg, in_shape));
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let (arg, in_shape) = self.cache.take().expect("maxpool backward without forward");
        max_pool2d_backward(&dy, &arg, &in_shape)
    }

    fn visit_params(&self, _prefix: &str, _v: &mut dyn ParamVisitor) {}
    fn visit_params_mut(&mut self, _prefix: &str, _v: &mut dyn ParamVisitorMut) {}
    fn zero_grads(&mut self) {}
}

/// Global average pooling `[n, c, h, w] → [n, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        global_avg_pool_forward(&x)
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let in_shape = self.in_shape.take().expect("gap backward without forward");
        global_avg_pool_backward(&dy, &in_shape)
    }

    fn visit_params(&self, _prefix: &str, _v: &mut dyn ParamVisitor) {}
    fn visit_params_mut(&mut self, _prefix: &str, _v: &mut dyn ParamVisitorMut) {}
    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_roundtrip() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let dx = p.backward(Tensor::ones(&[1, 1, 2, 2]));
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn gap_shapes() {
        let mut g = GlobalAvgPool::new();
        let y = g.forward(Tensor::ones(&[2, 3, 4, 4]), true);
        assert_eq!(y.shape(), &[2, 3]);
        let dx = g.backward(Tensor::ones(&[2, 3]));
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }
}
