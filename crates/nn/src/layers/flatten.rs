//! Shape plumbing: flatten NCHW to `[n, c·h·w]`.

use adaptivefl_tensor::Tensor;

use crate::layer::{Layer, ParamVisitor, ParamVisitorMut};

/// Flattens all axes after the batch axis.
#[derive(Debug, Default)]
pub struct Flatten {
    in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let s = x.shape().to_vec();
        assert!(!s.is_empty(), "flatten needs at least one axis");
        if train {
            self.in_shape = Some(s.clone());
        }
        let rest: usize = s[1..].iter().product();
        x.reshape(&[s[0], rest])
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let in_shape = self
            .in_shape
            .take()
            .expect("flatten backward without forward");
        dy.reshape(&in_shape)
    }

    fn visit_params(&self, _prefix: &str, _v: &mut dyn ParamVisitor) {}
    fn visit_params_mut(&mut self, _prefix: &str, _v: &mut dyn ParamVisitorMut) {}
    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let y = f.forward(Tensor::ones(&[2, 3, 4, 4]), true);
        assert_eq!(y.shape(), &[2, 48]);
        let dx = f.backward(y);
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }
}
