//! ReLU activation.

use adaptivefl_tensor::Tensor;

use crate::layer::{Layer, ParamVisitor, ParamVisitorMut};

/// Elementwise rectified linear unit.
///
/// # Example
///
/// ```
/// use adaptivefl_nn::layers::Relu;
/// use adaptivefl_nn::layer::Layer;
/// use adaptivefl_tensor::Tensor;
///
/// let mut relu = Relu::new();
/// let y = relu.forward(Tensor::from_vec(vec![-1.0, 2.0], &[2]), false);
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let mask = self.mask.take().expect("relu backward without forward");
        assert_eq!(mask.len(), dy.numel(), "relu mask size mismatch");
        let mut dx = dy;
        for (v, &m) in dx.as_mut_slice().iter_mut().zip(mask.iter()) {
            if !m {
                *v = 0.0;
            }
        }
        dx
    }

    fn visit_params(&self, _prefix: &str, _v: &mut dyn ParamVisitor) {}
    fn visit_params_mut(&mut self, _prefix: &str, _v: &mut dyn ParamVisitorMut) {}
    fn zero_grads(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_masks_negative_inputs() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[4]);
        let _ = relu.forward(x, true);
        let dx = relu.backward(Tensor::ones(&[4]));
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }
}
