//! 2-D convolution layer.

use adaptivefl_tensor::ops::{conv2d_backward, conv2d_forward, ConvGeometry};
use adaptivefl_tensor::{init, Tensor};
use rand::Rng;

use crate::layer::{join_name, Layer, ParamKind, ParamVisitor, ParamVisitorMut};

/// A 2-D convolution with bias (NCHW, square kernel).
///
/// # Example
///
/// ```
/// use adaptivefl_nn::layers::Conv2d;
/// use adaptivefl_nn::layer::Layer;
/// use adaptivefl_tensor::{rng, Tensor};
///
/// let mut r = rng::seeded(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut r);
/// let y = conv.forward(Tensor::zeros(&[2, 3, 8, 8]), false);
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    geo: ConvGeometry,
    cache: Option<ForwardCache>,
}

#[derive(Debug)]
struct ForwardCache {
    cols: Vec<Tensor>,
    in_shape: Vec<usize>,
}

impl Conv2d {
    /// Creates a convolution `in_c → out_c` with a `k×k` kernel,
    /// Kaiming-uniform weights and zero bias.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let shape = [out_c, in_c, k, k];
        let weight = init::kaiming_uniform(&shape, in_c * k * k, rng);
        Conv2d {
            dweight: Tensor::zeros(&shape),
            dbias: Tensor::zeros(&[out_c]),
            bias: Tensor::zeros(&[out_c]),
            weight,
            geo: ConvGeometry {
                kh: k,
                kw: k,
                stride,
                pad,
            },
            cache: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.shape()[1]
    }

    /// The convolution geometry (kernel, stride, padding).
    pub fn geometry(&self) -> ConvGeometry {
        self.geo
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor, train: bool) -> Tensor {
        let in_shape = x.shape().to_vec();
        let (y, cols) = conv2d_forward(&x, &self.weight, &self.bias, self.geo);
        self.cache = train.then_some(ForwardCache { cols, in_shape });
        y
    }

    fn backward(&mut self, dy: Tensor) -> Tensor {
        let cache = self.cache.take().expect("conv backward without forward");
        let grads = conv2d_backward(&dy, &self.weight, &cache.cols, &cache.in_shape, self.geo);
        self.dweight.add_assign(&grads.dw);
        self.dbias.add_assign(&grads.db);
        grads.dx
    }

    fn visit_params(&self, prefix: &str, v: &mut dyn ParamVisitor) {
        v.visit(
            &join_name(prefix, "weight"),
            ParamKind::Weight,
            &self.weight,
            &self.dweight,
        );
        v.visit(
            &join_name(prefix, "bias"),
            ParamKind::Bias,
            &self.bias,
            &self.dbias,
        );
    }

    fn visit_params_mut(&mut self, prefix: &str, v: &mut dyn ParamVisitorMut) {
        v.visit(
            &join_name(prefix, "weight"),
            ParamKind::Weight,
            &mut self.weight,
            &mut self.dweight,
        );
        v.visit(
            &join_name(prefix, "bias"),
            ParamKind::Bias,
            &mut self.bias,
            &mut self.dbias,
        );
    }

    fn zero_grads(&mut self) {
        self.dweight.fill(0.0);
        self.dbias.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivefl_tensor::rng;

    #[test]
    fn forward_shape_with_stride() {
        let mut r = rng::seeded(0);
        let mut conv = Conv2d::new(3, 16, 3, 2, 1, &mut r);
        let y = conv.forward(Tensor::zeros(&[1, 3, 8, 8]), false);
        assert_eq!(y.shape(), &[1, 16, 4, 4]);
    }

    #[test]
    fn backward_accumulates_grads() {
        let mut r = rng::seeded(1);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut r);
        let x = init::normal(&[1, 2, 4, 4], 1.0, &mut r);
        let y = conv.forward(x.clone(), true);
        let _ = conv.backward(Tensor::ones(y.shape()));
        let g1 = conv.dweight.clone();
        assert!(g1.sq_norm() > 0.0);
        // Second pass accumulates (doubles for the same input).
        let y2 = conv.forward(x, true);
        let _ = conv.backward(Tensor::ones(y2.shape()));
        let g2 = conv.dweight.clone();
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((b - 2.0 * a).abs() < 1e-4);
        }
        conv.zero_grads();
        assert_eq!(conv.dweight.sq_norm(), 0.0);
    }

    #[test]
    fn param_names_are_prefixed() {
        let mut r = rng::seeded(2);
        let conv = Conv2d::new(1, 1, 1, 1, 0, &mut r);
        let mut names = Vec::new();
        conv.visit_params(
            "block.0",
            &mut |n: &str, _: ParamKind, _: &Tensor, _: &Tensor| {
                names.push(n.to_string());
            },
        );
        assert_eq!(names, vec!["block.0.weight", "block.0.bias"]);
    }

    #[test]
    #[should_panic(expected = "backward without forward")]
    fn backward_without_forward_panics() {
        let mut r = rng::seeded(3);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut r);
        conv.backward(Tensor::zeros(&[1, 1, 1, 1]));
    }
}
